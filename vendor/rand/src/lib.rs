//! Minimal offline drop-in for the `rand` API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_bool`, and `gen_range` over half-open
//! ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic per seed. Note the stream
//! differs from the real `rand` crate's StdRng (ChaCha12), so seeded
//! experiment outputs are reproducible *within* this workspace but not
//! comparable to runs linked against crates.io rand.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the reference seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256PlusPlus {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard RNG (xoshiro256++ here; see crate docs).
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for any span this workspace uses.
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let lo = self.start as f64;
                let hi = self.end as f64;
                let v = lo + unit * (hi - lo);
                // Guard the open upper bound against rounding.
                if v >= hi { self.start } else { v as $t }
            }
        }
    )*};
}

float_range!(f64, f32);

/// Types drawable from the standard (uniform) distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let g = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(g > 0.0 && g < 1.0);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }
}
