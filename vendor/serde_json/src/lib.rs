//! Minimal offline drop-in for `serde_json` over the vendored serde
//! facade (see `vendor/README.md`).
//!
//! Provides [`to_string`], [`to_string_pretty`], [`from_str`], and
//! [`Error`] — the subset this workspace uses. Values flow through
//! [`serde::Value`]; output conventions match real serde_json: struct
//! fields in declaration order, two-space pretty indentation, non-finite
//! floats rendered as `null`, and floats printed with the shortest
//! representation that round-trips (Rust's float `Display`).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // serde_json always distinguishes floats from integers in output.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_value_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n' | b't' | b'f') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected a JSON value"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // outer increment below.
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Copy one multi-byte UTF-8 character. Validate only
                    // its own bytes — validating the whole remaining
                    // input here would make parsing quadratic.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = self.pos + len;
                    let chunk = self
                        .bytes
                        .get(self.pos..end)
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("bad number")),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s} did not round-trip");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2usize), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(usize, usize)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_handles_escapes_and_whitespace() {
        let got: String = from_str(r#"  "aA\né"  "#).unwrap();
        assert_eq!(got, "aA\né");
        let got: Vec<f64> = from_str("[1, 2.5,\n\t-3e2]").unwrap();
        assert_eq!(got, vec![1.0, 2.5, -300.0]);
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
