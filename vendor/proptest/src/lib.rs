//! Minimal offline drop-in for the `proptest` API surface this
//! workspace uses: the `proptest!` macro over range strategies, with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the drawn inputs printed, which is enough to reproduce since
//! the case stream is deterministic (fixed seed, no persistence file).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy and range support.
pub mod strategy {
    use super::*;

    /// Types that can produce a value from the test RNG.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draws one value.
        fn pick(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, i64, i32, f64, f32);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a whole-domain strategy, mirroring `Arbitrary`.
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    let x: u64 = rng.gen();
                    x as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    /// Strategy over a type's full domain.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn pick(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` whole-domain strategy.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy producing vectors of `elem`-drawn values with a length
    /// drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// A strategy for `Vec`s with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    use super::*;

    /// Failure raised by `prop_assert!`-style macros; `Ok(())` with
    /// [`TestCaseResult::skip`] marks a case rejected by `prop_assume!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The deterministic RNG driving case generation.
    pub fn deterministic_rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED_CA5E)
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a test running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases = ($cfg).cases;
            let mut rng = $crate::test_runner::deterministic_rng();
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::pick(&($strat), &mut rng);)*
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property failed on case {case}/{cases} with inputs {:?}:\n{e}",
                        ($(&$arg,)*)
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            format!($($fmt)+),
            a,
            b
        );
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
