//! Minimal offline drop-in for the `criterion` API surface this
//! workspace uses. Two modes, selected like the real crate by how the
//! harness-less bench binary is invoked:
//!
//! - under `cargo test` (cargo passes `--test`), every benchmark body
//!   runs exactly once as a smoke test;
//! - under `cargo bench` (cargo passes `--bench`), each benchmark is
//!   warmed up and timed over `sample_size` samples and the mean, min,
//!   and max ns/iter are printed.
//!
//! There are no statistical comparisons, plots, or saved baselines.

use std::fmt::Display;
use std::time::Instant;

/// How bench bodies execute (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run each body once, untimed.
    Smoke,
    /// Time each body over `sample_size` samples.
    Measure,
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes --bench to bench targets under `cargo bench` and
        // --test under `cargo test`; default to smoke mode so that
        // accidental direct runs stay fast.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            sample_size: 10,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one("", id, self.mode, 10, f);
        self
    }
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.name, id, self.mode, self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.mode, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark bodies; [`Bencher::iter`] runs the closure.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// (mean, min, max) ns/iter from the last `iter`, if measured.
    result_ns: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Runs the benchmark body, timing it in measure mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Smoke => {
                black_box(f());
            }
            Mode::Measure => {
                // Warmup.
                for _ in 0..2 {
                    black_box(f());
                }
                let mut samples = Vec::with_capacity(self.sample_size);
                for _ in 0..self.sample_size {
                    let t0 = Instant::now();
                    black_box(f());
                    samples.push(t0.elapsed().as_secs_f64() * 1e9);
                }
                let mean = samples.iter().sum::<f64>() / samples.len() as f64;
                let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = samples.iter().cloned().fold(0.0f64, f64::max);
                self.result_ns = Some((mean, min, max));
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, mode: Mode, sample_size: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut b = Bencher {
        mode,
        sample_size,
        result_ns: None,
    };
    f(&mut b);
    match (mode, b.result_ns) {
        (Mode::Measure, Some((mean, min, max))) => {
            println!("bench {label:<48} {mean:>14.0} ns/iter (min {min:.0}, max {max:.0}, n={sample_size})");
        }
        (Mode::Measure, None) => println!("bench {label:<48} (no iter call)"),
        (Mode::Smoke, _) => println!("bench {label:<48} ok (smoke)"),
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` for a harness-less bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
