//! Offline drop-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the
//! vendored serde facade (see `vendor/serde`). To stay dependency-free
//! (no `syn`/`quote`), the item is parsed directly from its token
//! stream: only field and variant *names* are needed — field types are
//! resolved by inference in the generated code.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and
//! non-generic enums with unit / newtype / tuple / struct variants,
//! encoded externally tagged to match real serde's JSON layout.
//! `#[serde(...)]` attributes are not supported and will be silently
//! ignored if present — this workspace uses none.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input).unwrap_or_else(|e| panic!("derive(Serialize): {e}"));
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input).unwrap_or_else(|e| panic!("derive(Deserialize): {e}"));
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Skips leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(it: &mut Iter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // '#'
                it.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                let restricted = matches!(
                    it.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                );
                if restricted {
                    it.next();
                }
            }
            _ => return,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the vendored serde_derive"
        ));
    }
    match kw.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected an enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Field names of a `{ a: T, b: U }` body. Types are skipped by scanning to
/// the next comma outside any `<...>` nesting (commas inside parenthesized
/// or bracketed types are hidden inside their token groups).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                let mut depth = 0i64;
                for tt in it.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => depth -= 1,
                            ',' if depth == 0 => break,
                            _ => {}
                        }
                    }
                }
            }
            None => break,
            Some(other) => panic!("unexpected token among named fields: {other:?}"),
        }
    }
    names
}

/// Arity of a `(T, U, ...)` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if saw_token {
                        fields += 1;
                        saw_token = false;
                    }
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other:?}")),
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) => Some(g.delimiter()),
            _ => None,
        };
        let fields = match shape {
            Some(Delimiter::Brace) | Some(Delimiter::Parenthesis) => {
                let Some(TokenTree::Group(g)) = it.next() else {
                    unreachable!("peeked a group")
                };
                if g.delimiter() == Delimiter::Brace {
                    Fields::Named(parse_named_fields(g.stream()))
                } else {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
            }
            _ => Fields::Unit,
        };
        // Consume through the trailing comma; also skips any `= discr`.
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Map(vec![{entries}])")
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("::serde::Value::Seq(vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \x20   fn to_value(&self) -> ::serde::Value {{\n\
                 \x20       {body}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let pats = (0..*n)
                                .map(|i| format!("f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn}({pats}) => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Seq(vec![{items}]))]),"
                            )
                        }
                        Fields::Named(fs) => {
                            let pats = fs.join(", ");
                            let entries = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Map(vec![(\"{vn}\"\
                                 .to_string(), ::serde::Value::Map(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 \x20   fn to_value(&self) -> ::serde::Value {{\n\
                 \x20       match self {{\n\
                 \x20           {arms}\n\
                 \x20       }}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits = fs
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(m, \"{f}\")?,"))
                        .collect::<Vec<_>>()
                        .join("\n            ");
                    format!(
                        "let m = v.as_map_for(\"{name}\")?;\n\
                         \x20       Ok({name} {{\n\
                         \x20           {inits}\n\
                         \x20       }})"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let elems = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "let s = v.as_seq_for(\"{name}\")?;\n\
                         \x20       if s.len() != {n} {{\n\
                         \x20           return Err(::serde::DeError::custom(format!(\
                         \"expected {n} elements for `{name}`, got {{}}\", s.len())));\n\
                         \x20       }}\n\
                         \x20       Ok({name}({elems}))"
                    )
                }
                Fields::Unit => format!("let _ = v;\n        Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \x20   fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 \x20       {body}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => Ok({name}::{vn}),")
                })
                .collect::<Vec<_>>()
                .join("\n                ");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(\
                             _inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let elems = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 \x20                       let s = _inner.as_seq_for(\
                                 \"{name}::{vn}\")?;\n\
                                 \x20                       if s.len() != {n} {{\n\
                                 \x20                           return Err(::serde::DeError::\
                                 custom(format!(\"expected {n} elements for `{name}::{vn}`, \
                                 got {{}}\", s.len())));\n\
                                 \x20                       }}\n\
                                 \x20                       Ok({name}::{vn}({elems}))\n\
                                 \x20                   }}"
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits = fs
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(m, \"{f}\")?,"))
                                .collect::<Vec<_>>()
                                .join("\n                        ");
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 \x20                       let m = _inner.as_map_for(\
                                 \"{name}::{vn}\")?;\n\
                                 \x20                       Ok({name}::{vn} {{\n\
                                 \x20                           {inits}\n\
                                 \x20                       }})\n\
                                 \x20                   }}"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n                    ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 \x20   fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 \x20       match v {{\n\
                 \x20           ::serde::Value::Str(s) => match s.as_str() {{\n\
                 \x20               {unit_arms}\n\
                 \x20               other => Err(::serde::DeError::custom(format!(\
                 \"unknown unit variant `{{}}` of `{name}`\", other))),\n\
                 \x20           }},\n\
                 \x20           ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 \x20               let (k, _inner) = &entries[0];\n\
                 \x20               match k.as_str() {{\n\
                 \x20                   {data_arms}\n\
                 \x20                   other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant `{{}}` of `{name}`\", other))),\n\
                 \x20               }}\n\
                 \x20           }}\n\
                 \x20           other => Err(::serde::DeError::custom(format!(\
                 \"expected enum `{name}`, found {{:?}}\", other))),\n\
                 \x20       }}\n\
                 \x20   }}\n\
                 }}\n"
            )
        }
    }
}
