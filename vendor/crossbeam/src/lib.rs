//! Minimal offline drop-in for the `crossbeam::channel` API surface
//! this workspace uses, layered over `std::sync::mpsc`.
//!
//! Unlike std's receiver, crossbeam's `Receiver` is `Clone` (and
//! `Sync`); we recover that by sharing the std receiver behind a mutex.
//! Throughput is adequate for the pipeline trainer's per-micro-batch
//! tensor handoffs, which are coarse-grained.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if every receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("channel mutex poisoned").recv()
        }

        /// Returns immediately with a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("channel mutex poisoned").try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<usize>();
            let rx2 = rx.clone();
            let h = std::thread::spawn(move || rx2.recv().unwrap());
            tx.send(41).unwrap();
            assert_eq!(h.join().unwrap(), 41);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
