//! Minimal offline drop-in for the `serde` facade used by this workspace.
//!
//! The build container has no registry access (see `vendor/README.md`), so
//! this crate provides the subset of serde the workspace actually relies
//! on: `#[derive(Serialize, Deserialize)]` on non-generic structs and
//! enums, routed through a self-describing [`Value`] tree that
//! `serde_json` renders to and parses from JSON.
//!
//! Encoding conventions mirror real serde's JSON representation:
//! structs are maps in field-declaration order, unit enum variants are
//! strings, and data-carrying variants are single-entry maps
//! (externally tagged).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree, the interchange format between the
/// derive macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (anything that does not fit `i64` or came from an
    /// unsigned Rust type).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered keys (struct fields keep declaration
    /// order, matching serde_json's default struct encoding).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The map entries, or an error naming `what` for diagnostics.
    pub fn as_map_for(&self, what: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(DeError::custom(format!(
                "expected map for {what}, found {other:?}"
            ))),
        }
    }

    /// The sequence elements, or an error naming `what`.
    pub fn as_seq_for(&self, what: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(DeError::custom(format!(
                "expected sequence for {what}, found {other:?}"
            ))),
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive-macro helper: pulls field `key` out of a struct map, treating a
/// missing field as `Null` so `Option` fields tolerate omission.
pub fn de_field<T: Deserialize>(entries: &[(String, Value)], key: &str) -> Result<T, DeError> {
    let v = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range"))),
                    other => Err(DeError::custom(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range"))),
                    Value::Int(i) => u64::try_from(*i)
                        .ok()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::custom(format!("{i} out of range"))),
                    other => Err(DeError::custom(format!("expected integer, found {other:?}"))),
                }
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(x) => Ok(*x as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::custom(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq_for("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq_for("2-tuple")?;
        if s.len() != 2 {
            return Err(DeError::custom(format!("expected 2 elements, got {}", s.len())));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq_for("3-tuple")?;
        if s.len() != 3 {
            return Err(DeError::custom(format!("expected 3 elements, got {}", s.len())));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?, C::from_value(&s[2])?))
    }
}

fn map_key_to_string<K: Serialize>(k: &K) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn map_key_from_str<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try the common key encodings in order; string keys dominate, with
    // integer keys appearing for id-indexed maps.
    K::from_value(&Value::Str(s.to_string()))
        .or_else(|_| {
            s.parse::<u64>()
                .map_err(|e| DeError::custom(e.to_string()))
                .and_then(|u| K::from_value(&Value::UInt(u)))
        })
        .or_else(|_| {
            s.parse::<i64>()
                .map_err(|e| DeError::custom(e.to_string()))
                .and_then(|i| K::from_value(&Value::Int(i)))
        })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (map_key_to_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map_for("BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((map_key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output regardless of hasher state.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (map_key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map_for("HashMap")?
            .iter()
            .map(|(k, v)| Ok((map_key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v: Vec<usize> = Deserialize::from_value(&vec![1usize, 2].to_value()).unwrap();
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn option_tolerates_null_and_missing_fields() {
        let none: Option<u32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
        let got: Option<u32> = de_field(&[], "absent").unwrap();
        assert_eq!(got, None);
        let err: Result<u32, _> = de_field(&[], "absent");
        assert!(err.is_err(), "non-Option missing field must error");
    }

    #[test]
    fn tuples_encode_as_sequences() {
        let v = (1usize, 2usize).to_value();
        assert_eq!(v, Value::Seq(vec![Value::UInt(1), Value::UInt(2)]));
        let back: (usize, usize) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2));
    }

    #[test]
    fn hashmap_round_trips_with_integer_keys() {
        let mut m: HashMap<u64, usize> = HashMap::new();
        m.insert(7, 1);
        m.insert(3, 4);
        let back: HashMap<u64, usize> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }
}
