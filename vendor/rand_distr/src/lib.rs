//! Minimal offline drop-in for the `rand_distr` API surface this
//! workspace uses: the [`Distribution`] trait and a [`LogNormal`]
//! sampled via Box–Muller.

use rand::Rng;
use std::fmt;

/// Types that sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamsError;

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for ParamsError {}

/// Lognormal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    /// A lognormal with the given location and shape of the underlying
    /// normal. `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamsError> {
        if !(sigma >= 0.0) || !sigma.is_finite() || !mu.is_finite() {
            return Err(ParamsError);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept strictly positive for the log.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::NAN).is_err());
        assert!(LogNormal::new(0.0, 0.5).is_ok());
    }

    #[test]
    fn sample_mean_approaches_lognormal_mean() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = (0.5f64 * 0.5 * 0.5).exp(); // exp(sigma^2 / 2)
        assert!((mean - expect).abs() < 0.05, "mean {mean} vs {expect}");
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let d = LogNormal::new(1.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            assert!((d.sample(&mut rng) - 1.0f64.exp()).abs() < 1e-12);
        }
    }
}
