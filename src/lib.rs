#![warn(missing_docs)]
//! Workspace-root facade for the Varuna reproduction.
//!
//! This crate exists to host the cross-crate integration tests (`tests/`)
//! and runnable examples (`examples/`); for library use, depend on the
//! member crates directly — most users want [`varuna`] (the paper's system:
//! calibration → simulation → planning → morphing) and perhaps
//! [`varuna_train`] (the real miniature training engine).
//!
//! ```
//! use varuna_repro::prelude::*;
//!
//! let model = ModelZoo::gpt2_2_5b();
//! let cluster = VarunaCluster::commodity_1gpu(36);
//! let calib = Calibration::profile(&model, &cluster);
//! let plan = Planner::new(&model, &calib).batch_size(8192).best_config(36);
//! assert!(plan.is_ok());
//! ```

pub use varuna;
pub use varuna_baselines;
pub use varuna_cluster;
pub use varuna_exec;
pub use varuna_models;
pub use varuna_net;
pub use varuna_train;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use varuna::prelude::*;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        let m = crate::varuna_models::ModelZoo::gpt2_2_5b();
        assert_eq!(m.layers, 54);
    }
}
