//! Drain-in-place legality for live stage migration.
//!
//! Zero-downtime morphing replaces a VM by streaming its stage state to
//! the replacement while the rest of the pipeline keeps running. The
//! drained stage stops after some prefix of its static op order; the
//! migration is *legal* at that point only if every op remaining on the
//! other stages can still complete — i.e. no remaining op depends,
//! directly or transitively, on an output the drained stage would only
//! have produced after its cut.
//!
//! The dependency model matches the enumerator in [`crate::schedule`]:
//! each stage executes its static order sequentially; a forward for
//! micro-batch `m` additionally needs the upstream stage's forward of
//! `m`; a backward needs the downstream stage's backward of `m`;
//! recompute reads only the stage's own stashed input. Mini-batch
//! boundaries (every stage's order fully executed) are therefore always
//! legal drain points — the property the manager's live-migration model
//! relies on, since it only migrates between plan attempts.

use crate::op::{Op, OpKind};
use crate::schedule::StaticSchedule;

/// Whether stage `stage` may drain in place after completing
/// `completed[s]` ops on each stage `s` of `schedule`.
///
/// `completed` gives, per stage, how many ops of that stage's static
/// order have already executed. The drained stage is frozen at its
/// prefix; every other stage is advanced to a fixed point under the
/// dependency rules above, and the drain is legal iff all of them reach
/// the end of their orders.
///
/// # Panics
///
/// Panics if `stage >= schedule.p`, `completed.len() != schedule.p`, or
/// any prefix exceeds its stage's order length.
pub fn drain_in_place_legal(schedule: &StaticSchedule, stage: usize, completed: &[usize]) -> bool {
    let p = schedule.p;
    assert!(stage < p, "stage {stage} out of range for p={p}");
    assert_eq!(completed.len(), p, "one completed prefix per stage");
    for (s, &c) in completed.iter().enumerate() {
        assert!(
            c <= schedule.per_stage[s].len(),
            "stage {s}: prefix {c} exceeds order length {}",
            schedule.per_stage[s].len()
        );
    }

    // Whether stage `s` has produced `op` within its first `upto` ops.
    let produced = |s: usize, op: Op, upto: usize| schedule.per_stage[s][..upto].contains(&op);

    // Per-stage progress pointers; the drained stage never advances.
    let mut at: Vec<usize> = completed.to_vec();
    loop {
        let mut advanced = false;
        for s in 0..p {
            if s == stage {
                continue;
            }
            while at[s] < schedule.per_stage[s].len() {
                let op = schedule.per_stage[s][at[s]];
                let cross_ok = match op.kind {
                    OpKind::Forward if s > 0 => {
                        produced(s - 1, Op::new(OpKind::Forward, op.micro), at[s - 1])
                    }
                    OpKind::Backward if s + 1 < p => {
                        produced(s + 1, Op::new(OpKind::Backward, op.micro), at[s + 1])
                    }
                    // First-stage forwards, last-stage backwards, and
                    // recompute depend only on the stage's own prior ops,
                    // which program order already guarantees.
                    _ => true,
                };
                if !cross_ok {
                    break;
                }
                at[s] += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    (0..p)
        .filter(|&s| s != stage)
        .all(|s| at[s] == schedule.per_stage[s].len())
}

/// Whether stage `stage` may drain at a mini-batch boundary: shorthand
/// for [`drain_in_place_legal`] with every stage's order fully executed.
/// Always true — kept as an executable statement of the lemma the
/// manager's live-migration model relies on.
pub fn boundary_drain_legal(schedule: &StaticSchedule, stage: usize) -> bool {
    let completed: Vec<usize> = schedule.per_stage.iter().map(Vec::len).collect();
    drain_in_place_legal(schedule, stage, &completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{enumerate, Discipline};

    fn full(sched: &StaticSchedule) -> Vec<usize> {
        sched.per_stage.iter().map(Vec::len).collect()
    }

    #[test]
    fn minibatch_boundaries_are_legal_for_every_stage_and_discipline() {
        for disc in [Discipline::Varuna, Discipline::GPipe] {
            for p in 1..5 {
                for n_micro in 1..5 {
                    let sched = enumerate(p, n_micro, n_micro.max(2), disc);
                    for stage in 0..p {
                        assert!(
                            boundary_drain_legal(&sched, stage),
                            "{disc:?} p={p} m={n_micro} stage={stage}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn a_finished_stage_may_drain_whatever_the_others_have_done() {
        // The drained stage has produced everything it ever will, so the
        // rest of the pipeline can always run to completion without it.
        for disc in [Discipline::Varuna, Discipline::GPipe] {
            let sched = enumerate(3, 4, 4, disc);
            for stage in 0..3 {
                let mut completed = vec![0usize; 3];
                completed[stage] = sched.per_stage[stage].len();
                assert!(
                    drain_in_place_legal(&sched, stage, &completed),
                    "{disc:?} stage={stage}"
                );
            }
        }
    }

    #[test]
    fn cutting_off_a_backward_the_upstream_stage_still_needs_is_illegal() {
        for disc in [Discipline::Varuna, Discipline::GPipe] {
            let sched = enumerate(2, 3, 3, disc);
            // Freeze stage 1 one op short: its last backward never lands,
            // so stage 0's matching backward can never run.
            let cut = sched.per_stage[1].len() - 1;
            assert_eq!(sched.per_stage[1][cut].kind, OpKind::Backward);
            let completed = vec![0, cut];
            assert!(
                !drain_in_place_legal(&sched, 1, &completed),
                "{disc:?}: missing downstream backward must block the drain"
            );
        }
    }

    #[test]
    fn cutting_off_a_forward_the_downstream_stage_still_needs_is_illegal() {
        for disc in [Discipline::Varuna, Discipline::GPipe] {
            let sched = enumerate(2, 3, 3, disc);
            // Freeze stage 0 before any op: stage 1 never receives a
            // single forward activation.
            assert!(
                !drain_in_place_legal(&sched, 0, &[0, 0]),
                "{disc:?}: missing upstream forwards must block the drain"
            );
        }
    }

    #[test]
    fn a_single_stage_pipeline_drains_vacuously() {
        let sched = enumerate(1, 3, 3, Discipline::Varuna);
        assert!(drain_in_place_legal(&sched, 0, &[0]));
        assert!(boundary_drain_legal(&sched, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_stage_panics() {
        let sched = enumerate(2, 2, 2, Discipline::Varuna);
        drain_in_place_legal(&sched, 2, &[0, 0]);
    }

    #[test]
    fn partial_but_dependency_closed_prefixes_are_legal() {
        // Stage 0 has run its first forward only; stage 1 has run
        // nothing. Draining stage 1 is illegal (its backwards are still
        // owed to stage 0)... unless stage 0 is already past the point of
        // needing them. With nothing completed downstream the cut
        // violates stage 0's backwards; completing stage 1 fully makes
        // the same drain legal.
        let sched = enumerate(2, 2, 2, Discipline::Varuna);
        assert!(!drain_in_place_legal(&sched, 1, &[1, 0]));
        let completed = vec![1, sched.per_stage[1].len()];
        assert!(drain_in_place_legal(&sched, 1, &completed));
    }
}
