#![warn(missing_docs)]
//! The scheduling substrate of the Varuna reproduction.
//!
//! The paper's central comparisons (Figure 4, Tables 5–6) are between
//! *schedules* — Varuna's opportunistic static schedule vs. GPipe / 1F1B /
//! PipeDream — and its morphing-correctness argument rests on schedule
//! choice never changing training semantics. This crate is therefore the
//! single home of everything schedule-shaped, shared by every substrate
//! that executes one:
//!
//! - [`op`]: the `F`/`R`/`B` operation vocabulary and trace spans.
//! - [`policy`]: the [`SchedulePolicy`] trait, the [`StageView`] legality
//!   interface, and the greedy reference policy.
//! - [`schedule`]: the offline [`StaticSchedule`] enumerator (paper §3.2)
//!   and the run-time [`VarunaPolicy`] that follows it opportunistically.
//!
//! The contract splits responsibility in two:
//!
//! - the **engine** (the discrete-event emulator in `varuna-exec`, or the
//!   real numeric trainer in `varuna-train`) owns *legality* — it knows
//!   which inputs have arrived, how full the activation stash is, which
//!   gradients are in hand, and whether a finished recompute has committed
//!   the stage (paper constraint 2) — and exposes it as a [`StageView`];
//! - the **policy** owns *discipline* — given the view, it picks which of
//!   the legal ops to run, or idles.
//!
//! Because both the emulator and the trainer drive the same policies
//! through the same view, emulated op order can be checked against real
//! execution (the paper's "simulation faithful to execution" premise,
//! Table 7), and final weights can be shown schedule-invariant on real
//! numerics.

pub mod drain;
pub mod op;
pub mod policy;
pub mod schedule;

pub use drain::{boundary_drain_legal, drain_in_place_legal};
pub use op::{Op, OpKind, OpSpan};
pub use policy::{GreedyPolicy, PolicyFactory, SchedulePolicy, StageView};
pub use schedule::{
    enumerate, enumerate_policy, generate_schedule, Discipline, StaticSchedule, VarunaPolicy,
};
