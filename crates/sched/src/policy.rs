//! The schedule policy interface and the greedy reference policy.
//!
//! A policy decides, whenever a stage's GPU goes idle, which legal
//! operation to run next. The engine computes legality; the policy picks
//! the discipline. GPipe, 1F1B, PipeDream (in `varuna-baselines`) and
//! Varuna's static+opportunistic schedule (in the `varuna` crate) all
//! implement this trait, so they are compared on identical substrates.

use crate::op::{Op, OpKind};

/// What a stage can see when choosing its next operation.
///
/// All per-micro-batch slices are indexed by micro-batch id `0..n_micro`.
#[derive(Debug)]
pub struct StageView<'a> {
    /// This stage's index.
    pub stage: usize,
    /// Pipeline depth `P`.
    pub p: usize,
    /// Whether this is the last pipeline stage (computes the loss; its
    /// "gradient arrival" is its own forward completion).
    pub last_stage: bool,
    /// Micro-batches per mini-batch.
    pub n_micro: usize,
    /// Count of forwards completed (forwards always run in order).
    pub forwards_done: usize,
    /// Whether the input for the next forward has arrived and the stash
    /// has room.
    pub next_forward_ready: bool,
    /// Per-micro-batch: gradient available and backward not yet run.
    pub grads_ready: &'a [bool],
    /// Per-micro-batch: recompute completed.
    pub recomputes_done: &'a [bool],
    /// Per-micro-batch: backward completed.
    pub backwards_done: &'a [bool],
    /// Micro-batch whose forward/recompute activations are still live on
    /// the GPU (no other op has run since).
    pub live_acts: Option<usize>,
    /// Micro-batch that has been recomputed and is now unconditionally
    /// waiting for its backward (paper schedule constraint 2).
    pub pending_recompute: Option<usize>,
    /// Input stashes currently held.
    pub stash_len: usize,
    /// Maximum stashes memory allows.
    pub stash_window: usize,
    /// Whether this run rematerializes activations (false for PipeDream,
    /// which stores them instead).
    pub recompute_enabled: bool,
}

impl StageView<'_> {
    /// Whether a backward for `mb` may run now.
    pub fn backward_ready(&self, mb: usize) -> bool {
        if mb >= self.n_micro || !self.grads_ready[mb] || self.backwards_done[mb] {
            return false;
        }
        if let Some(p) = self.pending_recompute {
            if p != mb {
                return false;
            }
        }
        if !self.recompute_enabled {
            return true;
        }
        self.recomputes_done[mb] || self.live_acts == Some(mb)
    }

    /// Whether a recompute for `mb` may run now.
    pub fn recompute_ready(&self, mb: usize) -> bool {
        self.recompute_enabled
            && self.pending_recompute.is_none()
            && mb < self.forwards_done
            && !self.recomputes_done[mb]
            && !self.backwards_done[mb]
            && self.live_acts != Some(mb)
    }

    /// Whether the next forward may run now.
    pub fn forward_ready(&self) -> bool {
        self.pending_recompute.is_none()
            && self.forwards_done < self.n_micro
            && self.next_forward_ready
    }

    /// Whether `op` is legal in this view (the engine asserts this on
    /// every pick).
    pub fn is_legal(&self, op: Op) -> bool {
        match op.kind {
            OpKind::Forward => self.forward_ready() && op.micro == self.forwards_done,
            OpKind::Recompute => self.recompute_ready(op.micro),
            OpKind::Backward => self.backward_ready(op.micro),
        }
    }

    /// The smallest forwarded micro-batch whose backward has not run —
    /// the next backward under FIFO (in-order) backward disciplines.
    pub fn next_fifo_backward(&self) -> Option<usize> {
        (0..self.forwards_done).find(|&mb| !self.backwards_done[mb])
    }

    /// True when every backward has completed.
    pub fn all_done(&self) -> bool {
        self.backwards_done.iter().take(self.n_micro).all(|&b| b)
    }
}

/// A per-(stage, replica) schedule discipline.
pub trait SchedulePolicy: Send {
    /// Picks the next operation to run, or `None` to idle until the next
    /// event. Every returned op must satisfy [`StageView::is_legal`].
    fn pick(&mut self, view: &StageView<'_>) -> Option<Op>;
}

/// Builds a policy instance for each (stage, replica) of a job.
pub type PolicyFactory<'a> = dyn Fn(usize, usize) -> Box<dyn SchedulePolicy> + 'a;

/// Work-conserving greedy discipline: backward first (FIFO), then the
/// recompute for the next FIFO backward, then forward.
///
/// This is the engine's reference policy — close to Varuna's opportunistic
/// behavior but without the offline schedule's recompute lead-time
/// planning.
#[derive(Debug, Default, Clone)]
pub struct GreedyPolicy;

impl SchedulePolicy for GreedyPolicy {
    fn pick(&mut self, view: &StageView<'_>) -> Option<Op> {
        // Finish an unconditionally-pending recompute first (constraint 2).
        if let Some(mb) = view.pending_recompute {
            return view
                .backward_ready(mb)
                .then_some(Op::new(OpKind::Backward, mb));
        }
        // Prefer the oldest ready backward (constraint 3).
        if let Some(mb) = (0..view.n_micro).find(|&mb| view.backward_ready(mb)) {
            return Some(Op::new(OpKind::Backward, mb));
        }
        // Recompute for the next FIFO backward, but only once its gradient
        // has arrived — recomputing earlier would trip schedule
        // constraint 2 (the stage must then idle until that backward),
        // stalling the pipe. Varuna's offline schedule times recompute
        // more aggressively because it knows when gradients will land.
        if let Some(mb) = view.next_fifo_backward() {
            if view.recompute_ready(mb) && view.grads_ready[mb] {
                return Some(Op::new(OpKind::Recompute, mb));
            }
        }
        // Otherwise keep the pipe filled.
        if view.forward_ready() {
            return Some(Op::new(OpKind::Forward, view.forwards_done));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ViewState {
        grads: Vec<bool>,
        recs: Vec<bool>,
        bwds: Vec<bool>,
    }

    impl ViewState {
        fn new(n: usize) -> Self {
            ViewState {
                grads: vec![false; n],
                recs: vec![false; n],
                bwds: vec![false; n],
            }
        }

        fn view(&self, forwards_done: usize, next_fwd_ready: bool) -> StageView<'_> {
            StageView {
                stage: 1,
                p: 4,
                last_stage: false,
                n_micro: self.grads.len(),
                forwards_done,
                next_forward_ready: next_fwd_ready,
                grads_ready: &self.grads,
                recomputes_done: &self.recs,
                backwards_done: &self.bwds,
                live_acts: None,
                pending_recompute: None,
                stash_len: 0,
                stash_window: usize::MAX,
                recompute_enabled: true,
            }
        }
    }

    #[test]
    fn greedy_prefers_backward_over_forward() {
        let mut st = ViewState::new(4);
        st.grads[0] = true;
        st.recs[0] = true;
        let v = st.view(2, true);
        assert_eq!(GreedyPolicy.pick(&v), Some(Op::new(OpKind::Backward, 0)));
    }

    #[test]
    fn greedy_recomputes_only_after_gradient_arrival() {
        let mut st = ViewState::new(4);
        let v = st.view(2, true);
        // No gradients yet: keep the pipe filled with forwards rather than
        // recompute speculatively (which would trip constraint 2).
        assert_eq!(GreedyPolicy.pick(&v), Some(Op::new(OpKind::Forward, 2)));
        st.grads[0] = true;
        let v = st.view(2, true);
        // Gradient 0 arrived: rematerialize its activations.
        assert_eq!(GreedyPolicy.pick(&v), Some(Op::new(OpKind::Recompute, 0)));
    }

    #[test]
    fn pending_recompute_blocks_everything_but_its_backward() {
        let mut st = ViewState::new(4);
        st.recs[0] = true;
        let mut v = st.view(2, true);
        v.pending_recompute = Some(0);
        assert_eq!(GreedyPolicy.pick(&v), None, "must wait for backward 0");
        st.grads[0] = true;
        let mut v = st.view(2, true);
        v.pending_recompute = Some(0);
        assert_eq!(GreedyPolicy.pick(&v), Some(Op::new(OpKind::Backward, 0)));
    }

    #[test]
    fn live_activations_let_backward_skip_recompute() {
        let mut st = ViewState::new(3);
        st.grads[1] = true;
        let mut v = st.view(2, false);
        v.live_acts = Some(1);
        assert!(v.backward_ready(1));
        assert!(!v.recompute_ready(1), "live activations need no recompute");
    }

    #[test]
    fn legality_checks_forward_index() {
        let st = ViewState::new(4);
        let v = st.view(1, true);
        assert!(v.is_legal(Op::new(OpKind::Forward, 1)));
        assert!(
            !v.is_legal(Op::new(OpKind::Forward, 2)),
            "forwards run in order"
        );
    }

    #[test]
    fn disabled_recompute_makes_backward_depend_only_on_grads() {
        let mut st = ViewState::new(2);
        st.grads[0] = true;
        let mut v = st.view(1, false);
        v.recompute_enabled = false;
        assert!(v.backward_ready(0));
        assert!(!v.recompute_ready(0));
    }

    #[test]
    fn all_done_detects_completion() {
        let mut st = ViewState::new(2);
        st.bwds = vec![true, true];
        let v = st.view(2, false);
        assert!(v.all_done());
    }
}
