//! Pipeline operations and trace spans.

use serde::{Deserialize, Serialize};

/// The three GPU operations of recompute-based pipeline training
/// (paper Figure 4: F, R, and B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass of one micro-batch through the stage.
    Forward,
    /// Recompute: re-run the forward from the stashed input activation to
    /// rematerialize intermediate activations for the backward pass.
    Recompute,
    /// Backward pass of one micro-batch through the stage.
    Backward,
}

impl OpKind {
    /// One-letter code used in Gantt charts (`F`/`R`/`B`) and in
    /// `varuna-obs` op events.
    pub fn code(&self) -> char {
        match self {
            OpKind::Forward => 'F',
            OpKind::Recompute => 'R',
            OpKind::Backward => 'B',
        }
    }

    /// The inverse of [`OpKind::code`].
    pub fn from_code(c: char) -> Option<OpKind> {
        match c {
            'F' => Some(OpKind::Forward),
            'R' => Some(OpKind::Recompute),
            'B' => Some(OpKind::Backward),
            _ => None,
        }
    }
}

/// One operation bound to a micro-batch index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Micro-batch index, 0-based.
    pub micro: usize,
}

impl Op {
    /// Convenience constructor.
    pub fn new(kind: OpKind, micro: usize) -> Self {
        Op { kind, micro }
    }
}

/// A completed operation in the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSpan {
    /// Pipeline stage.
    pub stage: usize,
    /// Data-parallel replica.
    pub replica: usize,
    /// The operation.
    pub op: Op,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl OpSpan {
    /// Duration of the span.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct() {
        let codes = [
            OpKind::Forward.code(),
            OpKind::Recompute.code(),
            OpKind::Backward.code(),
        ];
        assert_eq!(codes, ['F', 'R', 'B']);
    }

    #[test]
    fn span_duration() {
        let s = OpSpan {
            stage: 0,
            replica: 0,
            op: Op::new(OpKind::Forward, 3),
            start: 1.5,
            end: 2.25,
        };
        assert_eq!(s.duration(), 0.75);
    }
}
