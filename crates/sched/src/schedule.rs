//! Varuna's pipeline schedule (paper §3.2).
//!
//! A **static rule-based schedule** is enumerated offline for a given
//! pipeline depth and micro-batch count, enforcing the paper's three
//! constraints:
//!
//! 1. recompute for micro-batch `m` at stage `k` is timed so it completes
//!    just as `m`'s gradient arrives from stage `k+1` (lead time `> T_f`);
//! 2. once a recompute finishes, the stage unconditionally waits for the
//!    corresponding backward (a forward would double activation memory);
//! 3. when both a forward and a backward are ready, the backward wins.
//!
//! At run time each stage follows its static order, but when the
//! designated op is blocked (gradients delayed by network jitter) the
//! stage **opportunistically** runs a later forward instead — the
//! work-conserving deviation that makes Varuna jitter-tolerant where GPipe
//! and 1F1B stall.

use serde::{Deserialize, Serialize};

use crate::op::{Op, OpKind};
use crate::policy::{PolicyFactory, SchedulePolicy, StageView};

/// Which offline discipline to enumerate (GPipe is included so Figure 4
/// can be regenerated from the same simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Varuna's rules (constraints 1-3 above).
    Varuna,
    /// GPipe: all forwards, then reverse-order recompute+backward.
    GPipe,
}

/// An offline-enumerated schedule: one ordered op list per stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticSchedule {
    /// Pipeline depth.
    pub p: usize,
    /// Micro-batches per mini-batch.
    pub n_micro: usize,
    /// Per-stage op order.
    pub per_stage: Vec<Vec<Op>>,
    /// Idealized makespan in forward-pass units (B = 2F, R = F, zero
    /// network latency).
    pub makespan: f64,
}

impl StaticSchedule {
    /// A [`PolicyFactory`]-shaped closure that hands every `(stage,
    /// replica)` an opportunistic [`VarunaPolicy`] replaying this schedule.
    /// All data-parallel replicas of a stage share the same static order.
    pub fn factory(&self) -> impl Fn(usize, usize) -> Box<dyn SchedulePolicy> + '_ {
        move |stage, _replica| Box::new(VarunaPolicy::for_stage(self, stage))
    }
}

/// Generates the Varuna static schedule for `p` stages and `n_micro`
/// micro-batches with activation-stash window `window`.
pub fn generate_schedule(p: usize, n_micro: usize, window: usize) -> StaticSchedule {
    enumerate(p, n_micro, window, Discipline::Varuna)
}

/// Enumerates a schedule under either discipline using a unit-time global
/// simulation (`F = R = 1`, `B = 2`, zero latency).
pub fn enumerate(p: usize, n_micro: usize, window: usize, disc: Discipline) -> StaticSchedule {
    assert!(p >= 1 && n_micro >= 1 && window >= 1);
    const F: f64 = 1.0;
    const R: f64 = 1.0;
    const B: f64 = 2.0;

    struct St {
        free_at: f64,
        fwd_done: usize,
        fwd_end: Vec<f64>,
        bwd_done: Vec<bool>,
        bwd_start: Vec<f64>,
        bwd_end: Vec<f64>,
        rec_done: Vec<bool>,
        pending_rec: Option<usize>,
        live: Option<usize>,
        stash: usize,
        order: Vec<Op>,
    }

    let mut st: Vec<St> = (0..p)
        .map(|_| St {
            free_at: 0.0,
            fwd_done: 0,
            fwd_end: vec![f64::INFINITY; n_micro],
            bwd_done: vec![false; n_micro],
            bwd_start: vec![f64::INFINITY; n_micro],
            bwd_end: vec![f64::INFINITY; n_micro],
            rec_done: vec![false; n_micro],
            pending_rec: None,
            live: None,
            stash: 0,
            order: Vec::with_capacity(3 * n_micro),
        })
        .collect();

    // Time-stepped global simulation: at each step, dispatch on every free
    // stage; advance time to the next completion.
    let mut now = 0.0f64;
    let total_backwards = p * n_micro;
    let mut done = 0usize;
    // A guard against rule bugs (the schedule must terminate).
    let mut guard = 0usize;
    while done < total_backwards {
        guard += 1;
        assert!(
            guard < 100 * total_backwards + 100,
            "schedule enumeration diverged"
        );
        // Dispatch every stage that is free at `now`.
        for s in 0..p {
            if st[s].free_at > now {
                continue;
            }
            let last = s == p - 1;
            // Gradient for micro-batch m is available at stage s when
            // stage s+1's backward ended (zero-latency offline model); for
            // the last stage, when its own forward ended.
            let grad_ready = |st: &[St], m: usize| -> bool {
                if last {
                    st[s].fwd_end[m] <= now
                } else {
                    st[s + 1].bwd_end[m] <= now
                }
            };
            let op = {
                let stage = &st[s];
                // Constraint 2: a finished recompute commits the stage.
                if let Some(m) = stage.pending_rec {
                    if grad_ready(&st, m) {
                        Some(Op::new(OpKind::Backward, m))
                    } else {
                        None
                    }
                } else {
                    // Varuna drains backwards FIFO; GPipe walks them in
                    // reverse micro-batch order.
                    let next_b = match disc {
                        Discipline::Varuna => (0..stage.fwd_done).find(|&m| !stage.bwd_done[m]),
                        Discipline::GPipe => {
                            (0..stage.fwd_done).rev().find(|&m| !stage.bwd_done[m])
                        }
                    };
                    let backward_ok = next_b.is_some_and(|m| {
                        grad_ready(&st, m)
                            && (stage.rec_done[m]
                                || stage.live == Some(m)
                                || !needs_rec(disc, last))
                    });
                    let forwards_first = disc == Discipline::GPipe && stage.fwd_done < n_micro;
                    if backward_ok && !forwards_first {
                        Some(Op::new(OpKind::Backward, next_b.unwrap()))
                    } else if let Some(m) = next_b.filter(|&m| {
                        // Constraint 1 (Varuna only): recompute once the
                        // downstream backward has started, so the
                        // recompute completes just as the gradient lands.
                        // GPipe has no such lead: it recomputes only after
                        // the gradient arrives, serializing R into the
                        // backward wave — the structural inefficiency of
                        // Figure 4.
                        let window_open = match disc {
                            Discipline::Varuna => {
                                last || st[s + 1].bwd_start[m] <= now || grad_ready(&st, m)
                            }
                            Discipline::GPipe => grad_ready(&st, m),
                        };
                        needs_rec(disc, last)
                            && !stage.rec_done[m]
                            && stage.live != Some(m)
                            && !forwards_first
                            && window_open
                    }) {
                        Some(Op::new(OpKind::Recompute, m))
                    } else if stage.fwd_done < n_micro
                        && stage.stash < window
                        && (s == 0 || st[s - 1].fwd_end[stage.fwd_done] <= now)
                    {
                        Some(Op::new(OpKind::Forward, stage.fwd_done))
                    } else {
                        None
                    }
                }
            };
            let Some(op) = op else { continue };
            let stage = &mut st[s];
            stage.order.push(op);
            match op.kind {
                OpKind::Forward => {
                    stage.fwd_end[op.micro] = now + F;
                    stage.fwd_done += 1;
                    stage.stash += 1;
                    stage.live = Some(op.micro);
                    stage.free_at = now + F;
                }
                OpKind::Recompute => {
                    stage.rec_done[op.micro] = true;
                    stage.pending_rec = Some(op.micro);
                    stage.live = Some(op.micro);
                    stage.free_at = now + R;
                }
                OpKind::Backward => {
                    stage.bwd_done[op.micro] = true;
                    stage.bwd_start[op.micro] = now;
                    stage.bwd_end[op.micro] = now + B;
                    stage.pending_rec = None;
                    stage.live = None;
                    stage.stash -= 1;
                    stage.free_at = now + B;
                    done += 1;
                }
            }
        }
        // Advance to the next interesting time: the earliest stage-free or
        // completion boundary strictly after `now`.
        let mut next = f64::INFINITY;
        for stage in &st {
            if stage.free_at > now {
                next = next.min(stage.free_at);
            }
        }
        if next.is_finite() {
            now = next;
        } else if done < total_backwards {
            // Everyone idle at `now` with nothing dispatched: advance by
            // the smallest quantum to re-evaluate (should not happen; the
            // guard above catches true deadlock).
            now += F;
        }
    }
    let makespan = st
        .iter()
        .flat_map(|s| s.bwd_end.iter())
        .fold(0.0f64, |a, &b| a.max(b));
    StaticSchedule {
        p,
        n_micro,
        per_stage: st.into_iter().map(|s| s.order).collect(),
        makespan,
    }
}

/// Enumerates the offline op order produced by an arbitrary
/// [`SchedulePolicy`] under the same idealized unit-time model as
/// [`enumerate`] (`F = R = 1`, `B = 2`, zero network latency).
///
/// Where [`enumerate`] hard-codes the Varuna/GPipe dispatch rules, this
/// drives one policy instance per stage through the [`StageView`] legality
/// interface — exactly as the emulator and the numeric trainer do — so any
/// discipline (1F1B, PipeDream, greedy, …) can be rendered as a
/// [`StaticSchedule`] without a second rule encoding. Pass
/// `recompute_enabled = false` for disciplines that store activations
/// instead of rematerializing them (PipeDream).
///
/// # Panics
///
/// Panics if a policy returns an illegal op, or if the policies wedge (no
/// stage can make progress and the schedule cannot terminate).
pub fn enumerate_policy(
    p: usize,
    n_micro: usize,
    window: usize,
    recompute_enabled: bool,
    factory: &PolicyFactory<'_>,
) -> StaticSchedule {
    assert!(p >= 1 && n_micro >= 1 && window >= 1);
    const F: f64 = 1.0;
    const R: f64 = 1.0;
    const B: f64 = 2.0;

    struct St {
        policy: Box<dyn SchedulePolicy>,
        free_at: f64,
        fwd_done: usize,
        fwd_end: Vec<f64>,
        bwd_done: Vec<bool>,
        bwd_end: Vec<f64>,
        rec_done: Vec<bool>,
        pending_rec: Option<usize>,
        live: Option<usize>,
        stash: usize,
        order: Vec<Op>,
    }

    let mut st: Vec<St> = (0..p)
        .map(|s| St {
            policy: factory(s, 0),
            free_at: 0.0,
            fwd_done: 0,
            fwd_end: vec![f64::INFINITY; n_micro],
            bwd_done: vec![false; n_micro],
            bwd_end: vec![f64::INFINITY; n_micro],
            rec_done: vec![false; n_micro],
            pending_rec: None,
            live: None,
            stash: 0,
            order: Vec::with_capacity(3 * n_micro),
        })
        .collect();

    let mut now = 0.0f64;
    let total_backwards = p * n_micro;
    let mut done = 0usize;
    let mut guard = 0usize;
    while done < total_backwards {
        guard += 1;
        assert!(
            guard < 100 * total_backwards + 100,
            "policy enumeration diverged"
        );
        for s in 0..p {
            if st[s].free_at > now {
                continue;
            }
            let last = s == p - 1;
            // Zero-latency event model, identical to `enumerate`: the
            // gradient for micro-batch m lands at stage s when stage s+1's
            // backward ends (for the last stage, when its own forward
            // ends); the input for the next forward lands when stage s-1's
            // forward ends.
            let grads_ready: Vec<bool> = (0..n_micro)
                .map(|m| {
                    !st[s].bwd_done[m]
                        && if last {
                            st[s].fwd_end[m] <= now
                        } else {
                            st[s + 1].bwd_end[m] <= now
                        }
                })
                .collect();
            let stage = &st[s];
            let next_forward_ready = stage.fwd_done < n_micro
                && stage.stash < window
                && (s == 0 || st[s - 1].fwd_end[stage.fwd_done] <= now);
            // Snapshot the per-mb state so the view does not hold a borrow
            // of `st` across the (mutable) policy pick.
            let rec_done = stage.rec_done.clone();
            let bwd_done = stage.bwd_done.clone();
            let view = StageView {
                stage: s,
                p,
                last_stage: last,
                n_micro,
                forwards_done: stage.fwd_done,
                next_forward_ready,
                grads_ready: &grads_ready,
                recomputes_done: &rec_done,
                backwards_done: &bwd_done,
                live_acts: stage.live,
                pending_recompute: stage.pending_rec,
                stash_len: stage.stash,
                stash_window: window,
                recompute_enabled,
            };
            let Some(op) = st[s].policy.pick(&view) else {
                continue;
            };
            assert!(view.is_legal(op), "stage {s} picked illegal {op:?}");
            let stage = &mut st[s];
            stage.order.push(op);
            // Starting any op other than the backward that consumes them
            // invalidates live activations (same rule as the emulator).
            if !(op.kind == OpKind::Backward && stage.live == Some(op.micro)) {
                stage.live = None;
            }
            match op.kind {
                OpKind::Forward => {
                    stage.fwd_end[op.micro] = now + F;
                    stage.fwd_done += 1;
                    stage.stash += 1;
                    stage.live = Some(op.micro);
                    stage.free_at = now + F;
                }
                OpKind::Recompute => {
                    stage.rec_done[op.micro] = true;
                    stage.pending_rec = Some(op.micro);
                    stage.live = Some(op.micro);
                    stage.free_at = now + R;
                }
                OpKind::Backward => {
                    stage.bwd_done[op.micro] = true;
                    stage.bwd_end[op.micro] = now + B;
                    stage.pending_rec = None;
                    stage.live = None;
                    stage.stash -= 1;
                    stage.free_at = now + B;
                    done += 1;
                }
            }
        }
        let mut next = f64::INFINITY;
        for stage in &st {
            if stage.free_at > now {
                next = next.min(stage.free_at);
            }
        }
        if next.is_finite() {
            now = next;
        } else if done < total_backwards {
            now += F;
        }
    }
    let makespan = st
        .iter()
        .flat_map(|s| s.bwd_end.iter())
        .filter(|e| e.is_finite())
        .fold(0.0f64, |a, &b| a.max(b));
    StaticSchedule {
        p,
        n_micro,
        per_stage: st.into_iter().map(|s| s.order).collect(),
        makespan,
    }
}

/// Whether a stage recomputes under the given discipline. In Varuna the
/// last stage never recomputes (its backward chases its forward, paper
/// Figure 4); in GPipe only the final micro-batch escapes (handled by the
/// live-activation rule).
fn needs_rec(disc: Discipline, last: bool) -> bool {
    match disc {
        Discipline::Varuna => !last,
        Discipline::GPipe => true,
    }
}

/// The run-time policy: follow the static order; when the designated op is
/// blocked, opportunistically run a later forward from the list.
#[derive(Debug, Clone)]
pub struct VarunaPolicy {
    order: Vec<Op>,
    executed: Vec<bool>,
    cursor: usize,
    opportunistic: bool,
}

impl VarunaPolicy {
    /// Builds the policy for one stage from the static schedule.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn for_stage(schedule: &StaticSchedule, stage: usize) -> Self {
        let order = schedule.per_stage[stage].clone();
        let executed = vec![false; order.len()];
        VarunaPolicy {
            order,
            executed,
            cursor: 0,
            opportunistic: true,
        }
    }

    /// Builds a *strict* variant that never deviates from the static order
    /// — the ablation control for the opportunistic scheduling of §3.2.
    pub fn strict_for_stage(schedule: &StaticSchedule, stage: usize) -> Self {
        let mut p = Self::for_stage(schedule, stage);
        p.opportunistic = false;
        p
    }
}

impl SchedulePolicy for VarunaPolicy {
    fn pick(&mut self, view: &StageView<'_>) -> Option<Op> {
        // Resolve the designated next op, applying run-time corrections
        // for drift between the plan's timing and reality.
        loop {
            while self.cursor < self.order.len() && self.executed[self.cursor] {
                self.cursor += 1;
            }
            let &op = self.order.get(self.cursor)?;
            // A planned recompute made redundant (its backward already ran
            // off live activations, or they are live right now) is
            // skipped, and the next op becomes designated.
            if op.kind == OpKind::Recompute
                && (view.backwards_done[op.micro] || view.live_acts == Some(op.micro))
            {
                self.executed[self.cursor] = true;
                continue;
            }
            // A planned backward that was meant to consume live
            // activations but lost them (an opportunistic op ran in
            // between) needs a recompute inserted first.
            if op.kind == OpKind::Backward
                && view.grads_ready[op.micro]
                && !view.backward_ready(op.micro)
                && view.recompute_ready(op.micro)
            {
                return Some(Op::new(OpKind::Recompute, op.micro));
            }
            // The offline schedule timed each recompute to land just
            // before its gradient; at run time jitter can make gradients
            // later than planned, and a recompute that completes with no
            // gradient in hand wedges the stage (constraint 2) — so defer
            // a scheduled recompute until its gradient has arrived.
            let rec_premature = op.kind == OpKind::Recompute && !view.grads_ready[op.micro];
            if !rec_premature && view.is_legal(op) {
                self.executed[self.cursor] = true;
                return Some(op);
            }
            break;
        }
        // The designated op is blocked: opportunistic deviation, restricted
        // to forwards (paper §3.2). The strict ablation variant idles
        // instead.
        if !self.opportunistic {
            return None;
        }
        for i in self.cursor + 1..self.order.len() {
            if self.executed[i] {
                continue;
            }
            let op = self.order[i];
            if op.kind == OpKind::Forward && view.is_legal(op) {
                self.executed[i] = true;
                return Some(op);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_varuna_beats_gpipe_makespan() {
        // Figure 4: 4 stages, 5 micro-batches — Varuna's schedule is
        // strictly shorter than GPipe's.
        let v = enumerate(4, 5, usize::MAX, Discipline::Varuna);
        let g = enumerate(4, 5, usize::MAX, Discipline::GPipe);
        assert!(
            v.makespan + 0.5 < g.makespan,
            "varuna {} vs gpipe {}",
            v.makespan,
            g.makespan
        );
    }

    #[test]
    fn every_stage_schedules_every_microbatch() {
        for (p, n) in [(1, 4), (2, 3), (4, 5), (6, 12)] {
            let s = generate_schedule(p, n, usize::MAX);
            for (stage, ops) in s.per_stage.iter().enumerate() {
                let f = ops.iter().filter(|o| o.kind == OpKind::Forward).count();
                let b = ops.iter().filter(|o| o.kind == OpKind::Backward).count();
                assert_eq!(f, n, "stage {stage} forwards");
                assert_eq!(b, n, "stage {stage} backwards");
            }
        }
    }

    #[test]
    fn last_stage_never_recomputes() {
        let s = generate_schedule(4, 5, usize::MAX);
        let last = s.per_stage.last().unwrap();
        assert!(
            last.iter().all(|o| o.kind != OpKind::Recompute),
            "paper Figure 4: S4 in Varuna performs no recompute"
        );
        // Interior stages do recompute.
        assert!(s.per_stage[1].iter().any(|o| o.kind == OpKind::Recompute));
    }

    #[test]
    fn backwards_are_fifo_in_varuna() {
        let s = generate_schedule(4, 6, usize::MAX);
        for ops in &s.per_stage {
            let order: Vec<usize> = ops
                .iter()
                .filter(|o| o.kind == OpKind::Backward)
                .map(|o| o.micro)
                .collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(order, sorted);
        }
    }

    #[test]
    fn gpipe_backwards_are_reverse_order() {
        let s = enumerate(3, 4, usize::MAX, Discipline::GPipe);
        let order: Vec<usize> = s.per_stage[0]
            .iter()
            .filter(|o| o.kind == OpKind::Backward)
            .map(|o| o.micro)
            .collect();
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn makespan_scales_sublinearly_with_pipeline_depth() {
        // The bubble grows with P but amortizes over micro-batches.
        let n = 32;
        let m4 = generate_schedule(4, n, usize::MAX).makespan;
        let m8 = generate_schedule(8, n, usize::MAX).makespan;
        // Ideal per-stage work is n*(F+R+B) = 4n regardless of P; deeper
        // pipelines only add bubble.
        assert!(m8 > m4);
        assert!(
            m8 < 1.3 * m4,
            "deepening 4->8 should cost bubble only ({m4} -> {m8})"
        );
    }

    #[test]
    fn window_limits_forward_runahead() {
        let s = generate_schedule(4, 12, 2);
        // With a window of 2, no stage's schedule may have more than 2
        // forwards not yet matched by backwards at any prefix.
        for ops in &s.per_stage {
            let mut outstanding = 0i64;
            for op in ops {
                match op.kind {
                    OpKind::Forward => outstanding += 1,
                    OpKind::Backward => outstanding -= 1,
                    OpKind::Recompute => {}
                }
                assert!(outstanding <= 2, "window violated in {ops:?}");
            }
        }
    }

    #[test]
    fn policy_enumeration_runs_greedy_to_completion() {
        use crate::policy::GreedyPolicy;
        let s = enumerate_policy(4, 5, usize::MAX, true, &|_, _| Box::new(GreedyPolicy));
        for (stage, ops) in s.per_stage.iter().enumerate() {
            let f = ops.iter().filter(|o| o.kind == OpKind::Forward).count();
            let b = ops.iter().filter(|o| o.kind == OpKind::Backward).count();
            assert_eq!(f, 5, "stage {stage} forwards");
            assert_eq!(b, 5, "stage {stage} backwards");
        }
        assert!(s.makespan > 0.0);
    }

    #[test]
    fn strict_varuna_policy_replays_its_static_schedule() {
        // Driving the strict VarunaPolicy through the generic enumerator
        // under the same unit-time model must reproduce the static order —
        // the policy and the offline rules are two views of one schedule.
        let s = generate_schedule(4, 6, usize::MAX);
        let replayed = enumerate_policy(4, 6, usize::MAX, true, &|stage, _| {
            Box::new(VarunaPolicy::strict_for_stage(&s, stage))
        });
        assert_eq!(s.per_stage, replayed.per_stage);
    }

    #[test]
    fn varuna_forwards_are_interspersed_not_bunched() {
        // Figure 4 discussion: Varuna spreads forwards through the
        // schedule (enabling opportunistic scheduling), unlike GPipe.
        let v = generate_schedule(4, 8, usize::MAX);
        let ops = &v.per_stage[1];
        let last_fwd_pos = ops.iter().rposition(|o| o.kind == OpKind::Forward).unwrap();
        let first_bwd_pos = ops.iter().position(|o| o.kind == OpKind::Backward).unwrap();
        assert!(
            last_fwd_pos > first_bwd_pos,
            "forwards should continue after backwards begin"
        );
    }
}
