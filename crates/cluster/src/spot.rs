//! Spot capacity model.
//!
//! Reproduces the paper's Figure 3 observation (Observation 4): when
//! low-priority 1-GPU and 4-GPU VMs are requested alternately, far more
//! aggregate GPU capacity is available as 1-GPU VMs, because a 4-GPU VM
//! needs four co-located free slots on one host while a 1-GPU VM can use
//! any free slot anywhere.
//!
//! The model is a pool of 4-slot hosts shared with background (dedicated)
//! tenants. Background demand follows a diurnal wave with noise; background
//! arrivals take free slots and, when a host is full, evict spot slots —
//! which is exactly how low-priority VMs get preempted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ClusterError;

/// Slots per physical host (GPUs per node in the pool).
pub const SLOTS_PER_HOST: usize = 4;

/// State of the spot capacity pool.
#[derive(Debug, Clone)]
pub struct SpotMarket {
    /// Background-occupied slots per host.
    bg: Vec<usize>,
    /// Spot (our) slots per host.
    ours: Vec<usize>,
    rng: StdRng,
    /// Current simulation time in hours.
    now_hours: f64,
    /// Mean background occupancy fraction the process reverts to.
    base_load: f64,
    /// Amplitude of the diurnal load wave (fraction of capacity).
    wave: f64,
    /// Background departure rate per occupied slot per hour.
    depart_rate: f64,
}

/// A preemption of `gpus` spot GPUs on host `host`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Preemption {
    /// Host on which slots were evicted.
    pub host: usize,
    /// Number of spot GPUs evicted there.
    pub gpus: usize,
}

impl SpotMarket {
    /// Creates a pool of `hosts` hosts with a deterministic seed, starting
    /// at the mean background load.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] when `hosts == 0` (a market
    /// with no hosts can neither grant nor preempt anything).
    pub fn new(hosts: usize, seed: u64) -> Result<Self, ClusterError> {
        if hosts == 0 {
            return Err(ClusterError::InvalidConfig(
                "market needs at least one host".to_string(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let base_load = 0.62;
        let bg = (0..hosts)
            .map(|_| {
                (0..SLOTS_PER_HOST)
                    .filter(|_| rng.gen_bool(base_load))
                    .count()
            })
            .collect();
        Ok(SpotMarket {
            bg,
            ours: vec![0; hosts],
            rng,
            now_hours: 0.0,
            base_load,
            wave: 0.22,
            depart_rate: 0.9,
        })
    }

    /// Number of hosts in the pool.
    pub fn hosts(&self) -> usize {
        self.bg.len()
    }

    /// Current simulation time in hours.
    pub fn now_hours(&self) -> f64 {
        self.now_hours
    }

    /// Instantaneous background target load (diurnal wave).
    fn target_load(&self) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * self.now_hours / 24.0;
        (self.base_load + self.wave * phase.sin()).clamp(0.05, 0.98)
    }

    /// Free slots on host `h`.
    fn free(&self, h: usize) -> usize {
        SLOTS_PER_HOST - self.bg[h] - self.ours[h]
    }

    /// Aggregate GPUs available right now to 1-GPU VM requests.
    pub fn available_1gpu(&self) -> usize {
        (0..self.hosts()).map(|h| self.free(h)).sum()
    }

    /// Aggregate GPUs available right now to 4-GPU VM requests (only fully
    /// free hosts qualify).
    pub fn available_4gpu(&self) -> usize {
        (0..self.hosts())
            .filter(|&h| self.free(h) == SLOTS_PER_HOST)
            .count()
            * SLOTS_PER_HOST
    }

    /// Advances background demand by `dt_hours`, returning any preemptions
    /// of spot slots it caused.
    pub fn step(&mut self, dt_hours: f64) -> Vec<Preemption> {
        assert!(dt_hours > 0.0, "time must advance");
        self.now_hours += dt_hours;
        let hosts = self.hosts();

        // Background departures: each occupied slot frees independently.
        let p_depart = (self.depart_rate * dt_hours).min(1.0);
        for h in 0..hosts {
            let leaving = (0..self.bg[h])
                .filter(|_| self.rng.gen_bool(p_depart))
                .count();
            self.bg[h] -= leaving;
        }

        // Background arrivals: drive occupancy toward the diurnal target.
        let capacity = hosts * SLOTS_PER_HOST;
        let occupied: usize = self.bg.iter().sum();
        let target = (self.target_load() * capacity as f64) as usize;
        let deficit = target.saturating_sub(occupied);
        // Arrivals replace departures plus close a fraction of the deficit.
        let arrivals = (deficit as f64 * (2.0 * dt_hours).min(1.0)).round() as usize;

        let mut preemptions: Vec<Preemption> = Vec::new();
        for _ in 0..arrivals {
            let h = self.rng.gen_range(0..hosts);
            if self.free(h) > 0 {
                self.bg[h] += 1;
            } else if self.ours[h] > 0 {
                // Dedicated demand evicts a low-priority slot.
                self.ours[h] -= 1;
                self.bg[h] += 1;
                match preemptions.iter_mut().find(|p| p.host == h) {
                    Some(p) => p.gpus += 1,
                    None => preemptions.push(Preemption { host: h, gpus: 1 }),
                }
            }
            // A fully busy host with no spot slots blocks the arrival.
        }
        preemptions
    }

    /// Tries to acquire one 1-GPU spot VM; returns the host, if any.
    pub fn request_1gpu(&mut self) -> Option<usize> {
        let h = (0..self.hosts()).find(|&h| self.free(h) > 0)?;
        self.ours[h] += 1;
        Some(h)
    }

    /// Tries to acquire one 4-GPU spot VM; returns the host, if any.
    pub fn request_4gpu(&mut self) -> Option<usize> {
        let h = (0..self.hosts()).find(|&h| self.free(h) == SLOTS_PER_HOST)?;
        self.ours[h] += SLOTS_PER_HOST;
        Some(h)
    }

    /// Releases `gpus` of our slots on `host`.
    ///
    /// # Panics
    ///
    /// Panics if we do not hold that many slots there.
    pub fn release(&mut self, host: usize, gpus: usize) {
        assert!(self.ours[host] >= gpus, "releasing slots we do not hold");
        self.ours[host] -= gpus;
    }

    /// Total spot GPUs we currently hold.
    pub fn held(&self) -> usize {
        self.ours.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_gpu_availability_dominates_four_gpu() {
        // The Figure 3 observation, integrated over 16 hours.
        let mut m = SpotMarket::new(100, 7).unwrap();
        let mut sum1 = 0usize;
        let mut sum4 = 0usize;
        let steps = 16 * 12; // 5-minute steps over 16 hours.
        for _ in 0..steps {
            m.step(1.0 / 12.0);
            sum1 += m.available_1gpu();
            sum4 += m.available_4gpu();
        }
        assert!(sum1 > 0);
        assert!(
            sum1 as f64 > 1.8 * sum4 as f64,
            "1-GPU capacity ({sum1}) should far exceed 4-GPU capacity ({sum4})"
        );
    }

    #[test]
    fn zero_host_market_is_a_typed_error() {
        assert!(matches!(
            SpotMarket::new(0, 1),
            Err(ClusterError::InvalidConfig(_))
        ));
    }

    #[test]
    fn availability_is_reproducible() {
        let run = |seed| {
            let mut m = SpotMarket::new(50, seed).unwrap();
            (0..48)
                .map(|_| m.step(0.25).len() + m.available_1gpu())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn grants_reduce_availability_and_release_restores_it() {
        let mut m = SpotMarket::new(10, 1).unwrap();
        let before = m.available_1gpu();
        let h = m.request_1gpu().expect("pool should have a free slot");
        assert_eq!(m.available_1gpu(), before - 1);
        assert_eq!(m.held(), 1);
        m.release(h, 1);
        assert_eq!(m.available_1gpu(), before);
        assert_eq!(m.held(), 0);
    }

    #[test]
    fn four_gpu_grant_takes_a_whole_host() {
        let mut m = SpotMarket::new(200, 2).unwrap();
        if let Some(h) = m.request_4gpu() {
            assert_eq!(m.ours[h], SLOTS_PER_HOST);
            assert_eq!(m.free(h), 0);
        } else {
            panic!("a 200-host pool should have at least one free host");
        }
    }

    #[test]
    fn load_spikes_cause_preemptions_of_held_vms() {
        let mut m = SpotMarket::new(40, 11).unwrap();
        // Grab everything that's free.
        while m.request_1gpu().is_some() {}
        let held = m.held();
        assert!(held > 0);
        // Run a full diurnal cycle; rising background demand must evict
        // some of our slots.
        let mut preempted = 0;
        for _ in 0..(24 * 12) {
            preempted += m.step(1.0 / 12.0).iter().map(|p| p.gpus).sum::<usize>();
        }
        assert!(preempted > 0, "no preemptions over a full load cycle");
        assert_eq!(m.held(), held - preempted);
    }

    #[test]
    #[should_panic(expected = "do not hold")]
    fn over_release_panics() {
        let mut m = SpotMarket::new(4, 1).unwrap();
        m.release(0, 1);
    }
}
