//! Typed errors for the cluster substrate.
//!
//! The substrate sits below `varuna` core in the crate graph, so it owns
//! its own error type; core converts it into `VarunaError::InvalidConfig`
//! at the boundary.

/// Errors surfaced by cluster constructors and trace builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A constructor was given shape-invalid parameters.
    InvalidConfig(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InvalidConfig(s) => write!(f, "invalid cluster configuration: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_reason() {
        let e = ClusterError::InvalidConfig("hosts must be positive".into());
        assert!(e.to_string().contains("hosts must be positive"));
    }
}
