//! Shared-market capacity accounting: per-job VM leases.
//!
//! When many jobs share one contended spot pool, the cloud grants VMs to
//! the *fleet*, and a control plane decides which job each VM works for.
//! [`LeaseBook`] is that ledger: it tracks every granted VM, which job (if
//! any) holds its lease, and enforces the conservation invariant that
//! leased capacity can never exceed granted capacity. All state lives in
//! `BTreeMap`s so iteration — and therefore every allocation decision
//! derived from it — is deterministic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::ClusterError;

/// A fleet job identifier (dense, assigned by the control plane).
pub type JobId = u64;

/// One granted VM's ledger entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseEntry {
    /// GPUs on the VM.
    pub gpus: usize,
    /// The job currently leasing the VM, if any.
    pub holder: Option<JobId>,
}

/// The fleet's ledger of granted VMs and per-job leases.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LeaseBook {
    vms: BTreeMap<u64, LeaseEntry>,
}

impl LeaseBook {
    /// An empty ledger.
    pub fn new() -> Self {
        LeaseBook::default()
    }

    /// Records a market grant of `vm` with `gpus` GPUs (unleased).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the VM is already
    /// granted or has zero GPUs.
    pub fn grant(&mut self, vm: u64, gpus: usize) -> Result<(), ClusterError> {
        if gpus == 0 {
            return Err(ClusterError::InvalidConfig(format!(
                "vm {vm} granted with zero GPUs"
            )));
        }
        if self.vms.contains_key(&vm) {
            return Err(ClusterError::InvalidConfig(format!(
                "vm {vm} granted twice without an intervening preemption"
            )));
        }
        self.vms.insert(vm, LeaseEntry { gpus, holder: None });
        Ok(())
    }

    /// Records a market preemption of `vm`, returning the job whose lease
    /// died with it (if it was leased). Unknown VMs are ignored — the
    /// market can preempt capacity the fleet already lost track of.
    pub fn preempt(&mut self, vm: u64) -> Option<JobId> {
        self.vms.remove(&vm).and_then(|e| e.holder)
    }

    /// Leases `vm` to `job`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the VM is unknown or
    /// already leased to another job.
    pub fn lease(&mut self, vm: u64, job: JobId) -> Result<(), ClusterError> {
        match self.vms.get_mut(&vm) {
            None => Err(ClusterError::InvalidConfig(format!(
                "cannot lease unknown vm {vm}"
            ))),
            Some(e) => match e.holder {
                Some(j) if j != job => Err(ClusterError::InvalidConfig(format!(
                    "vm {vm} already leased to job {j}"
                ))),
                _ => {
                    e.holder = Some(job);
                    Ok(())
                }
            },
        }
    }

    /// Releases `vm` back to the unleased pool (arbiter revocation).
    /// Returns the previous holder, `None` if it was unleased or unknown.
    pub fn release(&mut self, vm: u64) -> Option<JobId> {
        self.vms.get_mut(&vm).and_then(|e| e.holder.take())
    }

    /// Total GPUs the market currently grants the fleet.
    pub fn capacity_gpus(&self) -> usize {
        self.vms.values().map(|e| e.gpus).sum()
    }

    /// Total GPUs leased out to jobs.
    pub fn leased_gpus(&self) -> usize {
        self.vms
            .values()
            .filter(|e| e.holder.is_some())
            .map(|e| e.gpus)
            .sum()
    }

    /// GPUs currently leased to `job`.
    pub fn job_gpus(&self, job: JobId) -> usize {
        self.vms
            .values()
            .filter(|e| e.holder == Some(job))
            .map(|e| e.gpus)
            .sum()
    }

    /// VMs currently leased to `job`, ascending by VM id.
    pub fn job_vms(&self, job: JobId) -> Vec<u64> {
        self.vms
            .iter()
            .filter(|(_, e)| e.holder == Some(job))
            .map(|(&vm, _)| vm)
            .collect()
    }

    /// Unleased VMs as `(vm, gpus)`, ascending by VM id.
    pub fn free_vms(&self) -> Vec<(u64, usize)> {
        self.vms
            .iter()
            .filter(|(_, e)| e.holder.is_none())
            .map(|(&vm, e)| (vm, e.gpus))
            .collect()
    }

    /// Per-job leased GPU totals, ascending by job id.
    pub fn leases_by_job(&self) -> BTreeMap<JobId, usize> {
        let mut out = BTreeMap::new();
        for e in self.vms.values() {
            if let Some(j) = e.holder {
                *out.entry(j).or_insert(0) += e.gpus;
            }
        }
        out
    }

    /// The conservation invariant: leased capacity never exceeds granted
    /// capacity. Structurally true by construction (a lease is a field of
    /// a grant); callers assert it at every arbitration instant anyway so
    /// a future refactor cannot silently break it.
    pub fn check_conservation(&self) -> Result<(), ClusterError> {
        let leased = self.leased_gpus();
        let cap = self.capacity_gpus();
        if leased > cap {
            return Err(ClusterError::InvalidConfig(format!(
                "lease conservation violated: {leased} GPUs leased of {cap} granted"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_lease_release_preempt_lifecycle() {
        let mut book = LeaseBook::new();
        book.grant(0, 1).unwrap();
        book.grant(1, 4).unwrap();
        assert_eq!(book.capacity_gpus(), 5);
        assert_eq!(book.leased_gpus(), 0);

        book.lease(0, 7).unwrap();
        book.lease(1, 7).unwrap();
        assert_eq!(book.job_gpus(7), 5);
        assert_eq!(book.job_vms(7), vec![0, 1]);
        book.check_conservation().unwrap();

        assert_eq!(book.release(1), Some(7));
        assert_eq!(book.job_gpus(7), 1);
        assert_eq!(book.free_vms(), vec![(1, 4)]);

        assert_eq!(book.preempt(0), Some(7), "market kills the leased VM");
        assert_eq!(book.preempt(1), None, "unleased VM dies quietly");
        assert_eq!(book.capacity_gpus(), 0);
    }

    #[test]
    fn double_grant_and_foreign_lease_are_typed_errors() {
        let mut book = LeaseBook::new();
        book.grant(3, 1).unwrap();
        assert!(book.grant(3, 1).is_err());
        assert!(book.grant(4, 0).is_err());
        book.lease(3, 1).unwrap();
        assert!(book.lease(3, 2).is_err(), "no lease theft");
        book.lease(3, 1).unwrap(); // re-lease to the same job is idempotent
        assert!(book.lease(99, 1).is_err(), "unknown vm");
    }

    #[test]
    fn per_job_totals_partition_the_leased_capacity() {
        let mut book = LeaseBook::new();
        for vm in 0..6 {
            book.grant(vm, 1).unwrap();
            book.lease(vm, vm % 2).unwrap();
        }
        let by_job = book.leases_by_job();
        assert_eq!(by_job[&0], 3);
        assert_eq!(by_job[&1], 3);
        assert_eq!(by_job.values().sum::<usize>(), book.leased_gpus());
        book.check_conservation().unwrap();
    }
}
