//! Replayable cluster event traces.
//!
//! Every morphing experiment is driven by a trace of VM grants and
//! preemptions. Traces can be generated from the [`crate::spot`] market
//! (stochastic but seeded) or scripted by hand, and serialize to JSON so an
//! exact run can be replayed.

use serde::{Deserialize, Serialize};
use varuna_obs::{Event, EventBus, EventKind};

use crate::error::ClusterError;
use crate::spot::SpotMarket;

/// What happened to a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusterEventKind {
    /// The cloud granted us a VM with this many GPUs.
    Granted {
        /// GPUs on the granted VM.
        gpus: usize,
    },
    /// The cloud preempted a VM we held.
    Preempted,
    /// The VM began fail-stutter behavior: its compute slowed by `factor`
    /// (paper §4.6: "often by as much as 30%"). Detected by the manager
    /// through heartbeat timing outliers.
    StutterStart {
        /// Compute slowdown factor (> 1.0).
        factor: f64,
    },
    /// The VM recovered to full speed.
    StutterEnd,
    /// The cloud announced the VM will be preempted `lead_hours` from now
    /// (the advance eviction notice some spot markets send). The manager
    /// can use the warning to checkpoint proactively.
    EvictionNotice {
        /// Hours of warning before the preemption lands.
        lead_hours: f64,
    },
    /// The VM stopped sending heartbeats while still holding its grant
    /// (network partition / heartbeat loss). From the manager's viewpoint
    /// this is indistinguishable from a preemption until either the grace
    /// window expires or heartbeats resume.
    SilenceStart,
    /// The silent VM resumed sending heartbeats.
    SilenceEnd,
    /// Checkpoint storage became unreachable: checkpoint writes fail until
    /// the matching [`ClusterEventKind::StorageOutageEnd`]. The `vm` field
    /// of the carrying event is ignored.
    StorageOutageStart,
    /// Checkpoint storage recovered.
    StorageOutageEnd,
    /// The most recent durable checkpoint turned out stale or corrupt; a
    /// resume must fall back to the previous durable one. The `vm` field
    /// of the carrying event is ignored.
    CheckpointCorrupt,
    /// The most recent checkpoint write stopped short mid-write (writer
    /// died or its volume vanished): only `fraction` of the payload
    /// landed. Distinct from [`ClusterEventKind::CheckpointCorrupt`] —
    /// the bytes that landed are fine, there are just not enough of
    /// them — but the consequence is the same fallback to the previous
    /// durable checkpoint. The `vm` field of the carrying event is
    /// ignored.
    CheckpointTorn {
        /// Fraction of the payload that landed, in `[0, 1)`.
        fraction: f64,
    },
    /// The newest *delta* checkpoint stopped short mid-write. Only
    /// meaningful under a delta-checkpointing policy: the torn frame is
    /// detected (never silently restored) and the durable point falls
    /// back to the delta's anchoring full checkpoint, not a whole
    /// interval. The `vm` field of the carrying event is ignored.
    DeltaTorn {
        /// Fraction of the delta payload that landed, in `[0, 1)`.
        fraction: f64,
    },
}

/// One timestamped cluster event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// Time in hours since trace start.
    pub time_hours: f64,
    /// VM identifier, unique within the trace.
    pub vm: u64,
    /// What happened.
    pub kind: ClusterEventKind,
}

/// A time-ordered sequence of cluster events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// Events sorted by time.
    pub events: Vec<ClusterEvent>,
    /// Total duration covered by the trace, hours.
    pub duration_hours: f64,
}

impl ClusterTrace {
    /// Generates a trace by running a job that greedily holds up to
    /// `target_gpus` worth of 1-GPU spot VMs against a seeded market for
    /// `hours`, polling every `poll_minutes`.
    ///
    /// This is the workload of the paper's Figure 8: the manager
    /// "periodically keeps trying to grow the cluster" while the market
    /// preempts VMs as background demand rises.
    pub fn generate_spot_1gpu(
        hosts: usize,
        target_gpus: usize,
        hours: f64,
        poll_minutes: f64,
        seed: u64,
    ) -> Self {
        // A zero-host pool can neither grant nor preempt: the honest trace
        // is an empty one, which downstream replay handles gracefully.
        let Ok(mut market) = SpotMarket::new(hosts, seed) else {
            return ClusterTrace {
                events: Vec::new(),
                duration_hours: hours,
            };
        };
        let mut events = Vec::new();
        let mut next_vm: u64 = 0;
        // Host -> list of (vm id) we hold there, to map preemptions back.
        let mut held: Vec<Vec<u64>> = vec![Vec::new(); hosts];
        let dt = poll_minutes / 60.0;
        let steps = (hours / dt).ceil() as usize;
        // Fail-stutter injection: a held VM goes ~30% slow for a while.
        use rand::{Rng, SeedableRng};
        let mut stutter_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x57A7);
        let mut stuttering: Option<(u64, usize)> = None; // (vm, steps left)

        for step in 0..steps {
            let t = step as f64 * dt;
            // Resolve or start stutter episodes (~one VM slow at a time,
            // episodes of ~1h, starting with ~2%/poll probability).
            match &mut stuttering {
                Some((vm, left)) => {
                    *left -= 1;
                    if *left == 0 {
                        events.push(ClusterEvent {
                            time_hours: t,
                            vm: *vm,
                            kind: ClusterEventKind::StutterEnd,
                        });
                        stuttering = None;
                    }
                }
                None => {
                    if stutter_rng.gen_bool(0.02) {
                        if let Some(vm) = held.iter().flat_map(|v| v.iter()).copied().next() {
                            let episode = (1.0 / dt).ceil() as usize;
                            events.push(ClusterEvent {
                                time_hours: t,
                                vm,
                                kind: ClusterEventKind::StutterStart { factor: 1.3 },
                            });
                            stuttering = Some((vm, episode.max(1)));
                        }
                    }
                }
            }
            // Background demand moves first; it may preempt us.
            for p in market.step(dt) {
                for _ in 0..p.gpus {
                    if let Some(vm) = held[p.host].pop() {
                        if stuttering.map(|(sv, _)| sv) == Some(vm) {
                            stuttering = None;
                        }
                        events.push(ClusterEvent {
                            time_hours: t,
                            vm,
                            kind: ClusterEventKind::Preempted,
                        });
                    }
                }
            }
            // Then we try to grow back to target.
            while market.held() < target_gpus {
                match market.request_1gpu() {
                    Some(h) => {
                        let vm = next_vm;
                        next_vm += 1;
                        held[h].push(vm);
                        events.push(ClusterEvent {
                            time_hours: t,
                            vm,
                            kind: ClusterEventKind::Granted { gpus: 1 },
                        });
                    }
                    None => break,
                }
            }
        }
        ClusterTrace {
            events,
            duration_hours: hours,
        }
    }

    /// A scripted trace from explicit `(time_hours, vm, kind)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] if the events are not
    /// time-ordered or any timestamp is non-finite.
    pub fn scripted(events: Vec<ClusterEvent>, duration_hours: f64) -> Result<Self, ClusterError> {
        if let Some(e) = events.iter().find(|e| !e.time_hours.is_finite()) {
            return Err(ClusterError::InvalidConfig(format!(
                "trace timestamps must be finite, got {} for vm {}",
                e.time_hours, e.vm
            )));
        }
        for w in events.windows(2) {
            if w[0].time_hours > w[1].time_hours {
                return Err(ClusterError::InvalidConfig(format!(
                    "trace must be time-ordered: {} follows {}",
                    w[1].time_hours, w[0].time_hours
                )));
            }
        }
        Ok(ClusterTrace {
            events,
            duration_hours,
        })
    }

    /// Merges traces into one, shifting each by its offset (hours) before
    /// concatenating — the way fleet benches synthesize correlated
    /// multi-day, multi-job spot markets from the existing single-job
    /// traces.
    ///
    /// VM ids are renumbered so different parts never collide (each part's
    /// ids land after every id of the parts before it); the `u64::MAX`
    /// sentinel used by storage-fault events is preserved as-is. Events
    /// are stably sorted by shifted timestamp, so ties keep part order,
    /// and the merged duration covers the farthest-reaching part.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] for a negative or
    /// non-finite offset.
    pub fn merge_shifted(parts: &[(f64, &ClusterTrace)]) -> Result<Self, ClusterError> {
        for (off, _) in parts {
            if !(off.is_finite() && *off >= 0.0) {
                return Err(ClusterError::InvalidConfig(format!(
                    "merge offset must be finite and >= 0, got {off}"
                )));
            }
        }
        let mut events = Vec::new();
        let mut duration_hours: f64 = 0.0;
        let mut vm_base: u64 = 0;
        for (off, part) in parts {
            let mut next_base = vm_base;
            for e in &part.events {
                let vm = if e.vm == u64::MAX {
                    u64::MAX
                } else {
                    next_base = next_base.max(vm_base + e.vm + 1);
                    vm_base + e.vm
                };
                events.push(ClusterEvent {
                    time_hours: e.time_hours + off,
                    vm,
                    kind: e.kind,
                });
            }
            vm_base = next_base;
            duration_hours = duration_hours.max(off + part.duration_hours);
        }
        events.sort_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
        Ok(ClusterTrace {
            events,
            duration_hours,
        })
    }

    /// Number of GPUs held at time `t` (after applying all events ≤ `t`).
    pub fn gpus_at(&self, t: f64) -> usize {
        let mut held: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for e in &self.events {
            if e.time_hours > t {
                break;
            }
            match e.kind {
                ClusterEventKind::Granted { gpus } => {
                    held.insert(e.vm, gpus);
                }
                ClusterEventKind::Preempted => {
                    held.remove(&e.vm);
                }
                // Health and storage faults do not change what the cloud
                // has granted — only what the manager can schedule on.
                _ => {}
            }
        }
        held.values().sum()
    }

    /// Count of preemption events in the trace.
    pub fn preemptions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, ClusterEventKind::Preempted))
            .count()
    }

    /// Reports every preemption in the trace as a
    /// [`EventKind::Preemption`] on `bus` (source `Cluster`, `t_sim` in
    /// seconds since trace start).
    pub fn emit_preemptions(&self, bus: &mut EventBus) {
        for e in &self.events {
            if matches!(e.kind, ClusterEventKind::Preempted) {
                bus.emit_with(|| {
                    Event::cluster(e.time_hours * 3600.0, EventKind::Preemption { vm: e.vm })
                });
            }
        }
    }

    /// Serializes the trace to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_is_time_ordered_and_reproducible() {
        let a = ClusterTrace::generate_spot_1gpu(60, 100, 8.0, 5.0, 13);
        let b = ClusterTrace::generate_spot_1gpu(60, 100, 8.0, 5.0, 13);
        assert_eq!(a, b);
        for w in a.events.windows(2) {
            assert!(w[0].time_hours <= w[1].time_hours);
        }
        assert!(!a.events.is_empty());
    }

    #[test]
    fn long_trace_contains_preemptions_and_regrowth() {
        let t = ClusterTrace::generate_spot_1gpu(60, 120, 60.0, 5.0, 21);
        assert!(t.preemptions() > 5, "60h of spot should see preemptions");
        // The job should hold a meaningful number of GPUs most of the time.
        let samples = [5.0, 15.0, 25.0, 35.0, 45.0, 55.0];
        let min = samples.iter().map(|&t0| t.gpus_at(t0)).min().unwrap();
        let max = samples.iter().map(|&t0| t.gpus_at(t0)).max().unwrap();
        assert!(min > 0, "cluster dropped to zero GPUs");
        assert!(max > min, "trace shows no capacity variation");
    }

    #[test]
    fn gpus_at_applies_grants_and_preemptions() {
        let t = ClusterTrace::scripted(
            vec![
                ClusterEvent {
                    time_hours: 0.0,
                    vm: 0,
                    kind: ClusterEventKind::Granted { gpus: 4 },
                },
                ClusterEvent {
                    time_hours: 1.0,
                    vm: 1,
                    kind: ClusterEventKind::Granted { gpus: 1 },
                },
                ClusterEvent {
                    time_hours: 2.0,
                    vm: 0,
                    kind: ClusterEventKind::Preempted,
                },
            ],
            3.0,
        )
        .unwrap();
        assert_eq!(t.gpus_at(0.5), 4);
        assert_eq!(t.gpus_at(1.5), 5);
        assert_eq!(t.gpus_at(2.5), 1);
    }

    #[test]
    fn emit_preemptions_mirrors_trace_events() {
        use varuna_obs::{EventBus, EventKind, Source, VecSink};
        let t = ClusterTrace::generate_spot_1gpu(60, 120, 60.0, 5.0, 21);
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        t.emit_preemptions(&mut bus);
        let events = sink.take();
        assert_eq!(events.len(), t.preemptions());
        for e in &events {
            assert_eq!(e.source, Source::Cluster);
            assert!(matches!(e.kind, EventKind::Preemption { .. }));
            assert!(e.t_sim <= t.duration_hours * 3600.0);
        }
    }

    #[test]
    fn json_round_trip() {
        let t = ClusterTrace::generate_spot_1gpu(20, 30, 2.0, 10.0, 5);
        let j = t.to_json();
        let back = ClusterTrace::from_json(&j).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn unordered_scripted_trace_is_a_typed_error() {
        let r = ClusterTrace::scripted(
            vec![
                ClusterEvent {
                    time_hours: 1.0,
                    vm: 0,
                    kind: ClusterEventKind::Preempted,
                },
                ClusterEvent {
                    time_hours: 0.0,
                    vm: 1,
                    kind: ClusterEventKind::Preempted,
                },
            ],
            2.0,
        );
        assert!(matches!(r, Err(ClusterError::InvalidConfig(_))));
    }

    #[test]
    fn non_finite_timestamp_is_a_typed_error() {
        let r = ClusterTrace::scripted(
            vec![ClusterEvent {
                time_hours: f64::NAN,
                vm: 0,
                kind: ClusterEventKind::Preempted,
            }],
            2.0,
        );
        assert!(matches!(r, Err(ClusterError::InvalidConfig(_))));
    }

    #[test]
    fn zero_host_generation_yields_an_empty_trace() {
        let t = ClusterTrace::generate_spot_1gpu(0, 10, 4.0, 5.0, 1);
        assert!(t.events.is_empty());
        assert_eq!(t.duration_hours, 4.0);
        assert_eq!(t.gpus_at(2.0), 0);
    }

    #[test]
    fn fault_events_do_not_change_granted_capacity() {
        let t = ClusterTrace::scripted(
            vec![
                ClusterEvent {
                    time_hours: 0.0,
                    vm: 0,
                    kind: ClusterEventKind::Granted { gpus: 4 },
                },
                ClusterEvent {
                    time_hours: 0.5,
                    vm: 0,
                    kind: ClusterEventKind::EvictionNotice { lead_hours: 0.1 },
                },
                ClusterEvent {
                    time_hours: 1.0,
                    vm: 0,
                    kind: ClusterEventKind::SilenceStart,
                },
                ClusterEvent {
                    time_hours: 1.2,
                    vm: 0,
                    kind: ClusterEventKind::SilenceEnd,
                },
                ClusterEvent {
                    time_hours: 1.5,
                    vm: u64::MAX,
                    kind: ClusterEventKind::StorageOutageStart,
                },
                ClusterEvent {
                    time_hours: 1.8,
                    vm: u64::MAX,
                    kind: ClusterEventKind::StorageOutageEnd,
                },
                ClusterEvent {
                    time_hours: 2.0,
                    vm: u64::MAX,
                    kind: ClusterEventKind::CheckpointCorrupt,
                },
            ],
            3.0,
        )
        .unwrap();
        assert_eq!(t.gpus_at(2.5), 4, "faults must not alter grants");
    }

    #[test]
    fn merge_shifted_is_time_ordered_with_disjoint_vms() {
        let a = ClusterTrace::generate_spot_1gpu(20, 30, 4.0, 10.0, 5);
        let b = ClusterTrace::generate_spot_1gpu(20, 30, 4.0, 10.0, 9);
        let merged = ClusterTrace::merge_shifted(&[(0.0, &a), (2.0, &b)]).unwrap();
        assert_eq!(merged.events.len(), a.events.len() + b.events.len());
        assert_eq!(merged.duration_hours, 6.0);
        for w in merged.events.windows(2) {
            assert!(
                w[0].time_hours <= w[1].time_hours,
                "merged trace must stay monotone: {} after {}",
                w[1].time_hours,
                w[0].time_hours
            );
        }
        // Part B's VM ids land strictly after part A's: the merged events
        // above A's id range are exactly B's (shifted into [2, 6]), while
        // A keeps its own ids — including re-grants inside the overlap.
        let max_a = a.events.iter().map(|e| e.vm).max().unwrap();
        let b_remapped: Vec<&ClusterEvent> =
            merged.events.iter().filter(|e| e.vm > max_a).collect();
        assert_eq!(b_remapped.len(), b.events.len());
        assert!(b_remapped.iter().all(|e| e.time_hours >= 2.0));
        assert!(b_remapped
            .iter()
            .any(|e| matches!(e.kind, ClusterEventKind::Granted { .. })));
        // The merged trace is a valid scripted trace (re-validates order).
        assert!(ClusterTrace::scripted(merged.events.clone(), merged.duration_hours).is_ok());
    }

    #[test]
    fn merge_shifted_interleaves_overlapping_parts_stably() {
        let mk = |t: f64, vm: u64| ClusterEvent {
            time_hours: t,
            vm,
            kind: ClusterEventKind::Granted { gpus: 1 },
        };
        let a = ClusterTrace::scripted(vec![mk(0.0, 0), mk(1.0, 1)], 2.0).unwrap();
        let b = ClusterTrace::scripted(vec![mk(0.5, 0), mk(1.0, 1)], 2.0).unwrap();
        let m = ClusterTrace::merge_shifted(&[(0.0, &a), (0.0, &b)]).unwrap();
        let times: Vec<f64> = m.events.iter().map(|e| e.time_hours).collect();
        assert_eq!(times, vec![0.0, 0.5, 1.0, 1.0]);
        // The tie at t=1.0 keeps part order: part A's vm 1, then part B's
        // remapped vm 3.
        assert_eq!(m.events[2].vm, 1);
        assert_eq!(m.events[3].vm, 3);
        // Determinism: merging twice gives the identical trace.
        assert_eq!(
            m,
            ClusterTrace::merge_shifted(&[(0.0, &a), (0.0, &b)]).unwrap()
        );
    }

    #[test]
    fn merge_shifted_preserves_the_storage_sentinel_vm() {
        let a = ClusterTrace::scripted(
            vec![ClusterEvent {
                time_hours: 0.5,
                vm: u64::MAX,
                kind: ClusterEventKind::StorageOutageStart,
            }],
            1.0,
        )
        .unwrap();
        let b = ClusterTrace::scripted(
            vec![ClusterEvent {
                time_hours: 0.0,
                vm: 0,
                kind: ClusterEventKind::Granted { gpus: 1 },
            }],
            1.0,
        )
        .unwrap();
        let m = ClusterTrace::merge_shifted(&[(0.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(m.events[0].vm, u64::MAX, "sentinel must not be renumbered");
        assert_eq!(m.events[1].vm, 0, "no real VMs before part B");
    }

    #[test]
    fn merge_shifted_rejects_bad_offsets() {
        let a = ClusterTrace::generate_spot_1gpu(4, 4, 1.0, 10.0, 1);
        assert!(matches!(
            ClusterTrace::merge_shifted(&[(-1.0, &a)]),
            Err(ClusterError::InvalidConfig(_))
        ));
        assert!(matches!(
            ClusterTrace::merge_shifted(&[(f64::NAN, &a)]),
            Err(ClusterError::InvalidConfig(_))
        ));
        // Empty merge is a valid empty trace.
        let empty = ClusterTrace::merge_shifted(&[]).unwrap();
        assert!(empty.events.is_empty());
        assert_eq!(empty.duration_hours, 0.0);
    }

    #[test]
    fn fault_events_round_trip_through_json() {
        let t = ClusterTrace::scripted(
            vec![
                ClusterEvent {
                    time_hours: 0.0,
                    vm: 3,
                    kind: ClusterEventKind::EvictionNotice { lead_hours: 0.25 },
                },
                ClusterEvent {
                    time_hours: 0.1,
                    vm: 3,
                    kind: ClusterEventKind::SilenceStart,
                },
                ClusterEvent {
                    time_hours: 0.2,
                    vm: u64::MAX,
                    kind: ClusterEventKind::CheckpointCorrupt,
                },
            ],
            1.0,
        )
        .unwrap();
        let back = ClusterTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }
}
