#![warn(missing_docs)]
//! Spot-VM cluster substrate for the Varuna reproduction.
//!
//! Varuna's defining capability is training on "low-priority" VMs that are
//! 4-5x cheaper than dedicated GPUs but can be preempted at any time
//! (paper Sections 1, 4). The manager only ever observes this world through
//! VM grant/preempt events, heartbeats, and provisioning calls — so a
//! faithful substitute is a generator of exactly those signals:
//!
//! - [`sku`]: the VM types of the paper's testbeds (NC6_v3, NC24_v3, DGX-2)
//!   with GPU counts, memory, NIC speed, and dedicated/spot pricing.
//! - [`spot`]: a slot-occupancy model of spot capacity reproducing the
//!   paper's Figure 3 observation that 1-GPU VMs are more available than
//!   4-GPU VMs.
//! - [`trace`]: replayable grant/preempt event traces.
//! - [`cluster`]: the live cluster state machine and provisioning API.
//! - [`heartbeat`]: heartbeat records, preemption detection, and
//!   fail-stutter outlier detection (Section 4.6).
//! - [`pricing`]: dollar-cost accounting for runs.
//! - [`lease`]: shared-market capacity accounting — per-job VM leases for
//!   the multi-job fleet control plane (`varuna-fleet`).

pub mod cluster;
pub mod error;
pub mod heartbeat;
pub mod lease;
pub mod pricing;
pub mod sku;
pub mod spot;
pub mod trace;

pub use cluster::{Cluster, VmId};
pub use error::ClusterError;
pub use heartbeat::{Heartbeat, HeartbeatMonitor};
pub use lease::{JobId, LeaseBook, LeaseEntry};
pub use sku::VmSku;
pub use spot::SpotMarket;
pub use trace::{ClusterEvent, ClusterEventKind, ClusterTrace};
