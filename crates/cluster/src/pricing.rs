//! Dollar-cost accounting.
//!
//! The paper's headline economics: spot VMs cost 4-5x less per GPU-hour, so
//! a system that trains at comparable throughput on spot capacity cuts the
//! cost of a training run by the same factor (Sections 1 and 7.1.1, e.g.
//! "the cost-performance is thus 5.85x better for Varuna").

use serde::{Deserialize, Serialize};

use crate::sku::VmSku;

/// Cost summary of a (possibly partial) training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunCost {
    /// GPU-hours consumed.
    pub gpu_hours: f64,
    /// Total dollars at the priced rate.
    pub dollars: f64,
    /// Dollars per 1000 examples processed (NaN if none were).
    pub dollars_per_kexample: f64,
}

/// Prices a run of `gpu_hours` GPU-hours that processed `examples` examples
/// on `sku` VMs, at spot or dedicated rates.
pub fn price_run(sku: &VmSku, gpu_hours: f64, examples: f64, spot: bool) -> RunCost {
    assert!(gpu_hours >= 0.0 && examples >= 0.0);
    let rate = if spot {
        sku.spot_price_per_gpu_hour()
    } else {
        sku.dedicated_price_per_gpu_hour()
    };
    let dollars = rate * gpu_hours;
    RunCost {
        gpu_hours,
        dollars,
        dollars_per_kexample: dollars / (examples / 1000.0),
    }
}

/// Cost-performance advantage of configuration A over B: how many times
/// cheaper A is per unit of work.
///
/// `throughput` values are in examples/sec/GPU; `rate` values in dollars
/// per GPU-hour. This reproduces the paper's "5.85x better cost-performance"
/// arithmetic: `(tputA / rateA) / (tputB / rateB)`.
pub fn cost_performance_ratio(tput_a: f64, rate_a: f64, tput_b: f64, rate_b: f64) -> f64 {
    assert!(tput_a > 0.0 && tput_b > 0.0 && rate_a > 0.0 && rate_b > 0.0);
    (tput_a / rate_a) / (tput_b / rate_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_run_is_about_5x_cheaper() {
        let sku = VmSku::nc6_v3();
        let spot = price_run(&sku, 1000.0, 1e6, true);
        let dedicated = price_run(&sku, 1000.0, 1e6, false);
        let ratio = dedicated.dollars / spot.dollars;
        assert!((4.0..=5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_fig5_cost_performance_example() {
        // Section 7.1.1: Varuna on spot (0.56 ex/s/GPU at 1/5 the price)
        // vs Megatron on hypercluster (0.48): 17% faster and 5x cheaper
        // gives ~5.85x cost-performance.
        let r = cost_performance_ratio(0.56, 1.0, 0.48, 5.0);
        assert!((r - 5.83).abs() < 0.1, "cost-performance {r}");
    }

    #[test]
    fn dollars_per_kexample_scales_with_price() {
        let sku = VmSku::nc24_v3();
        let a = price_run(&sku, 100.0, 50_000.0, true);
        let b = price_run(&sku, 100.0, 50_000.0, false);
        assert!(b.dollars_per_kexample > a.dollars_per_kexample);
        assert!((a.dollars - sku.spot_price_per_gpu_hour() * 100.0).abs() < 1e-9);
    }

    #[test]
    fn same_dollars_same_work_is_ratio_one() {
        assert_eq!(cost_performance_ratio(1.0, 2.0, 1.0, 2.0), 1.0);
    }
}
