//! VM types of the paper's testbeds.
//!
//! Paper Section 7: the low-priority setup uses Azure NC6_v3 (1x V100,
//! 16 GB, 10 Gbps Ethernet) and NC24_v3 (4x V100) spot VMs at a 4-5x
//! discount; the hypercluster uses DGX-2 nodes (16x V100 32 GB, NVLink,
//! 200 Gbps InfiniBand).

use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A virtual machine type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmSku {
    /// SKU name, e.g. `"NC6_v3"`.
    pub name: String,
    /// GPUs per VM.
    pub gpus: usize,
    /// Usable GPU memory per GPU in bytes.
    pub gpu_memory: f64,
    /// NIC line rate in Gbps.
    pub nic_gbps: f64,
    /// CPU cores.
    pub cores: usize,
    /// CPU RAM in GiB.
    pub ram_gib: f64,
    /// Price per hour as a dedicated VM, USD.
    pub price_dedicated: f64,
    /// Price per hour as a low-priority / spot VM, USD.
    pub price_spot: f64,
}

impl VmSku {
    /// Azure NC6_v3: 1x V100 16 GB, 6 Xeon cores, 112 GB RAM, 10 Gbps.
    pub fn nc6_v3() -> Self {
        VmSku {
            name: "NC6_v3".to_string(),
            gpus: 1,
            gpu_memory: 16.0 * GIB,
            nic_gbps: 10.0,
            cores: 6,
            ram_gib: 112.0,
            price_dedicated: 3.06,
            price_spot: 0.612,
        }
    }

    /// Azure NC24_v3: 4x V100 16 GB.
    pub fn nc24_v3() -> Self {
        VmSku {
            name: "NC24_v3".to_string(),
            gpus: 4,
            gpu_memory: 16.0 * GIB,
            nic_gbps: 24.0,
            cores: 24,
            ram_gib: 448.0,
            price_dedicated: 12.24,
            price_spot: 2.448,
        }
    }

    /// DGX-2: 16x V100 32 GB on NVLink. The usable per-GPU memory is set to
    /// 25 GiB — the share left after cudnn workspaces, NCCL buffers and
    /// allocator fragmentation on the 32 GiB card (see the memory model in
    /// `varuna-models`).
    pub fn dgx2() -> Self {
        VmSku {
            name: "DGX-2".to_string(),
            gpus: 16,
            gpu_memory: 25.0 * GIB,
            nic_gbps: 200.0,
            cores: 96,
            ram_gib: 1500.0,
            // Hypercluster nodes are never sold as spot capacity; the spot
            // price is listed equal to dedicated to make cost comparisons
            // well-defined.
            price_dedicated: 48.96,
            price_spot: 48.96,
        }
    }

    /// Ratio of dedicated to spot price.
    pub fn spot_discount(&self) -> f64 {
        self.price_dedicated / self.price_spot
    }

    /// Spot price per GPU-hour.
    pub fn spot_price_per_gpu_hour(&self) -> f64 {
        self.price_spot / self.gpus as f64
    }

    /// Dedicated price per GPU-hour.
    pub fn dedicated_price_per_gpu_hour(&self) -> f64 {
        self.price_dedicated / self.gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spot_discount_is_4_to_5x() {
        // Paper Section 1: spot VMs are "4-5x cheaper".
        for sku in [VmSku::nc6_v3(), VmSku::nc24_v3()] {
            let d = sku.spot_discount();
            assert!((4.0..=5.5).contains(&d), "{} discount {d}", sku.name);
        }
    }

    #[test]
    fn nc6_matches_paper_description() {
        // Section 7: "Each 1-GPU VM has Nvidia Volta-100 GPU with 16GB
        // memory, 6 Xeon cores, 112GB of CPU RAM and 10 Gbps ethernet."
        let s = VmSku::nc6_v3();
        assert_eq!(s.gpus, 1);
        assert_eq!(s.cores, 6);
        assert_eq!(s.ram_gib, 112.0);
        assert_eq!(s.nic_gbps, 10.0);
        assert_eq!(s.gpu_memory, 16.0 * GIB);
    }

    #[test]
    fn dgx2_has_16_gpus_with_larger_memory() {
        let s = VmSku::dgx2();
        assert_eq!(s.gpus, 16);
        assert!(s.gpu_memory > VmSku::nc6_v3().gpu_memory);
    }

    #[test]
    fn per_gpu_hour_prices_divide_by_gpu_count() {
        let s = VmSku::nc24_v3();
        assert!((s.spot_price_per_gpu_hour() - s.price_spot / 4.0).abs() < 1e-12);
        // 1-GPU and 4-GPU spot prices per GPU are comparable.
        let r = s.spot_price_per_gpu_hour() / VmSku::nc6_v3().spot_price_per_gpu_hour();
        assert!((0.9..=1.1).contains(&r));
    }
}
