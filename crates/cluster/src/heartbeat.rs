//! Heartbeats, preemption detection, and fail-stutter outlier detection.
//!
//! Paper Section 4.6: "Each task sends a heartbeat to the manager that
//! contains the GPU compute time per micro-batch for the forward and
//! backward pass. If the manager detects any outliers, it omits that VM
//! when scheduling task replicas", and the manager "detects preemptions
//! when it has not received a heartbeat from a VM".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use varuna_obs::{Event, EventBus, EventKind};

use crate::cluster::VmId;
use crate::error::ClusterError;

/// One heartbeat from a training task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Heartbeat {
    /// Sender VM.
    pub vm: VmId,
    /// Send time, seconds since job start.
    pub time: f64,
    /// Measured forward compute time per micro-batch, seconds.
    pub fwd_time: f64,
    /// Measured backward compute time per micro-batch, seconds.
    pub bwd_time: f64,
}

/// Tracks heartbeats and classifies VM health.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    /// Most recent heartbeat per VM.
    last: BTreeMap<VmId, Heartbeat>,
    /// A VM is presumed preempted after this many seconds of silence.
    timeout: f64,
    /// A VM is a fail-stutter outlier when its compute time exceeds the
    /// median by this factor.
    outlier_factor: f64,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given silence timeout (seconds) and
    /// outlier factor (e.g. 1.2 = 20% above median flags an outlier).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidConfig`] unless `timeout > 0` and
    /// `outlier_factor > 1` (both finite): a non-positive timeout marks
    /// every VM preempted instantly, and an outlier factor at or below the
    /// median flags healthy VMs.
    pub fn new(timeout: f64, outlier_factor: f64) -> Result<Self, ClusterError> {
        if !(timeout > 0.0 && timeout.is_finite()) {
            return Err(ClusterError::InvalidConfig(format!(
                "heartbeat timeout must be positive and finite, got {timeout}"
            )));
        }
        if !(outlier_factor > 1.0 && outlier_factor.is_finite()) {
            return Err(ClusterError::InvalidConfig(format!(
                "outlier factor must exceed 1.0 and be finite, got {outlier_factor}"
            )));
        }
        Ok(HeartbeatMonitor {
            last: BTreeMap::new(),
            timeout,
            outlier_factor,
        })
    }

    /// Default tuning: 60 s silence timeout, 20% outlier threshold.
    pub fn default_tuning() -> Self {
        HeartbeatMonitor {
            last: BTreeMap::new(),
            timeout: 60.0,
            outlier_factor: 1.2,
        }
    }

    /// Records a heartbeat.
    pub fn record(&mut self, hb: Heartbeat) {
        self.last.insert(hb.vm, hb);
    }

    /// Forgets a VM (after the manager has handled its loss).
    pub fn forget(&mut self, vm: VmId) {
        self.last.remove(&vm);
    }

    /// VMs that have been silent longer than the timeout at time `now`.
    pub fn silent_vms(&self, now: f64) -> Vec<VmId> {
        self.last
            .iter()
            .filter(|(_, hb)| now - hb.time > self.timeout)
            .map(|(vm, _)| *vm)
            .collect()
    }

    /// VMs whose per-micro-batch compute time is an outlier versus the
    /// median of all reporting VMs — the fail-stutter set.
    ///
    /// Returns an empty vector until at least three VMs have reported
    /// (a median over fewer is meaningless).
    pub fn stutter_outliers(&self) -> Vec<VmId> {
        if self.last.len() < 3 {
            return Vec::new();
        }
        let mut totals: Vec<f64> = self
            .last
            .values()
            .map(|hb| hb.fwd_time + hb.bwd_time)
            .collect();
        totals.sort_by(|a, b| a.partial_cmp(b).expect("compute times are finite"));
        let median = totals[totals.len() / 2];
        self.last
            .iter()
            .filter(|(_, hb)| hb.fwd_time + hb.bwd_time > self.outlier_factor * median)
            .map(|(vm, _)| *vm)
            .collect()
    }

    /// Number of VMs currently reporting.
    pub fn reporting(&self) -> usize {
        self.last.len()
    }

    /// Like [`HeartbeatMonitor::silent_vms`], but also reports each silent
    /// VM as a [`EventKind::HeartbeatMiss`] on `bus` (source `Cluster`,
    /// `t_sim` = `now`).
    pub fn silent_vms_observed(&self, now: f64, bus: &mut EventBus) -> Vec<VmId> {
        let silent = self.silent_vms(now);
        for &vm in &silent {
            bus.emit_with(|| Event::cluster(now, EventKind::HeartbeatMiss { vm }));
        }
        silent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(vm: VmId, time: f64, total: f64) -> Heartbeat {
        Heartbeat {
            vm,
            time,
            fwd_time: total / 3.0,
            bwd_time: 2.0 * total / 3.0,
        }
    }

    #[test]
    fn silence_past_timeout_marks_preemption() {
        let mut m = HeartbeatMonitor::new(60.0, 1.2).unwrap();
        m.record(hb(0, 0.0, 1.0));
        m.record(hb(1, 50.0, 1.0));
        assert_eq!(m.silent_vms(100.0), vec![0]);
        assert!(m.silent_vms(40.0).is_empty());
    }

    #[test]
    fn silent_vms_observed_reports_heartbeat_misses() {
        use varuna_obs::{EventBus, EventKind, Source, VecSink};
        let mut m = HeartbeatMonitor::new(60.0, 1.2).unwrap();
        m.record(hb(3, 0.0, 1.0));
        m.record(hb(7, 50.0, 1.0));
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        assert_eq!(m.silent_vms_observed(100.0, &mut bus), vec![3]);
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].source, Source::Cluster);
        assert_eq!(events[0].t_sim, 100.0);
        assert!(matches!(events[0].kind, EventKind::HeartbeatMiss { vm: 3 }));
    }

    #[test]
    fn invalid_monitor_tunings_are_typed_errors() {
        assert!(HeartbeatMonitor::new(0.0, 1.2).is_err());
        assert!(HeartbeatMonitor::new(-5.0, 1.2).is_err());
        assert!(HeartbeatMonitor::new(f64::NAN, 1.2).is_err());
        assert!(HeartbeatMonitor::new(60.0, 1.0).is_err());
        assert!(HeartbeatMonitor::new(60.0, f64::INFINITY).is_err());
    }

    #[test]
    fn thirty_percent_slower_vm_is_an_outlier() {
        // The paper's reported fail-stutter magnitude.
        let mut m = HeartbeatMonitor::default_tuning();
        for vm in 0..6 {
            m.record(hb(vm, 0.0, 1.0));
        }
        m.record(hb(6, 0.0, 1.3));
        assert_eq!(m.stutter_outliers(), vec![6]);
    }

    #[test]
    fn no_outliers_among_uniform_vms() {
        let mut m = HeartbeatMonitor::default_tuning();
        for vm in 0..8 {
            m.record(hb(vm, 0.0, 1.0 + 0.01 * vm as f64));
        }
        assert!(m.stutter_outliers().is_empty());
    }

    #[test]
    fn outlier_detection_needs_quorum() {
        let mut m = HeartbeatMonitor::default_tuning();
        m.record(hb(0, 0.0, 1.0));
        m.record(hb(1, 0.0, 9.0));
        assert!(m.stutter_outliers().is_empty(), "two VMs give no median");
    }

    #[test]
    fn forget_removes_vm_from_tracking() {
        let mut m = HeartbeatMonitor::default_tuning();
        m.record(hb(0, 0.0, 1.0));
        m.forget(0);
        assert_eq!(m.reporting(), 0);
        assert!(m.silent_vms(1000.0).is_empty());
    }

    #[test]
    fn newer_heartbeat_replaces_older() {
        let mut m = HeartbeatMonitor::new(60.0, 1.2).unwrap();
        m.record(hb(0, 0.0, 1.0));
        m.record(hb(0, 90.0, 1.0));
        assert!(m.silent_vms(120.0).is_empty());
    }
}
