//! Live cluster state: the set of VMs a job currently holds.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::sku::VmSku;
use crate::trace::{ClusterEvent, ClusterEventKind};

/// Identifier of a VM within a cluster (stable across its lifetime).
pub type VmId = u64;

/// One VM the job holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmState {
    /// GPUs on the VM.
    pub gpus: usize,
    /// Fail-stutter slowdown factor: 1.0 = healthy, 1.3 = 30% slower
    /// (Section 4.6 reports slowdowns "often by as much as 30%").
    pub stutter: f64,
    /// Time the VM was granted, hours.
    pub granted_at: f64,
}

/// The set of VMs currently held, with SKU and health information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    sku: VmSku,
    vms: BTreeMap<VmId, VmState>,
    now_hours: f64,
}

impl Cluster {
    /// An empty cluster of homogeneous `sku` VMs.
    pub fn new(sku: VmSku) -> Self {
        Cluster {
            sku,
            vms: BTreeMap::new(),
            now_hours: 0.0,
        }
    }

    /// A cluster pre-populated with `n` healthy VMs (for static
    /// experiments that do not replay a trace).
    pub fn with_vms(sku: VmSku, n: usize) -> Self {
        let mut c = Cluster::new(sku);
        for vm in 0..n as u64 {
            c.grant(vm, c.sku.gpus);
        }
        c
    }

    /// The homogeneous SKU of this cluster.
    pub fn sku(&self) -> &VmSku {
        &self.sku
    }

    /// Current time in hours.
    pub fn now_hours(&self) -> f64 {
        self.now_hours
    }

    /// Grants a VM. Idempotent for repeated grants of the same id.
    pub fn grant(&mut self, vm: VmId, gpus: usize) {
        self.vms.entry(vm).or_insert(VmState {
            gpus,
            stutter: 1.0,
            granted_at: self.now_hours,
        });
    }

    /// Removes a VM (preemption or manual release). Returns whether the VM
    /// was held.
    pub fn preempt(&mut self, vm: VmId) -> bool {
        self.vms.remove(&vm).is_some()
    }

    /// Applies one trace event, advancing the clock to the event's time.
    pub fn apply(&mut self, e: &ClusterEvent) {
        self.now_hours = self.now_hours.max(e.time_hours);
        match e.kind {
            ClusterEventKind::Granted { gpus } => self.grant(e.vm, gpus),
            ClusterEventKind::Preempted => {
                self.preempt(e.vm);
            }
            ClusterEventKind::StutterStart { factor } => {
                if self.vms.contains_key(&e.vm) {
                    self.set_stutter(e.vm, factor);
                }
            }
            ClusterEventKind::StutterEnd => {
                if self.vms.contains_key(&e.vm) {
                    self.set_stutter(e.vm, 1.0);
                }
            }
            // Health and storage faults are interpreted by the manager's
            // recovery machine; the granted-capacity view is unchanged.
            ClusterEventKind::EvictionNotice { .. }
            | ClusterEventKind::SilenceStart
            | ClusterEventKind::SilenceEnd
            | ClusterEventKind::StorageOutageStart
            | ClusterEventKind::StorageOutageEnd
            | ClusterEventKind::CheckpointCorrupt
            | ClusterEventKind::CheckpointTorn { .. }
            | ClusterEventKind::DeltaTorn { .. } => {}
        }
    }

    /// Marks a VM as fail-stutter slow by `factor` (e.g. 1.3 = 30% slower).
    ///
    /// # Panics
    ///
    /// Panics if the VM is not held or `factor < 1.0`.
    pub fn set_stutter(&mut self, vm: VmId, factor: f64) {
        assert!(factor >= 1.0, "stutter factor must be >= 1.0");
        self.vms
            .get_mut(&vm)
            .unwrap_or_else(|| panic!("VM {vm} not held"))
            .stutter = factor;
    }

    /// Stutter factor of a VM (1.0 if unknown).
    pub fn stutter_of(&self, vm: VmId) -> f64 {
        self.vms.get(&vm).map_or(1.0, |v| v.stutter)
    }

    /// Number of VMs held.
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// Total GPUs held.
    pub fn num_gpus(&self) -> usize {
        self.vms.values().map(|v| v.gpus).sum()
    }

    /// IDs of held VMs, sorted.
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.keys().copied().collect()
    }

    /// IDs of VMs whose stutter factor exceeds `threshold`, sorted.
    pub fn stuttering_vms(&self, threshold: f64) -> Vec<VmId> {
        self.vms
            .iter()
            .filter(|(_, v)| v.stutter > threshold)
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ClusterTrace;

    #[test]
    fn with_vms_populates_gpu_counts() {
        let c = Cluster::with_vms(VmSku::nc24_v3(), 8);
        assert_eq!(c.num_vms(), 8);
        assert_eq!(c.num_gpus(), 32);
    }

    #[test]
    fn apply_replays_a_trace_consistently() {
        let t = ClusterTrace::generate_spot_1gpu(40, 50, 10.0, 5.0, 17);
        let mut c = Cluster::new(VmSku::nc6_v3());
        for e in &t.events {
            c.apply(e);
        }
        assert_eq!(c.num_gpus(), t.gpus_at(t.duration_hours));
        assert_eq!(c.now_hours(), t.events.last().unwrap().time_hours);
    }

    #[test]
    fn preempting_unknown_vm_is_harmless() {
        let mut c = Cluster::with_vms(VmSku::nc6_v3(), 2);
        assert!(!c.preempt(99));
        assert_eq!(c.num_vms(), 2);
    }

    #[test]
    fn stutter_tracking_flags_outliers() {
        let mut c = Cluster::with_vms(VmSku::nc6_v3(), 5);
        c.set_stutter(2, 1.3);
        assert_eq!(c.stuttering_vms(1.1), vec![2]);
        assert_eq!(c.stutter_of(2), 1.3);
        assert_eq!(c.stutter_of(0), 1.0);
    }

    #[test]
    fn grant_is_idempotent() {
        let mut c = Cluster::new(VmSku::nc6_v3());
        c.grant(7, 1);
        c.set_stutter(7, 1.2);
        c.grant(7, 1);
        assert_eq!(c.stutter_of(7), 1.2, "re-grant must not reset state");
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn stutter_of_unknown_vm_panics() {
        let mut c = Cluster::new(VmSku::nc6_v3());
        c.set_stutter(0, 1.5);
    }
}
