//! Downtime accounting over the CI chaos corpus: for every golden seed,
//! the profiler's priced components must exactly explain the simulated
//! wall-clock — nothing double-counted, nothing dropped. The sweep runs
//! the corpus twice, once under the default full-restart policy and once
//! under the zero-downtime policy (delta checkpoints, overlapped writes,
//! live migration), where overlapped seconds are informational and must
//! never leak into the priced sum.

use varuna::{Calibration, Manager, VarunaCluster};
use varuna_chaos::inject::ChaosInjector;
use varuna_chaos::ChaosConfig;
use varuna_cluster::trace::ClusterTrace;
use varuna_models::ModelZoo;
use varuna_obs::{profile, Event, EventBus, EventKind, Source, VecSink};

/// Replays one chaos seed on the Figure-8 workload and returns the
/// manager's (non-chaos-sourced) event stream.
fn replay_seed(seed: u64, zero_downtime: bool) -> Vec<Event> {
    let calib = Calibration::profile(&ModelZoo::gpt2_2_5b(), &VarunaCluster::commodity_1gpu(160));
    let base = ClusterTrace::generate_spot_1gpu(40, 60, 3.0, 10.0, 7);
    let cfg = if zero_downtime {
        ChaosConfig {
            zero_downtime: true,
            ..ChaosConfig::from_seed(seed)
        }
    } else {
        ChaosConfig::from_seed(seed)
    };
    let injector = ChaosInjector::new(cfg).expect("valid config");
    let sink = VecSink::new();
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    let (trace, _faults) = injector.perturb_observed(&base, &mut bus);
    let mut mgr = Manager::new(&calib, 8192, 4).with_fallback();
    if zero_downtime {
        mgr = mgr.with_zero_downtime();
    }
    mgr.replay_on_bus(&trace, &mut bus).expect("replay");
    sink.take()
        .into_iter()
        .filter(|e| e.source != Source::Chaos)
        .collect()
}

const SEEDS: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// The shared per-seed check: every priced component re-derived
/// independently from the raw stream must match the profiler term by
/// term, and the components plus useful time must sum to the makespan.
fn assert_components_sum(seed: u64, zero_downtime: bool) {
    let events = replay_seed(seed, zero_downtime);
    assert!(!events.is_empty(), "seed {seed}: replay emitted nothing");
    let report = profile(&events);
    let dt = &report.downtime;

    let mut degraded = 0.0;
    let mut open_since = None;
    let mut restarts = 0.0;
    let mut migrations = 0.0;
    let mut writes = 0.0;
    let mut overlapped = 0.0;
    let mut lost = 0.0;
    for e in &events {
        match &e.kind {
            EventKind::DegradedEnter { .. } => open_since = Some(e.t_sim),
            EventKind::DegradedExit { paused_seconds, .. } => {
                open_since = None;
                degraded += paused_seconds;
            }
            EventKind::Morph {
                restart_seconds,
                migration_seconds,
                ..
            } => {
                restarts += restart_seconds;
                migrations += migration_seconds;
            }
            EventKind::Checkpoint {
                write_seconds,
                overlapped_seconds,
                ..
            } => {
                writes += write_seconds;
                overlapped += overlapped_seconds;
            }
            EventKind::LostWork { seconds, .. } => lost += seconds,
            _ => {}
        }
    }
    if let Some(since) = open_since {
        degraded += report.makespan - since;
    }
    let tol = 1e-9 * report.makespan.max(1.0);
    assert!(
        (dt.degraded_seconds - degraded).abs() < tol,
        "seed {seed}: degraded {} != {}",
        dt.degraded_seconds,
        degraded
    );
    assert!(
        (dt.morph_restart_seconds - restarts).abs() < tol,
        "seed {seed}"
    );
    assert!(
        (dt.migration_seconds - migrations).abs() < tol,
        "seed {seed}"
    );
    assert!(
        (dt.checkpoint_write_seconds - writes).abs() < tol,
        "seed {seed}"
    );
    assert!(
        (dt.checkpoint_overlapped_seconds - overlapped).abs() < tol,
        "seed {seed}"
    );
    assert!((dt.lost_work_seconds - lost).abs() < tol, "seed {seed}");

    // The full identity: useful time plus every priced component equals
    // the simulated wall-clock window. Overlapped checkpoint seconds are
    // deliberately absent — they hide behind compute and must never be
    // double-counted into the priced sum.
    let total = dt.useful_seconds
        + dt.degraded_seconds
        + dt.morph_restart_seconds
        + dt.migration_seconds
        + dt.checkpoint_write_seconds
        + dt.lost_work_seconds;
    assert!(
        (total - report.makespan).abs() < tol,
        "seed {seed}: components sum to {total}, makespan {}",
        report.makespan
    );
    for v in [
        dt.degraded_seconds,
        dt.morph_restart_seconds,
        dt.migration_seconds,
        dt.checkpoint_write_seconds,
        dt.checkpoint_overlapped_seconds,
        dt.lost_work_seconds,
    ] {
        assert!(v.is_finite() && v >= 0.0, "seed {seed}: component {v}");
    }

    // Manager streams carry no ops, so the compute/comms/bubble axes
    // must be exactly zero — downtime pricing is the whole story.
    assert!(report.lanes.is_empty(), "seed {seed}: phantom GPU lanes");
    assert_eq!(report.transfer_seconds, 0.0, "seed {seed}");

    // Same seed, same profile: the report is a pure function of the
    // deterministic replay.
    assert_eq!(
        report,
        profile(&replay_seed(seed, zero_downtime)),
        "seed {seed}: profile not deterministic"
    );
}

#[test]
fn profiled_components_sum_to_simulated_wall_clock_for_the_ci_corpus() {
    for seed in SEEDS {
        assert_components_sum(seed, false);
    }
}

#[test]
fn zero_downtime_components_sum_and_overlap_is_never_priced() {
    let mut any_migration = false;
    let mut any_overlap = false;
    for seed in SEEDS {
        assert_components_sum(seed, true);
        let report = profile(&replay_seed(seed, true));
        if report.downtime.migration_seconds > 0.0 {
            any_migration = true;
        }
        if report.downtime.checkpoint_overlapped_seconds > 0.0 {
            any_overlap = true;
        }
    }
    assert!(
        any_migration,
        "no seed in the corpus performed a live migration"
    );
    assert!(
        any_overlap,
        "no seed in the corpus overlapped a checkpoint write"
    );
}

#[test]
fn counted_events_match_the_stream() {
    let events = replay_seed(3, true);
    let report = profile(&events);
    let count = |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(
        report.downtime.morphs,
        count(|k| matches!(k, EventKind::Morph { .. }))
    );
    assert_eq!(
        report.downtime.checkpoints,
        count(|k| matches!(k, EventKind::Checkpoint { .. }))
    );
    assert_eq!(
        report.downtime.preemptions,
        count(|k| matches!(k, EventKind::Preemption { .. }))
    );
    assert_eq!(
        report.downtime.degraded_episodes,
        count(|k| matches!(k, EventKind::DegradedEnter { .. }))
    );
    assert_eq!(
        report.downtime.migrations,
        events
            .iter()
            .filter(
                |e| matches!(e.kind, EventKind::Morph { migration_seconds, .. }
                if migration_seconds > 0.0)
            )
            .count()
    );
    assert_eq!(
        report.downtime.delta_checkpoints,
        count(|k| matches!(k, EventKind::Checkpoint { full: false, .. }))
    );
}
