//! Property pin for the always-on flight recorder: after any stream, the
//! ring buffer holds *exactly* the newest [`FLIGHT_RECORDER_EVENTS`]
//! events, oldest first — wraparound never reorders, drops a newer event,
//! or resurrects an evicted one.

use proptest::collection::vec;
use proptest::prelude::*;
use varuna_chaos::FLIGHT_RECORDER_EVENTS;
use varuna_obs::{Event, EventBus, EventKind, RingBufferSink};

/// Builds a distinguishable event for slot `i`: the payload encodes the
/// index so the snapshot can be matched positionally.
fn tagged(i: usize, t: f64) -> Event {
    Event::manager(
        t,
        EventKind::LostWork {
            minibatches: i as u64,
            seconds: t,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_buffer_keeps_exactly_the_newest_events_in_order(
        // Below, at, and well past the wraparound boundary, including
        // multiple full laps of the ring.
        n in 0usize..(3 * FLIGHT_RECORDER_EVENTS + 7),
        times in vec(0.0f64..1e6, (3 * FLIGHT_RECORDER_EVENTS + 7)..(3 * FLIGHT_RECORDER_EVENTS + 8)),
    ) {
        let recorder = RingBufferSink::new(FLIGHT_RECORDER_EVENTS);
        let mut bus = EventBus::with_sink(Box::new(recorder.clone()));
        let events: Vec<Event> = (0..n).map(|i| tagged(i, times[i])).collect();
        for e in &events {
            bus.emit(e.clone());
        }
        bus.flush();

        let snap = recorder.snapshot();
        let expect_len = n.min(FLIGHT_RECORDER_EVENTS);
        prop_assert_eq!(snap.len(), expect_len);
        prop_assert_eq!(recorder.len(), expect_len);
        // Snapshot is the stream's suffix, oldest first, byte for byte.
        let tail = &events[n - expect_len..];
        for (got, want) in snap.iter().zip(tail.iter()) {
            prop_assert_eq!(
                format!("{got:?}"),
                format!("{want:?}"),
                "wraparound must preserve the newest events in arrival order"
            );
        }
    }

    /// A second snapshot is identical (snapshot is non-draining), and
    /// pushing one more event after a full lap evicts exactly the oldest.
    #[test]
    fn snapshot_is_stable_and_eviction_is_fifo(
        extra in 1usize..40,
    ) {
        let recorder = RingBufferSink::new(FLIGHT_RECORDER_EVENTS);
        let mut bus = EventBus::with_sink(Box::new(recorder.clone()));
        let total = FLIGHT_RECORDER_EVENTS + extra;
        for i in 0..total {
            bus.emit(tagged(i, i as f64));
        }
        let a = recorder.snapshot();
        let b = recorder.snapshot();
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // The oldest surviving event is `extra` (0..extra were evicted).
        match &a[0].kind {
            EventKind::LostWork { minibatches, .. } => {
                prop_assert_eq!(*minibatches as usize, extra)
            }
            other => prop_assert!(false, "unexpected event kind {:?}", other),
        }
    }
}
