//! Kill-anywhere recovery suite: a run killed at *any* write-ahead-log
//! boundary — including mid-frame, leaving a torn tail — and recovered
//! must reproduce the uninterrupted run's control-event stream and final
//! WAL bytes exactly.

use std::sync::OnceLock;

use proptest::prelude::*;
use varuna::{Calibration, VarunaCluster};
use varuna_chaos::{
    run_chaos, run_chaos_recovery, run_migration_kill_recovery, ChaosConfig, FaultKind,
    RecoveryHarness,
};
use varuna_cluster::trace::ClusterTrace;
use varuna_models::ModelZoo;

/// Calibration is by far the most expensive step; share one across the
/// whole suite (it is immutable after profiling).
fn calib() -> &'static Calibration {
    static CALIB: OnceLock<Calibration> = OnceLock::new();
    CALIB.get_or_init(|| {
        Calibration::profile(&ModelZoo::gpt2_2_5b(), &VarunaCluster::commodity_1gpu(160))
    })
}

/// A short base trace: the exhaustive sweeps below replay the whole run
/// once per kill boundary, so the workload is sized to keep the O(N²)
/// loop fast while still writing a multi-record log.
fn small_base() -> &'static ClusterTrace {
    static BASE: OnceLock<ClusterTrace> = OnceLock::new();
    BASE.get_or_init(|| ClusterTrace::generate_spot_1gpu(12, 6, 2.0, 10.0, 11))
}

#[test]
fn kill_at_every_record_boundary_recovers_exactly() {
    let cfg = ChaosConfig::recovery(3);
    let h = RecoveryHarness::new(calib(), small_base(), &cfg).expect("oracle run");
    let n = h.wal_records();
    assert!(n > 0, "the oracle run must log decisions");
    for boundary in 0..=n {
        let run = h.recover_at(boundary, false).expect("recovery run");
        assert!(
            run.is_clean(),
            "clean kill at boundary {boundary}/{n}:\n{}",
            run.failure_artifacts()
        );
        assert_eq!(run.replayed_records, boundary);
        assert!(!run.torn_detected);
    }
}

#[test]
fn torn_final_frame_at_every_boundary_is_truncated_and_recovered() {
    let cfg = ChaosConfig::recovery(5);
    let h = RecoveryHarness::new(calib(), small_base(), &cfg).expect("oracle run");
    let n = h.wal_records();
    assert!(n > 0);
    for boundary in 0..n {
        let run = h.recover_at(boundary, true).expect("recovery run");
        assert!(
            run.is_clean(),
            "torn kill at boundary {boundary}/{n}:\n{}",
            run.failure_artifacts()
        );
        assert!(run.torn_detected, "boundary {boundary}: torn tail missed");
        assert!(
            run.dropped_bytes > 0,
            "boundary {boundary}: nothing dropped"
        );
        assert_eq!(run.replayed_records, boundary);
    }
}

#[test]
fn recovery_smoke_over_eight_seeds() {
    // The CI smoke contract: eight seeded runs, each killed where the
    // injector's crash plan says, each recovering byte-identically.
    for seed in 0..8 {
        let run = run_chaos_recovery(calib(), small_base(), &ChaosConfig::recovery(seed))
            .expect("recovery run");
        assert!(run.is_clean(), "seed {seed}:\n{}", run.failure_artifacts());
        assert!(run.replayed_records <= run.wal_records);
        assert!(run.wal_bytes_identical);
    }
}

#[test]
fn torn_checkpoint_writes_fall_back_and_stay_clean() {
    // Satellite: the torn-write fault process (partial checkpoint files)
    // must surface as typed faults and leave every stream invariant
    // intact — the manager falls back to the last durable step.
    let cfg = ChaosConfig {
        torn_rate_per_hour: 2.0,
        ..ChaosConfig::default_tuning(77)
    };
    let run = run_chaos(calib(), small_base(), &cfg).expect("torn run");
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert!(
        run.faults
            .iter()
            .any(|f| matches!(f.fault, FaultKind::CheckpointTorn { .. })),
        "2/hour over the trace must tear at least one write: {:?}",
        run.faults
    );
}

#[test]
fn zero_downtime_kill_at_every_boundary_recovers_exactly() {
    // The tentpole's kill-anywhere sweep: under the zero-downtime policy
    // the log additionally carries delta flushes, overlapped checkpoint
    // writes, and live-migration morphs — killing at any boundary must
    // still recover byte-identically.
    let cfg = ChaosConfig::zero_downtime(3);
    let h = RecoveryHarness::new(calib(), small_base(), &cfg).expect("oracle run");
    let n = h.wal_records();
    assert!(n > 0, "the oracle run must log decisions");
    for boundary in 0..=n {
        let run = h.recover_at(boundary, false).expect("recovery run");
        assert!(
            run.is_clean(),
            "clean kill at boundary {boundary}/{n}:\n{}",
            run.failure_artifacts()
        );
        assert_eq!(run.replayed_records, boundary);
    }
}

#[test]
fn killed_during_migration_at_every_migration_recovers_exactly() {
    // Tearing a live-migration morph frame mid-write is the
    // KilledDuringMigration fault; recovery must detect the torn tail,
    // re-decide the identical migration, and converge to the same WAL.
    let cfg = ChaosConfig::zero_downtime(5);
    let h = RecoveryHarness::new(calib(), small_base(), &cfg).expect("oracle run");
    let migrations = h.migration_boundaries();
    assert!(
        !migrations.is_empty(),
        "the zero-downtime oracle must perform at least one live migration"
    );
    for boundary in migrations {
        let run = h.recover_at(boundary, true).expect("recovery run");
        assert!(
            run.is_clean(),
            "kill during migration at boundary {boundary}:\n{}",
            run.failure_artifacts()
        );
        assert!(run.torn_detected, "boundary {boundary}: torn frame missed");
    }
}

#[test]
fn migration_kill_plans_recover_exactly() {
    // The injector-driven form: a seed whose migration-kill roll fires
    // (8 and 18 do, at prob 0.25 on the dedicated stream) tears the
    // selected migration frame and must recover byte-identically; a seed
    // whose roll stays clean (3) must plan nothing.
    for seed in [8, 18] {
        let cfg = ChaosConfig::zero_downtime(seed);
        let (fault, run) = run_migration_kill_recovery(calib(), small_base(), &cfg)
            .expect("migration kill run")
            .unwrap_or_else(|| panic!("seed {seed} must plan a migration kill"));
        assert!(matches!(fault.fault, FaultKind::KilledDuringMigration));
        assert!(fault.time_hours >= 0.0);
        assert!(run.is_clean(), "seed {seed}:\n{}", run.failure_artifacts());
        assert!(run.torn_detected, "seed {seed}: torn frame missed");
    }
    let clean = run_migration_kill_recovery(calib(), small_base(), &ChaosConfig::zero_downtime(3))
        .expect("clean-roll run");
    assert!(clean.is_none(), "seed 3's roll must stay clean");
}

#[test]
fn torn_delta_frames_fall_back_to_the_anchoring_full_and_stay_clean() {
    // A torn *delta* frame breaks the chain back to the last full
    // checkpoint: the run must surface the typed fault, keep every stream
    // invariant, and never silently restore the torn frame.
    let cfg = ChaosConfig {
        delta_torn_rate_per_hour: 2.0,
        ..ChaosConfig::zero_downtime(77)
    };
    let run = run_chaos(calib(), small_base(), &cfg).expect("torn delta run");
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert!(
        run.faults
            .iter()
            .any(|f| matches!(f.fault, FaultKind::TornDelta { .. })),
        "2/hour over the trace must tear at least one delta: {:?}",
        run.faults
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random kill points over random seeds: recovery is exact wherever
    /// the manager dies, torn or clean.
    #[test]
    fn any_kill_point_recovers_exactly(
        seed in 0u64..64,
        frac in 0.0f64..1.0,
        torn in any::<bool>(),
        zero_downtime in any::<bool>(),
    ) {
        let cfg = if zero_downtime {
            ChaosConfig::zero_downtime(seed)
        } else {
            ChaosConfig::recovery(seed)
        };
        let h = RecoveryHarness::new(calib(), small_base(), &cfg)
            .expect("oracle run");
        let n = h.wal_records();
        let boundary = ((frac * (n + 1) as f64) as usize).min(n);
        let run = h.recover_at(boundary, torn).expect("recovery run");
        prop_assert!(
            run.is_clean(),
            "seed {} boundary {}/{} torn {}:\n{}",
            seed, boundary, n, torn, run.failure_artifacts()
        );
    }
}
