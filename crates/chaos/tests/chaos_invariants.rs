//! Property-based chaos suite: whatever the seeded fault schedule, the
//! manager's recovery machine must uphold every stream invariant.

use std::sync::OnceLock;

use proptest::prelude::*;
use varuna::{Calibration, Manager, VarunaCluster};
use varuna_chaos::{digest_events, run_chaos, ChaosConfig, ChaosInjector};
use varuna_cluster::trace::ClusterTrace;
use varuna_models::ModelZoo;
use varuna_obs::{EventBus, VecSink};

/// Calibration is by far the most expensive step; share one across the
/// whole suite (it is immutable after profiling).
fn calib() -> &'static Calibration {
    static CALIB: OnceLock<Calibration> = OnceLock::new();
    CALIB.get_or_init(|| {
        Calibration::profile(&ModelZoo::gpt2_2_5b(), &VarunaCluster::commodity_1gpu(160))
    })
}

/// One benign base trace (the Figure 8 workload) shared by all runs; the
/// injector supplies the adversity.
fn base() -> &'static ClusterTrace {
    static BASE: OnceLock<ClusterTrace> = OnceLock::new();
    BASE.get_or_init(|| ClusterTrace::generate_spot_1gpu(40, 60, 3.0, 10.0, 7))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// No seeded fault schedule may panic the replay or violate any
    /// recovery invariant (monotone time, monotone progress, no double
    /// exclusion, priced lost work, honest capacity).
    #[test]
    fn any_fault_schedule_replays_cleanly(seed in 0u64..10_000) {
        let run = run_chaos(calib(), base(), &ChaosConfig::from_seed(seed))
            .expect("valid config and trace");
        prop_assert!(
            run.violations.is_empty(),
            "seed {} violated invariants: {:?}",
            seed,
            run.violations
        );
    }

    /// Same seed, same everything: fault schedule, event stream, digest.
    #[test]
    fn same_seed_is_byte_identical(seed in 0u64..10_000) {
        let cfg = ChaosConfig::from_seed(seed);
        let a = run_chaos(calib(), base(), &cfg).expect("first run");
        let b = run_chaos(calib(), base(), &cfg).expect("second run");
        prop_assert_eq!(a.digest, b.digest, "seed {} diverged", seed);
        prop_assert_eq!(a.faults, b.faults);
        prop_assert_eq!(a.event_count, b.event_count);
    }

    /// The perturbed trace itself stays well-formed: time-ordered, inside
    /// the base duration, and strictly richer than the base under a harsh
    /// configuration.
    #[test]
    fn perturbed_traces_stay_well_formed(seed in 0u64..10_000) {
        let inj = ChaosInjector::new(ChaosConfig::harsh(seed)).expect("harsh is valid");
        let (trace, faults) = inj.perturb(base());
        prop_assert!(!faults.is_empty(), "harsh must inject something");
        prop_assert!(trace.events.len() > base().events.len());
        prop_assert_eq!(trace.duration_hours, base().duration_hours);
        for w in trace.events.windows(2) {
            prop_assert!(w[0].time_hours <= w[1].time_hours);
        }
    }
}

#[test]
fn harsh_chaos_exercises_degraded_recovery_and_stays_clean() {
    // The harsh preset guarantees a total capacity collapse, so the run
    // must visit Degraded at least once — and still uphold every
    // invariant while recovering.
    let mut saw_degraded = false;
    for seed in 0..3 {
        let run = run_chaos(calib(), base(), &ChaosConfig::harsh(seed)).expect("harsh run");
        assert!(
            run.violations.is_empty(),
            "seed {seed}: {:?}",
            run.violations
        );
        assert!(run.morphs > 0, "seed {seed} never reconfigured");
        saw_degraded |= run.degraded_entries > 0;
    }
    assert!(saw_degraded, "collapse must force a Degraded episode");
}

#[test]
fn quiet_chaos_matches_the_fault_free_replay() {
    // With every fault process off, the chaos harness must reproduce the
    // plain replay exactly: zero faults, zero degraded episodes, and the
    // same event stream a bare Manager produces on the base trace.
    let run = run_chaos(calib(), base(), &ChaosConfig::quiet(99)).expect("quiet run");
    assert!(run.faults.is_empty());
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert_eq!(run.degraded_entries, 0);
    assert!(!run.ended_degraded);
    assert!(run.morphs > 0, "the base trace still morphs");
    let sink = VecSink::new();
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    let mut mgr = Manager::new(calib(), 8192, 4).with_fallback();
    mgr.replay_on_bus(base(), &mut bus).expect("plain replay");
    assert_eq!(
        run.digest,
        digest_events(&sink.take()),
        "a quiet injector must be invisible in the event stream"
    );
}

#[test]
fn lost_work_is_priced_under_storage_outages() {
    // A long storage outage plus ongoing preemptions means morphs happen
    // with a stale durable checkpoint: the price must show up as
    // explicitly-accounted lost minibatches, never as rolled-back
    // progress (the invariant checker pins the latter).
    let cfg = ChaosConfig {
        outage_rate_per_hour: 1.0,
        outage_minutes: 60.0,
        burst_rate_per_hour: 2.0,
        ..ChaosConfig::default_tuning(4242)
    };
    let run = run_chaos(calib(), base(), &cfg).expect("outage run");
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert!(
        run.lost_minibatches > 0,
        "outage + churn must price lost work: {run:?}"
    );
}
