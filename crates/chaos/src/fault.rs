//! The vocabulary of injectable faults.

use serde::{Deserialize, Serialize};

/// One class of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A VM was preempted as part of a correlated burst.
    Preemption {
        /// Whether the cloud sent an advance eviction notice first.
        with_notice: bool,
    },
    /// A VM stopped heartbeating while still granted.
    Silence {
        /// Total silent time injected, minutes.
        minutes: f64,
        /// Whether the episode flaps (rapid silence/recover cycles).
        flapping: bool,
    },
    /// A VM entered fail-stutter: compute slowed by `factor`.
    Stutter {
        /// Initial slowdown factor (> 1.0).
        factor: f64,
        /// Whether the factor drifts worse mid-episode.
        drifting: bool,
    },
    /// Checkpoint storage became unreachable.
    StorageOutage {
        /// Outage length, minutes.
        minutes: f64,
    },
    /// The latest durable checkpoint turned out stale or corrupt.
    CheckpointCorrupt,
    /// A checkpoint write died mid-flight, leaving a partial file on
    /// durable storage (distinct from [`FaultKind::CheckpointCorrupt`]:
    /// the bytes that landed are valid, there are just too few of them).
    CheckpointTorn {
        /// Fraction of the expected bytes that reached storage, in `[0, 1)`.
        fraction: f64,
    },
    /// A *delta* checkpoint write died mid-flight, leaving a partial
    /// delta frame: the chain back to the anchoring full checkpoint is
    /// broken and the durable point falls back to that full, never to a
    /// silently-restored torn frame. Only meaningful under a
    /// delta-checkpointing (zero-downtime) policy.
    TornDelta {
        /// Fraction of the delta's bytes that reached storage, in `[0, 1)`.
        fraction: f64,
    },
    /// A VM was replaced while its stage state was being live-migrated
    /// to the replacement: the migration aborts and that morph falls
    /// back to a priced restart. Only meaningful under a zero-downtime
    /// policy.
    KilledDuringMigration,
    /// Every live VM was preempted at once (planner-infeasible capacity).
    CapacityCollapse {
        /// VMs taken down by the collapse.
        victims: usize,
    },
    /// The manager process itself was killed and recovered from its
    /// write-ahead log.
    ControlPlaneCrash {
        /// Whether the kill tore the WAL frame being written.
        torn: bool,
    },
}

impl FaultKind {
    /// A stable short label for observability events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Preemption { with_notice: true } => "preemption_with_notice",
            FaultKind::Preemption { with_notice: false } => "preemption",
            FaultKind::Silence { flapping: true, .. } => "silence_flapping",
            FaultKind::Silence {
                flapping: false, ..
            } => "silence",
            FaultKind::Stutter { drifting: true, .. } => "stutter_drifting",
            FaultKind::Stutter {
                drifting: false, ..
            } => "stutter",
            FaultKind::StorageOutage { .. } => "storage_outage",
            FaultKind::CheckpointCorrupt => "checkpoint_corrupt",
            FaultKind::CheckpointTorn { .. } => "checkpoint_torn",
            FaultKind::TornDelta { .. } => "torn_delta",
            FaultKind::KilledDuringMigration => "killed_during_migration",
            FaultKind::CapacityCollapse { .. } => "capacity_collapse",
            FaultKind::ControlPlaneCrash { torn: true } => "control_plane_crash_torn",
            FaultKind::ControlPlaneCrash { torn: false } => "control_plane_crash",
        }
    }
}

/// One fault the injector decided to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// When the fault begins, hours since trace start.
    pub time_hours: f64,
    /// The targeted VM, or `u64::MAX` for cluster-global faults.
    pub vm: u64,
    /// What was injected.
    pub fault: FaultKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_distinguish_every_variant() {
        let kinds = [
            FaultKind::Preemption { with_notice: true },
            FaultKind::Preemption { with_notice: false },
            FaultKind::Silence {
                minutes: 5.0,
                flapping: true,
            },
            FaultKind::Silence {
                minutes: 5.0,
                flapping: false,
            },
            FaultKind::Stutter {
                factor: 1.3,
                drifting: true,
            },
            FaultKind::Stutter {
                factor: 1.3,
                drifting: false,
            },
            FaultKind::StorageOutage { minutes: 10.0 },
            FaultKind::CheckpointCorrupt,
            FaultKind::CheckpointTorn { fraction: 0.4 },
            FaultKind::TornDelta { fraction: 0.4 },
            FaultKind::KilledDuringMigration,
            FaultKind::CapacityCollapse { victims: 8 },
            FaultKind::ControlPlaneCrash { torn: true },
            FaultKind::ControlPlaneCrash { torn: false },
        ];
        let labels: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len(), "labels must be unique");
    }

    #[test]
    fn injected_faults_round_trip_through_json() {
        let f = InjectedFault {
            time_hours: 1.25,
            vm: 7,
            fault: FaultKind::Stutter {
                factor: 1.4,
                drifting: true,
            },
        };
        let j = serde_json::to_string(&f).unwrap();
        let back: InjectedFault = serde_json::from_str(&j).unwrap();
        assert_eq!(f, back);
    }
}
