//! Seeded fault-rate configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Errors surfaced by the chaos harness.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A fault configuration was shape-invalid.
    InvalidConfig(String),
    /// The manager replay itself rejected its inputs.
    Replay(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::InvalidConfig(s) => write!(f, "invalid chaos configuration: {s}"),
            ChaosError::Replay(s) => write!(f, "replay under chaos failed: {s}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Rates and shapes for every fault process, plus the master seed.
///
/// All `*_rate_per_hour` fields are expected-events-per-hour; the injector
/// discretizes them into per-tick Bernoulli draws. A rate of `0.0` turns
/// the corresponding fault process off entirely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master RNG seed: the same seed always yields the same schedule.
    pub seed: u64,
    /// Sampling granularity of the injector, minutes.
    pub tick_minutes: f64,

    /// Correlated preemption bursts per hour.
    pub burst_rate_per_hour: f64,
    /// Fraction of currently-live VMs hit by each burst (0..=1).
    pub burst_fraction: f64,
    /// Probability a burst victim gets an advance eviction notice.
    pub eviction_notice_prob: f64,
    /// Lead time carried by eviction notices, minutes.
    pub notice_lead_minutes: f64,

    /// Heartbeat-silence episodes per hour.
    pub silence_rate_per_hour: f64,
    /// Shortest silence episode, minutes.
    pub silence_min_minutes: f64,
    /// Longest silence episode, minutes.
    pub silence_max_minutes: f64,
    /// Probability a silence episode flaps (rapid on/off cycles).
    pub flap_prob: f64,
    /// Silence/recover cycles in a flapping episode.
    pub flap_cycles: u32,

    /// Fail-stutter episodes per hour.
    pub stutter_rate_per_hour: f64,
    /// Smallest injected slowdown factor (> 1.0).
    pub stutter_factor_min: f64,
    /// Largest injected slowdown factor.
    pub stutter_factor_max: f64,
    /// Stutter episode length, minutes.
    pub stutter_minutes: f64,
    /// Mid-episode drift multiplier on the factor (1.0 = no drift).
    pub stutter_drift: f64,

    /// Checkpoint-storage outages per hour.
    pub outage_rate_per_hour: f64,
    /// Outage length, minutes.
    pub outage_minutes: f64,
    /// Stale/corrupt-checkpoint discoveries per hour.
    pub corrupt_rate_per_hour: f64,
    /// Torn (partially written) checkpoint discoveries per hour.
    pub torn_rate_per_hour: f64,
    /// Torn *delta*-checkpoint discoveries per hour. Draws from its own
    /// RNG stream, consumed only when the rate is nonzero, so enabling
    /// it never shifts the other fault schedules.
    pub delta_torn_rate_per_hour: f64,

    /// Probability each same-shape replacement's live migration is
    /// killed mid-stream (the morph then falls back to a restart).
    /// Draws from its own RNG stream, consumed only when nonzero.
    pub migration_kill_prob: f64,
    /// Run the manager with [`varuna::Manager::with_zero_downtime`]:
    /// delta checkpoints, overlapped writes, pre-morph delta flushes,
    /// and live stage migration.
    pub zero_downtime: bool,

    /// Probability the run contains one total capacity collapse.
    pub collapse_prob: f64,

    /// Probability the run contains one control-plane kill-and-recover.
    /// The kill is planned from an RNG stream independent of the fault
    /// schedule, so enabling it never perturbs the injected faults.
    pub crash_prob: f64,
    /// Probability a planned control-plane kill tears the WAL frame being
    /// written (instead of dying cleanly at a record boundary).
    pub crash_torn_prob: f64,
}

impl ChaosConfig {
    /// A moderate default: every fault process active at rates that a
    /// multi-hour trace will exercise without drowning the base schedule.
    pub fn default_tuning(seed: u64) -> Self {
        ChaosConfig {
            seed,
            tick_minutes: 1.0,
            burst_rate_per_hour: 0.5,
            burst_fraction: 0.25,
            eviction_notice_prob: 0.5,
            notice_lead_minutes: 3.0,
            silence_rate_per_hour: 1.0,
            silence_min_minutes: 1.0,
            silence_max_minutes: 10.0,
            flap_prob: 0.3,
            flap_cycles: 3,
            stutter_rate_per_hour: 0.5,
            stutter_factor_min: 1.2,
            stutter_factor_max: 1.5,
            stutter_minutes: 30.0,
            stutter_drift: 1.2,
            outage_rate_per_hour: 0.2,
            outage_minutes: 20.0,
            corrupt_rate_per_hour: 0.1,
            torn_rate_per_hour: 0.0,
            delta_torn_rate_per_hour: 0.0,
            migration_kill_prob: 0.0,
            zero_downtime: false,
            collapse_prob: 0.1,
            crash_prob: 0.0,
            crash_torn_prob: 0.0,
        }
    }

    /// All fault processes disabled: the injector becomes the identity.
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            burst_rate_per_hour: 0.0,
            silence_rate_per_hour: 0.0,
            stutter_rate_per_hour: 0.0,
            outage_rate_per_hour: 0.0,
            corrupt_rate_per_hour: 0.0,
            collapse_prob: 0.0,
            ..ChaosConfig::default_tuning(seed)
        }
    }

    /// An adversarial tuning: frequent correlated faults of every kind,
    /// a guaranteed capacity collapse, and heavy flapping.
    pub fn harsh(seed: u64) -> Self {
        ChaosConfig {
            burst_rate_per_hour: 2.0,
            burst_fraction: 0.5,
            silence_rate_per_hour: 4.0,
            flap_prob: 0.7,
            flap_cycles: 4,
            stutter_rate_per_hour: 2.0,
            stutter_factor_max: 1.8,
            stutter_drift: 1.4,
            outage_rate_per_hour: 0.5,
            corrupt_rate_per_hour: 0.5,
            collapse_prob: 1.0,
            ..ChaosConfig::default_tuning(seed)
        }
    }

    /// Derives a *varied* configuration from the seed itself, so a sweep
    /// over seeds explores the fault space (quiet corners, harsh corners,
    /// and everything between) instead of replaying one intensity.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5EED);
        ChaosConfig {
            burst_rate_per_hour: rng.gen_range(0.0..3.0),
            burst_fraction: rng.gen_range(0.05..0.75),
            eviction_notice_prob: rng.gen_range(0.0..1.0),
            silence_rate_per_hour: rng.gen_range(0.0..4.0),
            silence_max_minutes: rng.gen_range(2.0..15.0),
            flap_prob: rng.gen_range(0.0..1.0),
            stutter_rate_per_hour: rng.gen_range(0.0..2.0),
            stutter_factor_max: rng.gen_range(1.25..1.8),
            stutter_drift: rng.gen_range(1.0..1.5),
            outage_rate_per_hour: rng.gen_range(0.0..0.8),
            outage_minutes: rng.gen_range(5.0..30.0),
            corrupt_rate_per_hour: rng.gen_range(0.0..0.6),
            collapse_prob: rng.gen_range(0.0..1.0),
            ..ChaosConfig::default_tuning(seed)
        }
    }

    /// A [`ChaosConfig::from_seed`] tuning with the control-plane fault
    /// processes switched on: torn checkpoint writes, and a guaranteed
    /// kill-and-recover of the manager (torn WAL tail on a quarter of the
    /// kills). Because the kill plan draws from its own RNG stream and the
    /// torn-write process only consumes RNG when its rate is nonzero, the
    /// underlying fault schedule stays seed-compatible with `from_seed`.
    pub fn recovery(seed: u64) -> Self {
        ChaosConfig {
            torn_rate_per_hour: 0.3,
            crash_prob: 1.0,
            crash_torn_prob: 0.25,
            ..ChaosConfig::from_seed(seed)
        }
    }

    /// A [`ChaosConfig::recovery`] tuning that additionally runs the
    /// manager in zero-downtime mode and turns on the zero-downtime
    /// fault processes: torn delta frames and migration kills. Both new
    /// processes draw from their own RNG streams (consumed only because
    /// their rates are nonzero), so the underlying fault schedule stays
    /// seed-compatible with `recovery` and `from_seed`.
    pub fn zero_downtime(seed: u64) -> Self {
        ChaosConfig {
            delta_torn_rate_per_hour: 0.3,
            migration_kill_prob: 0.25,
            zero_downtime: true,
            ..ChaosConfig::recovery(seed)
        }
    }

    /// Checks every shape invariant.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::InvalidConfig`] naming the first violated
    /// constraint: non-finite or negative rates, probabilities outside
    /// `[0, 1]`, a non-positive tick, slowdown factors at or below 1.0,
    /// inverted silence bounds, or zero flap cycles.
    pub fn validate(&self) -> Result<(), ChaosError> {
        let fail = |why: String| Err(ChaosError::InvalidConfig(why));
        let rates = [
            ("burst_rate_per_hour", self.burst_rate_per_hour),
            ("silence_rate_per_hour", self.silence_rate_per_hour),
            ("stutter_rate_per_hour", self.stutter_rate_per_hour),
            ("outage_rate_per_hour", self.outage_rate_per_hour),
            ("corrupt_rate_per_hour", self.corrupt_rate_per_hour),
            ("torn_rate_per_hour", self.torn_rate_per_hour),
            ("delta_torn_rate_per_hour", self.delta_torn_rate_per_hour),
        ];
        for (name, r) in rates {
            if !(r.is_finite() && r >= 0.0) {
                return fail(format!("{name} must be finite and >= 0, got {r}"));
            }
        }
        let probs = [
            ("burst_fraction", self.burst_fraction),
            ("eviction_notice_prob", self.eviction_notice_prob),
            ("flap_prob", self.flap_prob),
            ("collapse_prob", self.collapse_prob),
            ("crash_prob", self.crash_prob),
            ("crash_torn_prob", self.crash_torn_prob),
            ("migration_kill_prob", self.migration_kill_prob),
        ];
        for (name, p) in probs {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return fail(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        let durations = [
            ("tick_minutes", self.tick_minutes),
            ("notice_lead_minutes", self.notice_lead_minutes),
            ("silence_min_minutes", self.silence_min_minutes),
            ("stutter_minutes", self.stutter_minutes),
            ("outage_minutes", self.outage_minutes),
        ];
        for (name, d) in durations {
            if !(d.is_finite() && d > 0.0) {
                return fail(format!("{name} must be finite and positive, got {d}"));
            }
        }
        if !(self.silence_max_minutes.is_finite()
            && self.silence_max_minutes >= self.silence_min_minutes)
        {
            return fail(format!(
                "silence_max_minutes ({}) must be >= silence_min_minutes ({})",
                self.silence_max_minutes, self.silence_min_minutes
            ));
        }
        if !(self.stutter_factor_min.is_finite() && self.stutter_factor_min > 1.0) {
            return fail(format!(
                "stutter_factor_min must exceed 1.0, got {}",
                self.stutter_factor_min
            ));
        }
        if !(self.stutter_factor_max.is_finite()
            && self.stutter_factor_max >= self.stutter_factor_min)
        {
            return fail(format!(
                "stutter_factor_max ({}) must be >= stutter_factor_min ({})",
                self.stutter_factor_max, self.stutter_factor_min
            ));
        }
        if !(self.stutter_drift.is_finite() && self.stutter_drift >= 1.0) {
            return fail(format!(
                "stutter_drift must be >= 1.0, got {}",
                self.stutter_drift
            ));
        }
        if self.flap_cycles == 0 {
            return fail("flap_cycles must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(ChaosConfig::default_tuning(1).validate().is_ok());
        assert!(ChaosConfig::quiet(1).validate().is_ok());
        assert!(ChaosConfig::harsh(1).validate().is_ok());
        assert!(ChaosConfig::recovery(1).validate().is_ok());
        assert!(ChaosConfig::zero_downtime(1).validate().is_ok());
        for seed in 0..200 {
            ChaosConfig::from_seed(seed)
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn from_seed_is_deterministic_and_varied() {
        assert_eq!(ChaosConfig::from_seed(42), ChaosConfig::from_seed(42));
        assert_ne!(ChaosConfig::from_seed(1), ChaosConfig::from_seed(2));
    }

    #[test]
    fn invalid_shapes_are_typed_errors() {
        let bad = |f: fn(&mut ChaosConfig)| {
            let mut c = ChaosConfig::default_tuning(0);
            f(&mut c);
            assert!(
                matches!(c.validate(), Err(ChaosError::InvalidConfig(_))),
                "{c:?} should be rejected"
            );
        };
        bad(|c| c.burst_rate_per_hour = -1.0);
        bad(|c| c.burst_rate_per_hour = f64::NAN);
        bad(|c| c.burst_fraction = 1.5);
        bad(|c| c.collapse_prob = -0.1);
        bad(|c| c.torn_rate_per_hour = -0.2);
        bad(|c| c.delta_torn_rate_per_hour = f64::INFINITY);
        bad(|c| c.migration_kill_prob = -0.5);
        bad(|c| c.crash_prob = 1.5);
        bad(|c| c.crash_torn_prob = f64::NAN);
        bad(|c| c.tick_minutes = 0.0);
        bad(|c| c.silence_max_minutes = 0.5); // below silence_min_minutes
        bad(|c| c.stutter_factor_min = 1.0);
        bad(|c| c.stutter_factor_max = 1.1); // below factor_min
        bad(|c| c.stutter_drift = 0.9);
        bad(|c| c.flap_cycles = 0);
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = ChaosConfig::harsh(9);
        let j = serde_json::to_string(&c).unwrap();
        let back: ChaosConfig = serde_json::from_str(&j).unwrap();
        assert_eq!(c, back);
    }
}
