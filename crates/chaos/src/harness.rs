//! One-call chaos runs: inject, replay, verify, digest.

use serde::{Deserialize, Serialize};
use varuna::{Calibration, Manager, ManagerState, ManagerWal, WalRecord};
use varuna_cluster::trace::ClusterTrace;
use varuna_obs::{
    profile, Event, EventBus, EventKind, ProfileReport, RingBufferSink, Source, StreamConfig,
    StreamSink, VecSink,
};

use crate::config::{ChaosConfig, ChaosError};
use crate::fault::{FaultKind, InjectedFault};
use crate::inject::ChaosInjector;
use crate::verify::check_invariants;

/// The verdict of one seeded chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosRun {
    /// The seed that produced this run.
    pub seed: u64,
    /// Every fault the injector scheduled.
    pub faults: Vec<InjectedFault>,
    /// Events the replay emitted (faults + recovery + training markers).
    pub event_count: usize,
    /// Invariant violations found in the stream (empty = clean).
    pub violations: Vec<String>,
    /// FNV-1a digest of the full event stream: two runs of the same seed
    /// must agree byte-for-byte.
    pub digest: u64,
    /// Reconfigurations performed.
    pub morphs: usize,
    /// Times the manager fell into its Degraded retry loop.
    pub degraded_entries: usize,
    /// Total minibatches explicitly priced as lost.
    pub lost_minibatches: u64,
    /// Whether the manager finished the trace Running or Degraded.
    pub ended_degraded: bool,
    /// Time-attribution profile of the replay stream, attached only when
    /// an invariant was violated so the fault's cost is visible in the
    /// failure report.
    pub profile: Option<ProfileReport>,
    /// The flight recorder's last events (newest last), drained only on
    /// an invariant violation — the tail of the stream that led up to it.
    pub flight_recorder: Vec<Event>,
}

/// Ring-buffer capacity of the always-on flight recorder: enough tail to
/// see the episode leading into a violation without retaining the full
/// multi-thousand-event stream in failure artifacts.
pub const FLIGHT_RECORDER_EVENTS: usize = 256;

impl ChaosRun {
    /// Whether the run upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the failure artifacts for a dirty run: the violations, the
    /// downtime accounting from the attached profile, and the flight
    /// recorder's tail, one readable block for CI logs / artifact files.
    /// Empty for a clean run.
    pub fn failure_artifacts(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "chaos seed {} FAILED: {} violation(s), digest {:016x}\n",
            self.seed,
            self.violations.len(),
            self.digest
        ));
        for v in &self.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        if let Some(p) = &self.profile {
            let dt = &p.downtime;
            out.push_str(&format!(
                "profile: makespan {:.1}s, useful {:.1}s, degraded {:.1}s, \
                 restarts {:.1}s, ckpt writes {:.1}s, lost work {:.1}s \
                 ({} morphs, {} checkpoints, {} preemptions, {} faults)\n",
                p.makespan,
                dt.useful_seconds,
                dt.degraded_seconds,
                dt.morph_restart_seconds,
                dt.checkpoint_write_seconds,
                dt.lost_work_seconds,
                dt.morphs,
                dt.checkpoints,
                dt.preemptions,
                dt.faults_injected,
            ));
        }
        out.push_str(&format!(
            "flight recorder (last {} events):\n",
            self.flight_recorder.len()
        ));
        for e in &self.flight_recorder {
            out.push_str(&format!("  [{:>12.3}s] {:?}\n", e.t_sim, e.kind));
        }
        out
    }
}

/// Builds the manager every chaos experiment drives: the paper's
/// 8192-minibatch job at micro-batch 4 with fallback enabled, switched to
/// the zero-downtime policy (delta checkpoints, overlapped writes, live
/// migration) when the configuration asks for it.
fn build_manager<'a>(calib: &'a Calibration, cfg: &ChaosConfig) -> Manager<'a> {
    let mgr = Manager::new(calib, 8192, 4).with_fallback();
    if cfg.zero_downtime {
        mgr.with_zero_downtime()
    } else {
        mgr
    }
}

/// FNV-1a over the debug rendering of each event: a cheap, dependency-free
/// fingerprint that changes if any field of any event changes.
pub fn digest_events(events: &[Event]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in events {
        for b in format!("{e:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one full chaos experiment: perturbs `base` with `cfg`, replays it
/// through a fallback-enabled [`Manager`] (the paper's 8192-minibatch job
/// at micro-batch 4), checks the event stream against
/// [`check_invariants`], and fingerprints the stream.
///
/// # Errors
///
/// Returns [`ChaosError::InvalidConfig`] for a bad configuration and
/// [`ChaosError::Replay`] if the manager rejects the perturbed trace
/// (which itself would indicate an injector bug).
pub fn run_chaos(
    calib: &Calibration,
    base: &ClusterTrace,
    cfg: &ChaosConfig,
) -> Result<ChaosRun, ChaosError> {
    let injector = ChaosInjector::new(cfg.clone())?;
    let sink = VecSink::new();
    let recorder = RingBufferSink::new(FLIGHT_RECORDER_EVENTS);
    let live = StreamSink::new(StreamConfig::default());
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    bus.add_sink(Box::new(recorder.clone()));
    bus.add_sink(Box::new(live.clone()));
    let (trace, faults) = injector.perturb_observed(base, &mut bus);
    let mut mgr = build_manager(calib, cfg);
    mgr.replay_on_bus(&trace, &mut bus)
        .map_err(|e| ChaosError::Replay(e.to_string()))?;
    let events = sink.take();

    // The injector reports its schedule up front, before the replay
    // starts, so the two sub-streams are each time-ordered but the
    // concatenation is not; verify them separately.
    let (chaos_events, replay_events): (Vec<Event>, Vec<Event>) = events
        .iter()
        .cloned()
        .partition(|e| e.source == varuna_obs::Source::Chaos);
    let mut violations = check_invariants(&replay_events);
    for w in chaos_events.windows(2) {
        if w[1].t_sim < w[0].t_sim {
            violations.push(format!(
                "chaos events out of order: {} after {}",
                w[1].t_sim, w[0].t_sim
            ));
        }
    }

    // The always-on streaming profiler must account for the faulted run
    // exactly as the post-hoc profiler does: any byte of divergence or
    // internal anomaly is itself an invariant violation.
    let streamed = live.take_partial();
    let stream_anomalies = streamed.counters().violations();
    if stream_anomalies > 0 {
        violations.push(format!(
            "streaming profiler flagged {stream_anomalies} anomalie(s): {:?}",
            streamed.counters()
        ));
    }
    if streamed.into_report().to_json() != profile(&events).to_json() {
        violations.push("streamed profile diverges from post-hoc".to_string());
    }

    let morphs = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Morph { .. }))
        .count();
    let degraded_entries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DegradedEnter { .. }))
        .count();
    let lost_minibatches = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LostWork { minibatches, .. } => Some(minibatches),
            _ => None,
        })
        .sum();
    // Failure artifacts: a dirty run ships its time-attribution profile
    // and the flight recorder's tail; clean runs stay lean.
    let (profile, flight_recorder) = if violations.is_empty() {
        (None, Vec::new())
    } else {
        (Some(profile(&replay_events)), recorder.snapshot())
    };
    Ok(ChaosRun {
        seed: cfg.seed,
        digest: digest_events(&events),
        event_count: events.len(),
        faults,
        violations,
        morphs,
        degraded_entries,
        lost_minibatches,
        ended_degraded: mgr.state() == ManagerState::Degraded,
        profile,
        flight_recorder,
    })
}

/// FNV-1a digest of the control-decision stream only:
/// [`Source::Recovery`]-tagged events (the replay announcements) are
/// excluded, so an uninterrupted run and a kill-and-recover run of the
/// same trace can be compared for the kill-anywhere invariant.
pub fn digest_control_events(events: &[Event]) -> u64 {
    let filtered: Vec<Event> = events
        .iter()
        .filter(|e| e.source != Source::Recovery)
        .cloned()
        .collect();
    digest_events(&filtered)
}

/// The verdict of one control-plane kill-and-recover experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRun {
    /// The seed that produced the underlying chaos run.
    pub seed: u64,
    /// Clean WAL frames surviving the kill.
    pub boundary: usize,
    /// Records in the uninterrupted run's complete log.
    pub wal_records: usize,
    /// Whether the kill additionally tore frame `boundary` mid-write.
    pub torn: bool,
    /// Whether recovery detected (and truncated) a torn tail.
    pub torn_detected: bool,
    /// Bytes the torn-tail truncation dropped at load.
    pub dropped_bytes: u64,
    /// Records replayed from the surviving log prefix.
    pub replayed_records: usize,
    /// Modeled replay cost priced as downtime, seconds.
    pub replay_seconds: f64,
    /// Control-event digest of the uninterrupted run (the oracle).
    pub digest_expected: u64,
    /// Control-event digest of the recovered run.
    pub digest_recovered: u64,
    /// Whether the recovered run's final WAL bytes equal the
    /// uninterrupted log byte-for-byte.
    pub wal_bytes_identical: bool,
    /// Invariant violations (empty = the kill-anywhere invariant held).
    pub violations: Vec<String>,
}

impl RecoveryRun {
    /// Whether the kill-anywhere invariant held for this kill point.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders a readable failure block for CI logs / artifact files.
    /// Empty for a clean run.
    pub fn failure_artifacts(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "recovery seed {} FAILED at boundary {}/{} (torn: {}): {} violation(s)\n",
            self.seed,
            self.boundary,
            self.wal_records,
            self.torn,
            self.violations.len()
        ));
        for v in &self.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        out.push_str(&format!(
            "digests: expected {:016x}, recovered {:016x}; replayed {} records \
             ({:.3}s), dropped {} torn bytes, wal bytes identical: {}\n",
            self.digest_expected,
            self.digest_recovered,
            self.replayed_records,
            self.replay_seconds,
            self.dropped_bytes,
            self.wal_bytes_identical,
        ));
        out
    }
}

/// One uninterrupted write-ahead-logged chaos run, cached so that many
/// kill points can be probed against it without re-running the oracle.
///
/// `new` perturbs the base trace, drives the paper's 8192-minibatch job
/// through [`Manager::replay_walled`] once, and captures the resulting
/// control-event digest and complete WAL image. [`RecoveryHarness::recover_at`]
/// then simulates a kill at any record boundary — optionally tearing the
/// next frame mid-write — recovers a fresh manager from the surviving
/// bytes, and checks the kill-anywhere invariant: byte-identical control
/// digest and byte-identical final WAL.
pub struct RecoveryHarness<'a> {
    calib: &'a Calibration,
    cfg: ChaosConfig,
    trace: ClusterTrace,
    faults: Vec<InjectedFault>,
    seed: u64,
    wal: ManagerWal,
    reference_digest: u64,
    reference_bytes: Vec<u8>,
}

impl<'a> RecoveryHarness<'a> {
    /// Runs the uninterrupted oracle for `(calib, base, cfg)`.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::InvalidConfig`] for a bad configuration and
    /// [`ChaosError::Replay`] if the manager rejects the perturbed trace.
    pub fn new(
        calib: &'a Calibration,
        base: &ClusterTrace,
        cfg: &ChaosConfig,
    ) -> Result<Self, ChaosError> {
        let injector = ChaosInjector::new(cfg.clone())?;
        let (trace, faults) = injector.perturb(base);
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        let mut wal = ManagerWal::new();
        let mut mgr = build_manager(calib, cfg);
        mgr.replay_walled(&trace, &mut bus, &mut wal)
            .map_err(|e| ChaosError::Replay(e.to_string()))?;
        let reference_digest = digest_control_events(&sink.take());
        let reference_bytes = wal.to_bytes();
        Ok(RecoveryHarness {
            calib,
            cfg: cfg.clone(),
            trace,
            faults,
            seed: cfg.seed,
            wal,
            reference_digest,
            reference_bytes,
        })
    }

    /// Records in the uninterrupted run's complete log; kill boundaries
    /// range over `0..=wal_records()`.
    pub fn wal_records(&self) -> usize {
        self.wal.len()
    }

    /// The faults the injector scheduled for the underlying run.
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }

    /// Indices of WAL records that committed a *live migration* — a
    /// same-shape replacement priced as `migration_seconds` instead of a
    /// restart. Tearing one of these frames mid-write is the chaos
    /// suite's "killed during migration" fault: the control plane dies
    /// while the migration decision is being logged, and recovery must
    /// still reproduce the uninterrupted run byte-for-byte.
    pub fn migration_boundaries(&self) -> Vec<usize> {
        self.wal
            .records()
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                WalRecord::Morph { decision, .. } if decision.migration_seconds > 0.0 => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Decision time (hours) of WAL record `idx`.
    pub fn record_t_hours(&self, idx: usize) -> f64 {
        self.wal.records()[idx].t_hours()
    }

    /// Kills the run after `boundary` clean frames (`torn` additionally
    /// leaves half of frame `boundary` on disk), recovers a fresh manager
    /// from the surviving bytes, and checks the kill-anywhere invariant.
    ///
    /// `boundary` is clamped to the log length; `torn` is ignored when no
    /// frame follows the boundary (nothing was mid-write).
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::Replay`] if the surviving bytes fail to load
    /// or the recovered manager rejects the trace — both would be harness
    /// bugs, not invariant violations.
    pub fn recover_at(&self, boundary: usize, torn: bool) -> Result<RecoveryRun, ChaosError> {
        let n = self.wal.len();
        let boundary = boundary.min(n);
        let torn = torn && boundary < n;
        let bytes = if torn {
            self.wal.torn_bytes(boundary, 0.5)
        } else {
            self.wal.truncated_bytes(boundary)
        };
        let mut wal = ManagerWal::from_bytes(&bytes)
            .map_err(|e| ChaosError::Replay(format!("surviving WAL bytes failed to load: {e}")))?;
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        let mut mgr = build_manager(self.calib, &self.cfg);
        let report = mgr
            .recover_on_bus(&self.trace, &mut bus, &mut wal)
            .map_err(|e| ChaosError::Replay(e.to_string()))?;
        let events = sink.take();
        let digest_recovered = digest_control_events(&events);

        let mut violations = Vec::new();
        if digest_recovered != self.reference_digest {
            violations.push(format!(
                "recovered control digest {digest_recovered:016x} != uninterrupted \
                 {:016x} (killed at boundary {boundary}/{n}, torn {torn})",
                self.reference_digest
            ));
        }
        let control: Vec<Event> = events
            .iter()
            .filter(|e| e.source != Source::Recovery)
            .cloned()
            .collect();
        for v in check_invariants(&control) {
            violations.push(format!("recovered stream: {v}"));
        }
        if torn && report.torn.is_none() {
            violations.push("kill tore the final frame but recovery detected no torn tail".into());
        }
        if !torn && report.torn.is_some() {
            violations.push(format!(
                "clean kill at boundary {boundary} but recovery reported a torn tail: {:?}",
                report.torn
            ));
        }
        let final_bytes = wal.to_bytes();
        let wal_bytes_identical = final_bytes == self.reference_bytes;
        if !wal_bytes_identical {
            violations.push(format!(
                "recovered WAL ({} bytes) diverges from the uninterrupted log ({} bytes)",
                final_bytes.len(),
                self.reference_bytes.len()
            ));
        }
        Ok(RecoveryRun {
            seed: self.seed,
            boundary,
            wal_records: n,
            torn,
            torn_detected: report.torn.is_some(),
            dropped_bytes: report.dropped_bytes,
            replayed_records: report.replayed_records,
            replay_seconds: report.replay_seconds,
            digest_expected: self.reference_digest,
            digest_recovered,
            wal_bytes_identical,
            violations,
        })
    }
}

/// One kill-and-recover experiment at an explicit boundary: builds the
/// [`RecoveryHarness`] oracle and probes a single kill point.
///
/// # Errors
///
/// Propagates [`RecoveryHarness::new`] / [`RecoveryHarness::recover_at`]
/// errors.
pub fn run_recovery_at(
    calib: &Calibration,
    base: &ClusterTrace,
    cfg: &ChaosConfig,
    boundary: usize,
    torn: bool,
) -> Result<RecoveryRun, ChaosError> {
    RecoveryHarness::new(calib, base, cfg)?.recover_at(boundary, torn)
}

/// Runs the kill the injector planned for `cfg`
/// ([`ChaosInjector::crash_plan`]): the plan's boundary fraction is mapped
/// onto the concrete log and the recovered run is checked against the
/// uninterrupted oracle. A configuration that plans no kill degenerates to
/// a full-prefix replay check — recovering from the complete log must
/// still reproduce the run exactly.
///
/// # Errors
///
/// Same contract as [`run_recovery_at`].
pub fn run_chaos_recovery(
    calib: &Calibration,
    base: &ClusterTrace,
    cfg: &ChaosConfig,
) -> Result<RecoveryRun, ChaosError> {
    let plan = ChaosInjector::new(cfg.clone())?.crash_plan();
    let harness = RecoveryHarness::new(calib, base, cfg)?;
    let n = harness.wal_records();
    match plan {
        Some(p) => {
            let boundary = ((p.boundary_fraction * (n + 1) as f64) as usize).min(n);
            harness.recover_at(boundary, p.torn)
        }
        None => harness.recover_at(n, false),
    }
}

/// Runs the injector's "killed during migration" plan, if it rolled one:
/// the control plane is killed while a live-migration Morph frame is
/// mid-write (the frame is torn), a fresh manager recovers from the
/// surviving prefix, and the kill-anywhere invariant is checked. Returns
/// `Ok(None)` when the configuration disables migration kills, the roll
/// came up clean, or the run performed no live migrations (e.g. the
/// zero-downtime policy is off).
///
/// # Errors
///
/// Same contract as [`run_recovery_at`].
pub fn run_migration_kill_recovery(
    calib: &Calibration,
    base: &ClusterTrace,
    cfg: &ChaosConfig,
) -> Result<Option<(InjectedFault, RecoveryRun)>, ChaosError> {
    let Some(pick) = ChaosInjector::new(cfg.clone())?.migration_kill() else {
        return Ok(None);
    };
    let harness = RecoveryHarness::new(calib, base, cfg)?;
    let migrations = harness.migration_boundaries();
    if migrations.is_empty() {
        return Ok(None);
    }
    let idx = migrations[((pick * migrations.len() as f64) as usize).min(migrations.len() - 1)];
    let fault = InjectedFault {
        time_hours: harness.record_t_hours(idx),
        vm: u64::MAX,
        fault: FaultKind::KilledDuringMigration,
    };
    Ok(Some((fault, harness.recover_at(idx, true)?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = Event::manager(1.0, EventKind::Preemption { vm: 1 });
        let b = Event::manager(2.0, EventKind::Preemption { vm: 2 });
        let d1 = digest_events(&[a.clone(), b.clone()]);
        let d2 = digest_events(&[b, a]);
        assert_ne!(d1, d2, "order must matter");
        assert_ne!(
            d1,
            digest_events(&[Event::manager(1.0, EventKind::Preemption { vm: 9 })]),
            "content must matter"
        );
        assert_eq!(digest_events(&[]), digest_events(&[]));
    }

    #[test]
    fn control_digest_ignores_recovery_events() {
        let a = Event::manager(1.0, EventKind::Preemption { vm: 1 });
        let r = Event::recovery(
            5.0,
            EventKind::RecoveryReplay {
                wal_records: 3,
                torn: false,
                dropped_bytes: 0,
                replay_seconds: 0.006,
            },
        );
        assert_eq!(
            digest_control_events(&[r.clone(), a.clone()]),
            digest_control_events(&[a.clone()]),
            "recovery-sourced events must not affect the control digest"
        );
        assert_ne!(digest_events(&[r, a.clone()]), digest_events(&[a]));
    }
}
