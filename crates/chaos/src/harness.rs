//! One-call chaos runs: inject, replay, verify, digest.

use serde::{Deserialize, Serialize};
use varuna::{Calibration, Manager, ManagerState};
use varuna_cluster::trace::ClusterTrace;
use varuna_obs::{profile, Event, EventBus, EventKind, ProfileReport, RingBufferSink, VecSink};

use crate::config::{ChaosConfig, ChaosError};
use crate::fault::InjectedFault;
use crate::inject::ChaosInjector;
use crate::verify::check_invariants;

/// The verdict of one seeded chaos run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosRun {
    /// The seed that produced this run.
    pub seed: u64,
    /// Every fault the injector scheduled.
    pub faults: Vec<InjectedFault>,
    /// Events the replay emitted (faults + recovery + training markers).
    pub event_count: usize,
    /// Invariant violations found in the stream (empty = clean).
    pub violations: Vec<String>,
    /// FNV-1a digest of the full event stream: two runs of the same seed
    /// must agree byte-for-byte.
    pub digest: u64,
    /// Reconfigurations performed.
    pub morphs: usize,
    /// Times the manager fell into its Degraded retry loop.
    pub degraded_entries: usize,
    /// Total minibatches explicitly priced as lost.
    pub lost_minibatches: u64,
    /// Whether the manager finished the trace Running or Degraded.
    pub ended_degraded: bool,
    /// Time-attribution profile of the replay stream, attached only when
    /// an invariant was violated so the fault's cost is visible in the
    /// failure report.
    pub profile: Option<ProfileReport>,
    /// The flight recorder's last events (newest last), drained only on
    /// an invariant violation — the tail of the stream that led up to it.
    pub flight_recorder: Vec<Event>,
}

/// Ring-buffer capacity of the always-on flight recorder: enough tail to
/// see the episode leading into a violation without retaining the full
/// multi-thousand-event stream in failure artifacts.
pub const FLIGHT_RECORDER_EVENTS: usize = 256;

impl ChaosRun {
    /// Whether the run upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the failure artifacts for a dirty run: the violations, the
    /// downtime accounting from the attached profile, and the flight
    /// recorder's tail, one readable block for CI logs / artifact files.
    /// Empty for a clean run.
    pub fn failure_artifacts(&self) -> String {
        if self.is_clean() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "chaos seed {} FAILED: {} violation(s), digest {:016x}\n",
            self.seed,
            self.violations.len(),
            self.digest
        ));
        for v in &self.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        if let Some(p) = &self.profile {
            let dt = &p.downtime;
            out.push_str(&format!(
                "profile: makespan {:.1}s, useful {:.1}s, degraded {:.1}s, \
                 restarts {:.1}s, ckpt writes {:.1}s, lost work {:.1}s \
                 ({} morphs, {} checkpoints, {} preemptions, {} faults)\n",
                p.makespan,
                dt.useful_seconds,
                dt.degraded_seconds,
                dt.morph_restart_seconds,
                dt.checkpoint_write_seconds,
                dt.lost_work_seconds,
                dt.morphs,
                dt.checkpoints,
                dt.preemptions,
                dt.faults_injected,
            ));
        }
        out.push_str(&format!(
            "flight recorder (last {} events):\n",
            self.flight_recorder.len()
        ));
        for e in &self.flight_recorder {
            out.push_str(&format!("  [{:>12.3}s] {:?}\n", e.t_sim, e.kind));
        }
        out
    }
}

/// FNV-1a over the debug rendering of each event: a cheap, dependency-free
/// fingerprint that changes if any field of any event changes.
pub fn digest_events(events: &[Event]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in events {
        for b in format!("{e:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs one full chaos experiment: perturbs `base` with `cfg`, replays it
/// through a fallback-enabled [`Manager`] (the paper's 8192-minibatch job
/// at micro-batch 4), checks the event stream against
/// [`check_invariants`], and fingerprints the stream.
///
/// # Errors
///
/// Returns [`ChaosError::InvalidConfig`] for a bad configuration and
/// [`ChaosError::Replay`] if the manager rejects the perturbed trace
/// (which itself would indicate an injector bug).
pub fn run_chaos(
    calib: &Calibration,
    base: &ClusterTrace,
    cfg: &ChaosConfig,
) -> Result<ChaosRun, ChaosError> {
    let injector = ChaosInjector::new(cfg.clone())?;
    let sink = VecSink::new();
    let recorder = RingBufferSink::new(FLIGHT_RECORDER_EVENTS);
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    bus.add_sink(Box::new(recorder.clone()));
    let (trace, faults) = injector.perturb_observed(base, &mut bus);
    let mut mgr = Manager::new(calib, 8192, 4).with_fallback();
    mgr.replay_on_bus(&trace, &mut bus)
        .map_err(|e| ChaosError::Replay(e.to_string()))?;
    let events = sink.take();

    // The injector reports its schedule up front, before the replay
    // starts, so the two sub-streams are each time-ordered but the
    // concatenation is not; verify them separately.
    let (chaos_events, replay_events): (Vec<Event>, Vec<Event>) = events
        .iter()
        .cloned()
        .partition(|e| e.source == varuna_obs::Source::Chaos);
    let mut violations = check_invariants(&replay_events);
    for w in chaos_events.windows(2) {
        if w[1].t_sim < w[0].t_sim {
            violations.push(format!(
                "chaos events out of order: {} after {}",
                w[1].t_sim, w[0].t_sim
            ));
        }
    }

    let morphs = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Morph { .. }))
        .count();
    let degraded_entries = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::DegradedEnter { .. }))
        .count();
    let lost_minibatches = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LostWork { minibatches, .. } => Some(minibatches),
            _ => None,
        })
        .sum();
    // Failure artifacts: a dirty run ships its time-attribution profile
    // and the flight recorder's tail; clean runs stay lean.
    let (profile, flight_recorder) = if violations.is_empty() {
        (None, Vec::new())
    } else {
        (Some(profile(&replay_events)), recorder.snapshot())
    };
    Ok(ChaosRun {
        seed: cfg.seed,
        digest: digest_events(&events),
        event_count: events.len(),
        faults,
        violations,
        morphs,
        degraded_entries,
        lost_minibatches,
        ended_degraded: mgr.state() == ManagerState::Degraded,
        profile,
        flight_recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = Event::manager(1.0, EventKind::Preemption { vm: 1 });
        let b = Event::manager(2.0, EventKind::Preemption { vm: 2 });
        let d1 = digest_events(&[a.clone(), b.clone()]);
        let d2 = digest_events(&[b, a]);
        assert_ne!(d1, d2, "order must matter");
        assert_ne!(
            d1,
            digest_events(&[Event::manager(1.0, EventKind::Preemption { vm: 9 })]),
            "content must matter"
        );
        assert_eq!(digest_events(&[]), digest_events(&[]));
    }
}
