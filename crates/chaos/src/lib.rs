#![warn(missing_docs)]
//! Chaos harness: deterministic fault injection for the Varuna manager.
//!
//! The paper's reliability claims (§4.2 morphing, §4.5 continuous
//! checkpointing, §4.6 fail-stutter handling) are only as good as the
//! manager's behavior under *adversarial* schedules, not just the benign
//! spot-market traces of Figure 8. This crate perturbs a replayable
//! [`ClusterTrace`](varuna_cluster::trace::ClusterTrace) with a seeded,
//! fully deterministic fault injector and checks the resulting
//! [`varuna_obs`] event stream against recovery invariants:
//!
//! - **Preemption bursts** — correlated evictions hitting a fraction of
//!   the fleet at once, with or without an advance eviction notice.
//! - **Heartbeat loss / partition flapping** — VMs going silent while
//!   still granted, possibly in rapid silence/recover cycles.
//! - **Fail-stutter with drift** — slow VMs whose compute times worsen
//!   mid-episode (paper §4.6).
//! - **Checkpoint storage faults** — write outages and stale/corrupt
//!   resume points (paper §4.5).
//! - **Planner-infeasible capacity collapse** — everything preempted at
//!   once, forcing the manager into its `Degraded` retry loop.
//! - **Torn checkpoint writes** — a checkpoint killed mid-write, leaving
//!   a partial file (distinct from corruption: the bytes are valid, there
//!   are just too few of them).
//! - **Control-plane kills** — the manager process itself dying at an
//!   arbitrary write-ahead-log boundary (optionally tearing the frame
//!   being written) and recovering by replaying the surviving log prefix.
//! - **Torn delta frames** — an incremental (delta) checkpoint killed
//!   mid-write under the zero-downtime policy; the chain back to the
//!   anchoring full checkpoint is broken and restore must fall back to
//!   that full, never to a silently-truncated delta.
//! - **Kills during live migration** — the control plane dying while a
//!   live-migration morph frame is mid-write
//!   ([`harness::run_migration_kill_recovery`]).
//!
//! The pipeline is: [`ChaosConfig`] (seeded rates) → [`ChaosInjector`]
//! (perturbs a base trace into a fault schedule) → `Manager::replay_on_bus`
//! (the recovery state machine under test) → [`verify::check_invariants`]
//! (stream-level safety properties) → [`ChaosRun`] (one run's verdict,
//! with a digest for byte-identical same-seed comparison).
//!
//! Everything is deterministic: the same seed produces the same fault
//! schedule, the same event stream, and the same digest.
//!
//! Control-plane recovery runs through a second pipeline:
//! [`RecoveryHarness`] captures one uninterrupted write-ahead-logged run
//! as the oracle, then [`RecoveryHarness::recover_at`] kills it at any
//! record boundary (or mid-frame) and asserts the *kill-anywhere
//! invariant* — the recovered run's control-event digest and final WAL
//! bytes equal the uninterrupted run's exactly.

pub mod config;
pub mod fault;
pub mod harness;
pub mod inject;
pub mod verify;

pub use config::{ChaosConfig, ChaosError};
pub use fault::{FaultKind, InjectedFault};
pub use harness::{
    digest_control_events, digest_events, run_chaos, run_chaos_recovery,
    run_migration_kill_recovery, run_recovery_at, ChaosRun, RecoveryHarness, RecoveryRun,
    FLIGHT_RECORDER_EVENTS,
};
pub use inject::{ChaosInjector, CrashPlan};
