//! Stream-level recovery invariants.
//!
//! These are the safety properties the chaos suite pins: whatever the
//! fault schedule, a manager replay must produce an event stream that
//! passes [`check_invariants`] with zero violations.

use std::collections::BTreeSet;

use varuna_obs::{Event, EventKind};

/// Checks a replayed event stream against every recovery invariant,
/// returning one human-readable line per violation (empty = clean).
///
/// The invariants:
///
/// 1. **Monotone simulated time** — `t_sim` is finite, non-negative, and
///    never decreases.
/// 2. **Monotone minibatch progress** — successful `Checkpoint` steps
///    never decrease (work is never rolled back; a stale resume point is
///    handled by `CheckpointFallback`, not by rewriting history).
/// 3. **No double exclusion** — a VM is never `VmExcluded` twice without
///    an intervening `VmReadmitted` or `Preemption` of that VM.
/// 4. **Degraded alternation** — `DegradedEnter`/`DegradedExit` strictly
///    alternate, and every exit prices a non-negative pause.
/// 5. **Capacity honesty** — every `Morph` and `Checkpoint` uses at most
///    the GPUs it holds, with finite non-negative throughputs; downtime
///    pricing is honest too (finite non-negative restart / migration /
///    write / overlapped seconds, a morph never prices both a restart
///    and a migration, and live migration only applies to same-shape
///    replacements — a real reconfiguration must restart).
/// 6. **Priced lost work** — every `LostWork` event carries a positive
///    cost and is attached to a reconfiguration (a `Morph` at the same
///    `t_sim`): work is conserved *modulo explicitly-priced loss*.
/// 7. **Fallback sanity** — `CheckpointFallback` never moves the durable
///    point forward.
/// 8. **Plan-search accounting** — every `PlanSearch` event's candidates
///    are fully accounted for: simulated + memo hits + analytic
///    fallbacks equals the candidate count.
pub fn check_invariants(events: &[Event]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    let mut last_ckpt_step: u64 = 0;
    let mut excluded: BTreeSet<u64> = BTreeSet::new();
    let mut degraded = false;

    for (i, e) in events.iter().enumerate() {
        if !e.t_sim.is_finite() || e.t_sim < 0.0 {
            violations.push(format!(
                "event {i}: non-finite or negative t_sim {}",
                e.t_sim
            ));
            continue;
        }
        if e.t_sim < last_t {
            violations.push(format!(
                "event {i}: time went backwards ({} after {last_t})",
                e.t_sim
            ));
        }
        last_t = last_t.max(e.t_sim);

        match &e.kind {
            EventKind::Checkpoint {
                step,
                gpus_held,
                gpus_used,
                examples_per_sec,
                write_seconds,
                overlapped_seconds,
                ..
            } => {
                if *step < last_ckpt_step {
                    violations.push(format!(
                        "event {i}: checkpoint step regressed ({step} after {last_ckpt_step})"
                    ));
                }
                last_ckpt_step = last_ckpt_step.max(*step);
                if gpus_used > gpus_held {
                    violations.push(format!(
                        "event {i}: checkpoint uses {gpus_used} GPUs but holds {gpus_held}"
                    ));
                }
                if !(examples_per_sec.is_finite() && *examples_per_sec >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad checkpoint throughput {examples_per_sec}"
                    ));
                }
                if !(write_seconds.is_finite() && *write_seconds >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad checkpoint write_seconds {write_seconds}"
                    ));
                }
                if !(overlapped_seconds.is_finite() && *overlapped_seconds >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad checkpoint overlapped_seconds {overlapped_seconds}"
                    ));
                }
            }
            EventKind::Morph {
                gpus_held,
                gpus_used,
                examples_per_sec,
                reconfigured,
                restart_seconds,
                migration_seconds,
                ..
            } => {
                if gpus_used > gpus_held {
                    violations.push(format!(
                        "event {i}: morph uses {gpus_used} GPUs but holds {gpus_held}"
                    ));
                }
                if !(examples_per_sec.is_finite() && *examples_per_sec >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad morph throughput {examples_per_sec}"
                    ));
                }
                if !(restart_seconds.is_finite() && *restart_seconds >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad morph restart_seconds {restart_seconds}"
                    ));
                }
                if !(migration_seconds.is_finite() && *migration_seconds >= 0.0) {
                    violations.push(format!(
                        "event {i}: bad morph migration_seconds {migration_seconds}"
                    ));
                }
                if *restart_seconds > 0.0 && *migration_seconds > 0.0 {
                    violations.push(format!(
                        "event {i}: morph prices both a restart ({restart_seconds}s) \
                         and a migration ({migration_seconds}s)"
                    ));
                }
                if *reconfigured && *migration_seconds > 0.0 {
                    violations.push(format!(
                        "event {i}: reconfiguration priced as a live migration \
                         ({migration_seconds}s)"
                    ));
                }
            }
            EventKind::VmExcluded { vm, .. } => {
                if !excluded.insert(*vm) {
                    violations.push(format!("event {i}: VM {vm} excluded twice"));
                }
            }
            EventKind::VmReadmitted { vm } => {
                if !excluded.remove(vm) {
                    violations.push(format!("event {i}: VM {vm} readmitted but not excluded"));
                }
            }
            EventKind::Preemption { vm } => {
                // A preempted VM's exclusion episode ends with the VM.
                excluded.remove(vm);
            }
            EventKind::DegradedEnter { .. } => {
                if degraded {
                    violations.push(format!("event {i}: DegradedEnter while already degraded"));
                }
                degraded = true;
            }
            EventKind::DegradedExit { paused_seconds, .. } => {
                if !degraded {
                    violations.push(format!("event {i}: DegradedExit without DegradedEnter"));
                }
                degraded = false;
                if !(paused_seconds.is_finite() && *paused_seconds >= 0.0) {
                    violations.push(format!("event {i}: bad paused_seconds {paused_seconds}"));
                }
            }
            EventKind::LostWork {
                minibatches,
                seconds,
            } => {
                if *minibatches == 0 {
                    violations.push(format!("event {i}: LostWork prices zero minibatches"));
                }
                if !(seconds.is_finite() && *seconds > 0.0) {
                    violations.push(format!("event {i}: LostWork prices {seconds} seconds"));
                }
                let attached = events[i + 1..]
                    .iter()
                    .take_while(|n| n.t_sim == e.t_sim)
                    .any(|n| matches!(n.kind, EventKind::Morph { .. }));
                if !attached {
                    violations.push(format!(
                        "event {i}: LostWork not attached to a reconfiguration at t={}",
                        e.t_sim
                    ));
                }
            }
            EventKind::CheckpointFallback { from_step, to_step } => {
                if to_step > from_step {
                    violations.push(format!(
                        "event {i}: fallback advances the durable point \
                         ({from_step} -> {to_step})"
                    ));
                }
            }
            EventKind::PlanSearch {
                candidates,
                simulated,
                memo_hits,
                analytic_fallbacks,
            } => {
                if simulated + memo_hits + analytic_fallbacks != *candidates {
                    violations.push(format!(
                        "event {i}: plan search loses candidates \
                         ({simulated} + {memo_hits} + {analytic_fallbacks} != {candidates})"
                    ));
                }
            }
            EventKind::MorphRetry {
                backoff_seconds, ..
            } => {
                if !(backoff_seconds.is_finite() && *backoff_seconds > 0.0) {
                    violations.push(format!("event {i}: bad retry backoff {backoff_seconds}"));
                }
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_obs::Event;

    #[test]
    fn an_empty_stream_is_clean() {
        assert!(check_invariants(&[]).is_empty());
    }

    #[test]
    fn backwards_time_is_flagged() {
        let events = [
            Event::manager(10.0, EventKind::Preemption { vm: 1 }),
            Event::manager(5.0, EventKind::Preemption { vm: 2 }),
        ];
        let v = check_invariants(&events);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("backwards"));
    }

    #[test]
    fn checkpoint_regression_is_flagged() {
        let ck = |t: f64, step: u64| {
            Event::manager(
                t,
                EventKind::Checkpoint {
                    step,
                    gpus_held: 4,
                    gpus_used: 4,
                    p: 2,
                    d: 2,
                    examples_per_sec: 10.0,
                    examples_per_sec_per_gpu: 2.5,
                    write_seconds: 0.5,
                    overlapped_seconds: 0.0,
                    full: true,
                },
            )
        };
        let v = check_invariants(&[ck(1.0, 16), ck(2.0, 8)]);
        assert!(v.iter().any(|s| s.contains("regressed")), "{v:?}");
    }

    #[test]
    fn double_exclusion_is_flagged_and_cleared_by_preemption() {
        let ex = |t: f64| {
            Event::manager(
                t,
                EventKind::VmExcluded {
                    vm: 3,
                    consecutive_misses: 2,
                },
            )
        };
        let v = check_invariants(&[ex(1.0), ex(2.0)]);
        assert!(v.iter().any(|s| s.contains("excluded twice")), "{v:?}");
        // Preemption ends the episode, so a later exclusion is legal.
        let ok = check_invariants(&[
            ex(1.0),
            Event::manager(2.0, EventKind::Preemption { vm: 3 }),
            ex(3.0),
        ]);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn degraded_must_alternate() {
        let enter = Event::manager(
            1.0,
            EventKind::DegradedEnter {
                gpus: 0,
                reason: "x".into(),
            },
        );
        let v = check_invariants(&[enter.clone(), enter]);
        assert!(v.iter().any(|s| s.contains("already degraded")), "{v:?}");
        let v = check_invariants(&[Event::manager(
            1.0,
            EventKind::DegradedExit {
                gpus: 4,
                paused_seconds: 60.0,
            },
        )]);
        assert!(v.iter().any(|s| s.contains("without")), "{v:?}");
    }

    #[test]
    fn overcommitted_morphs_are_flagged() {
        let v = check_invariants(&[Event::manager(
            1.0,
            EventKind::Morph {
                p: 4,
                d: 2,
                gpus_held: 6,
                gpus_used: 8,
                examples_per_sec: 10.0,
                examples_per_sec_per_gpu: 1.25,
                reconfigured: true,
                restart_seconds: 60.0,
                migration_seconds: 0.0,
            },
        )]);
        assert!(v.iter().any(|s| s.contains("uses 8 GPUs")), "{v:?}");
    }

    #[test]
    fn dishonest_downtime_pricing_is_flagged() {
        // A real reconfiguration must restart, not migrate; a morph never
        // prices both; and checkpoint writes must price a finite
        // non-negative pause.
        let morph = |reconfigured: bool, restart_seconds: f64, migration_seconds: f64| {
            Event::manager(
                1.0,
                EventKind::Morph {
                    p: 4,
                    d: 2,
                    gpus_held: 8,
                    gpus_used: 8,
                    examples_per_sec: 10.0,
                    examples_per_sec_per_gpu: 1.25,
                    reconfigured,
                    restart_seconds,
                    migration_seconds,
                },
            )
        };
        let v = check_invariants(&[morph(true, 0.0, 1.5)]);
        assert!(
            v.iter().any(|s| s.contains("priced as a live migration")),
            "{v:?}"
        );
        let v = check_invariants(&[morph(false, 60.0, 1.5)]);
        assert!(v.iter().any(|s| s.contains("both a restart")), "{v:?}");
        // Baseline replacements legitimately price a restart, and
        // zero-downtime replacements a migration: both are clean.
        assert!(check_invariants(&[morph(false, 60.0, 0.0)]).is_empty());
        assert!(check_invariants(&[morph(false, 0.0, 1.5)]).is_empty());
        let v = check_invariants(&[Event::manager(
            1.0,
            EventKind::Checkpoint {
                step: 16,
                gpus_held: 8,
                gpus_used: 8,
                p: 4,
                d: 2,
                examples_per_sec: 10.0,
                examples_per_sec_per_gpu: 1.25,
                write_seconds: f64::NAN,
                overlapped_seconds: -1.0,
                full: true,
            },
        )]);
        assert!(v.iter().any(|s| s.contains("write_seconds")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("overlapped_seconds")), "{v:?}");
    }

    #[test]
    fn unpriced_or_detached_lost_work_is_flagged() {
        let v = check_invariants(&[Event::manager(
            1.0,
            EventKind::LostWork {
                minibatches: 0,
                seconds: 0.0,
            },
        )]);
        assert!(v.iter().any(|s| s.contains("zero minibatches")), "{v:?}");
        assert!(v.iter().any(|s| s.contains("not attached")), "{v:?}");
    }

    #[test]
    fn unaccounted_plan_search_candidates_are_flagged() {
        let search = |simulated: u64| {
            Event::manager(
                1.0,
                EventKind::PlanSearch {
                    candidates: 10,
                    simulated,
                    memo_hits: 3,
                    analytic_fallbacks: 1,
                },
            )
        };
        assert!(check_invariants(&[search(6)]).is_empty());
        let v = check_invariants(&[search(5)]);
        assert!(v.iter().any(|s| s.contains("loses candidates")), "{v:?}");
    }

    #[test]
    fn ci_smoke_digests_match_the_golden_corpus() {
        // The 8-seed CI chaos smoke (`chaos_sweep -- 8`) is pinned here:
        // `golden_digests.txt` holds the stream-invariant digest of every
        // seed's full event stream on the Figure-8 workload. Same seed
        // must mean byte-identical stream — any change to the manager,
        // planner, injector, or event schema that perturbs a replay shows
        // up as a digest mismatch and must be re-pinned deliberately.
        use varuna::{Calibration, VarunaCluster};
        use varuna_cluster::trace::ClusterTrace;
        use varuna_models::ModelZoo;

        use crate::config::ChaosConfig;
        use crate::harness::run_chaos;

        let golden: Vec<(u64, u64)> = include_str!("../golden_digests.txt")
            .lines()
            .map(|l| {
                let (seed, digest) = l.split_once(' ').expect("corpus line is `seed digest`");
                (
                    seed.parse().expect("seed"),
                    u64::from_str_radix(digest, 16).expect("digest"),
                )
            })
            .collect();
        assert_eq!(golden.len(), 8, "the CI smoke pins exactly 8 seeds");

        let calib =
            Calibration::profile(&ModelZoo::gpt2_2_5b(), &VarunaCluster::commodity_1gpu(160));
        let base = ClusterTrace::generate_spot_1gpu(40, 60, 3.0, 10.0, 7);
        for (seed, expected) in golden {
            let run = run_chaos(&calib, &base, &ChaosConfig::from_seed(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert!(run.is_clean(), "seed {seed}: {:?}", run.violations);
            assert_eq!(
                run.digest, expected,
                "seed {seed}: stream digest {:016x} drifted from the golden corpus",
                run.digest
            );
        }
    }

    #[test]
    fn forward_moving_fallback_is_flagged() {
        let v = check_invariants(&[Event::manager(
            1.0,
            EventKind::CheckpointFallback {
                from_step: 16,
                to_step: 32,
            },
        )]);
        assert!(v.iter().any(|s| s.contains("advances")), "{v:?}");
    }
}
