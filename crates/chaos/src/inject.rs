//! The deterministic trace perturber.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use varuna_cluster::trace::{ClusterEvent, ClusterEventKind, ClusterTrace};
use varuna_obs::{Event, EventBus, EventKind};

use crate::config::{ChaosConfig, ChaosError};
use crate::fault::{FaultKind, InjectedFault};

/// A control-plane kill the injector scheduled.
///
/// The kill site is expressed as a fraction of write-ahead-log record
/// boundaries because the injector cannot know how many records a run
/// will write; the recovery harness maps the fraction onto the concrete
/// log it captured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// Where among the WAL record boundaries the manager dies, in `[0, 1)`.
    pub boundary_fraction: f64,
    /// Whether the kill tears the WAL frame being written (detected by
    /// checksum at recovery and truncated away).
    pub torn: bool,
}

/// Perturbs base cluster traces with a seeded fault schedule.
///
/// The injector walks the base trace on a fixed tick grid, tracking which
/// VMs are live, and draws each fault process as a per-tick Bernoulli
/// trial at `rate * tick`. Everything downstream of the seed is
/// deterministic: the same `(config, base trace)` pair always produces
/// the same perturbed trace and fault list.
pub struct ChaosInjector {
    cfg: ChaosConfig,
}

impl ChaosInjector {
    /// An injector for a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::InvalidConfig`] if the configuration fails
    /// [`ChaosConfig::validate`].
    pub fn new(cfg: ChaosConfig) -> Result<Self, ChaosError> {
        cfg.validate()?;
        Ok(ChaosInjector { cfg })
    }

    /// The configuration driving this injector.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Perturbs `base` into a fault-laden trace, returning the merged
    /// trace plus the list of injected faults in time order.
    pub fn perturb(&self, base: &ClusterTrace) -> (ClusterTrace, Vec<InjectedFault>) {
        let cfg = &self.cfg;
        let duration = base.duration_hours;
        let dt = cfg.tick_minutes / 60.0;
        let ticks = (duration / dt).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // One optional total collapse, scheduled mid-run up front so the
        // draw does not depend on how the other processes fire.
        let mut collapse_at = if cfg.collapse_prob > 0.0 && rng.gen_bool(cfg.collapse_prob) {
            Some(rng.gen_range(0.25..0.75) * duration)
        } else {
            None
        };

        let mut live: BTreeSet<u64> = BTreeSet::new();
        let mut injected: Vec<ClusterEvent> = Vec::new();
        let mut faults: Vec<InjectedFault> = Vec::new();
        // Keep storage outages non-overlapping: the manager models the
        // outage as a boolean, so nested Start/Start/End/End would end it
        // early.
        let mut outage_until = f64::NEG_INFINITY;
        // The torn-write process draws from its own stream so switching it
        // on (the recovery tuning) never shifts the pre-existing fault
        // schedule of the same seed.
        let mut torn_rng = StdRng::seed_from_u64(cfg.seed ^ 0x70C4_E77E);
        // Torn *delta* frames likewise get their own stream, so the
        // zero-downtime tuning stays seed-compatible with `recovery`.
        let mut delta_rng = StdRng::seed_from_u64(cfg.seed ^ 0xDE17_A70F);
        let mut j = 0;

        let p_of = |rate: f64| (rate * dt).min(1.0);
        // The vendored rand only samples half-open ranges; degenerate
        // bounds (min == max) are legal configs and collapse to the bound.
        fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
            if hi > lo {
                rng.gen_range(lo..hi)
            } else {
                lo
            }
        }
        for tick in 0..ticks {
            let t = tick as f64 * dt;
            // Apply the base schedule up to this tick.
            while j < base.events.len() && base.events[j].time_hours <= t {
                let e = &base.events[j];
                match e.kind {
                    ClusterEventKind::Granted { .. } => {
                        live.insert(e.vm);
                    }
                    ClusterEventKind::Preempted => {
                        live.remove(&e.vm);
                    }
                    _ => {}
                }
                j += 1;
            }

            // Correlated preemption burst.
            if cfg.burst_rate_per_hour > 0.0 && rng.gen_bool(p_of(cfg.burst_rate_per_hour)) {
                let mut pool: Vec<u64> = live.iter().copied().collect();
                let hit = ((pool.len() as f64 * cfg.burst_fraction).round() as usize)
                    .clamp(usize::from(!pool.is_empty()), pool.len());
                for _ in 0..hit {
                    let vm = pool.swap_remove(rng.gen_range(0..pool.len()));
                    let with_notice =
                        cfg.eviction_notice_prob > 0.0 && rng.gen_bool(cfg.eviction_notice_prob);
                    let lead = cfg.notice_lead_minutes / 60.0;
                    let die_at = if with_notice { t + lead } else { t };
                    if die_at > duration {
                        continue;
                    }
                    if with_notice {
                        injected.push(ClusterEvent {
                            time_hours: t,
                            vm,
                            kind: ClusterEventKind::EvictionNotice { lead_hours: lead },
                        });
                    }
                    injected.push(ClusterEvent {
                        time_hours: die_at,
                        vm,
                        kind: ClusterEventKind::Preempted,
                    });
                    live.remove(&vm);
                    faults.push(InjectedFault {
                        time_hours: t,
                        vm,
                        fault: FaultKind::Preemption { with_notice },
                    });
                }
            }

            // Heartbeat silence, possibly flapping.
            if cfg.silence_rate_per_hour > 0.0
                && !live.is_empty()
                && rng.gen_bool(p_of(cfg.silence_rate_per_hour))
            {
                let pool: Vec<u64> = live.iter().copied().collect();
                let vm = pool[rng.gen_range(0..pool.len())];
                let minutes = uniform(&mut rng, cfg.silence_min_minutes, cfg.silence_max_minutes);
                let flapping = cfg.flap_prob > 0.0 && rng.gen_bool(cfg.flap_prob);
                let cycles = if flapping { cfg.flap_cycles } else { 1 };
                // A flapping episode alternates equal silence/recovery
                // segments inside the drawn window.
                let seg = minutes / 60.0 / (2 * cycles) as f64;
                for k in 0..cycles {
                    let start = t + (2 * k) as f64 * seg;
                    let end = start + seg;
                    if start > duration {
                        break;
                    }
                    injected.push(ClusterEvent {
                        time_hours: start,
                        vm,
                        kind: ClusterEventKind::SilenceStart,
                    });
                    if end <= duration {
                        injected.push(ClusterEvent {
                            time_hours: end,
                            vm,
                            kind: ClusterEventKind::SilenceEnd,
                        });
                    }
                }
                faults.push(InjectedFault {
                    time_hours: t,
                    vm,
                    fault: FaultKind::Silence { minutes, flapping },
                });
            }

            // Fail-stutter, optionally drifting worse mid-episode.
            if cfg.stutter_rate_per_hour > 0.0
                && !live.is_empty()
                && rng.gen_bool(p_of(cfg.stutter_rate_per_hour))
            {
                let pool: Vec<u64> = live.iter().copied().collect();
                let vm = pool[rng.gen_range(0..pool.len())];
                let factor = uniform(&mut rng, cfg.stutter_factor_min, cfg.stutter_factor_max);
                let len = cfg.stutter_minutes / 60.0;
                let drifting = cfg.stutter_drift > 1.0;
                injected.push(ClusterEvent {
                    time_hours: t,
                    vm,
                    kind: ClusterEventKind::StutterStart { factor },
                });
                if drifting && t + len / 2.0 <= duration {
                    injected.push(ClusterEvent {
                        time_hours: t + len / 2.0,
                        vm,
                        kind: ClusterEventKind::StutterStart {
                            factor: factor * cfg.stutter_drift,
                        },
                    });
                }
                if t + len <= duration {
                    injected.push(ClusterEvent {
                        time_hours: t + len,
                        vm,
                        kind: ClusterEventKind::StutterEnd,
                    });
                }
                faults.push(InjectedFault {
                    time_hours: t,
                    vm,
                    fault: FaultKind::Stutter { factor, drifting },
                });
            }

            // Checkpoint-storage outage.
            if cfg.outage_rate_per_hour > 0.0
                && t >= outage_until
                && rng.gen_bool(p_of(cfg.outage_rate_per_hour))
            {
                let len = cfg.outage_minutes / 60.0;
                outage_until = t + len;
                injected.push(ClusterEvent {
                    time_hours: t,
                    vm: u64::MAX,
                    kind: ClusterEventKind::StorageOutageStart,
                });
                if t + len <= duration {
                    injected.push(ClusterEvent {
                        time_hours: t + len,
                        vm: u64::MAX,
                        kind: ClusterEventKind::StorageOutageEnd,
                    });
                }
                faults.push(InjectedFault {
                    time_hours: t,
                    vm: u64::MAX,
                    fault: FaultKind::StorageOutage {
                        minutes: cfg.outage_minutes,
                    },
                });
            }

            // Stale/corrupt durable checkpoint.
            if cfg.corrupt_rate_per_hour > 0.0 && rng.gen_bool(p_of(cfg.corrupt_rate_per_hour)) {
                injected.push(ClusterEvent {
                    time_hours: t,
                    vm: u64::MAX,
                    kind: ClusterEventKind::CheckpointCorrupt,
                });
                faults.push(InjectedFault {
                    time_hours: t,
                    vm: u64::MAX,
                    fault: FaultKind::CheckpointCorrupt,
                });
            }

            // Torn (partial) durable checkpoint write.
            if cfg.torn_rate_per_hour > 0.0 && torn_rng.gen_bool(p_of(cfg.torn_rate_per_hour)) {
                let fraction = uniform(&mut torn_rng, 0.05, 0.95);
                injected.push(ClusterEvent {
                    time_hours: t,
                    vm: u64::MAX,
                    kind: ClusterEventKind::CheckpointTorn { fraction },
                });
                faults.push(InjectedFault {
                    time_hours: t,
                    vm: u64::MAX,
                    fault: FaultKind::CheckpointTorn { fraction },
                });
            }

            // Torn (partial) delta-checkpoint write.
            if cfg.delta_torn_rate_per_hour > 0.0
                && delta_rng.gen_bool(p_of(cfg.delta_torn_rate_per_hour))
            {
                let fraction = uniform(&mut delta_rng, 0.05, 0.95);
                injected.push(ClusterEvent {
                    time_hours: t,
                    vm: u64::MAX,
                    kind: ClusterEventKind::DeltaTorn { fraction },
                });
                faults.push(InjectedFault {
                    time_hours: t,
                    vm: u64::MAX,
                    fault: FaultKind::TornDelta { fraction },
                });
            }

            // Planner-infeasible capacity collapse.
            if let Some(at) = collapse_at {
                if t >= at {
                    collapse_at = None;
                    let victims = live.len();
                    for vm in std::mem::take(&mut live) {
                        injected.push(ClusterEvent {
                            time_hours: t,
                            vm,
                            kind: ClusterEventKind::Preempted,
                        });
                    }
                    faults.push(InjectedFault {
                        time_hours: t,
                        vm: u64::MAX,
                        fault: FaultKind::CapacityCollapse { victims },
                    });
                }
            }
        }

        injected.sort_by(|a, b| a.time_hours.total_cmp(&b.time_hours));
        let mut merged = Vec::with_capacity(base.events.len() + injected.len());
        let (mut bi, mut ii) = (0, 0);
        while bi < base.events.len() || ii < injected.len() {
            let take_base = ii >= injected.len()
                || (bi < base.events.len()
                    && base.events[bi].time_hours <= injected[ii].time_hours);
            if take_base {
                merged.push(base.events[bi]);
                bi += 1;
            } else {
                merged.push(injected[ii]);
                ii += 1;
            }
        }
        let trace = ClusterTrace::scripted(merged, duration)
            .expect("merging two time-ordered streams preserves order");
        (trace, faults)
    }

    /// Like [`ChaosInjector::perturb`], additionally reporting each
    /// injected fault as an [`EventKind::FaultInjected`] on `bus`.
    pub fn perturb_observed(
        &self,
        base: &ClusterTrace,
        bus: &mut EventBus,
    ) -> (ClusterTrace, Vec<InjectedFault>) {
        let (trace, faults) = self.perturb(base);
        for f in &faults {
            bus.emit_with(|| {
                Event::chaos(
                    f.time_hours * 3600.0,
                    EventKind::FaultInjected {
                        fault: f.fault.label().to_string(),
                        vm: f.vm,
                    },
                )
            });
        }
        (trace, faults)
    }

    /// Draws the control-plane kill plan for this configuration, or
    /// `None` when `crash_prob` draws no kill.
    ///
    /// The plan comes from an RNG stream keyed off `seed ^ 0x5EC0_7E55`,
    /// fully independent of the fault schedule: enabling or disabling
    /// crashes never shifts the perturbed trace.
    pub fn crash_plan(&self) -> Option<CrashPlan> {
        let cfg = &self.cfg;
        if cfg.crash_prob <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EC0_7E55);
        if !rng.gen_bool(cfg.crash_prob.min(1.0)) {
            return None;
        }
        let torn = cfg.crash_torn_prob > 0.0 && rng.gen_bool(cfg.crash_torn_prob.min(1.0));
        Some(CrashPlan {
            boundary_fraction: rng.gen_range(0.0..1.0),
            torn,
        })
    }

    /// Draws the "killed during migration" plan for this configuration:
    /// `Some(pick)` kills the control plane while a live-migration WAL
    /// frame is mid-write, with `pick` in `[0, 1)` selecting which of the
    /// run's migrations gets torn (the recovery harness maps the fraction
    /// onto the concrete migration list it captured). `None` when
    /// `migration_kill_prob` draws no kill.
    ///
    /// The draw comes from an RNG stream keyed off `seed ^ 0x4B17_7D4D`,
    /// fully independent of the fault schedule and the crash plan:
    /// enabling migration kills never shifts either.
    pub fn migration_kill(&self) -> Option<f64> {
        let cfg = &self.cfg;
        if cfg.migration_kill_prob <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4B17_7D4D);
        if !rng.gen_bool(cfg.migration_kill_prob.min(1.0)) {
            return None;
        }
        Some(rng.gen_range(0.0..1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ClusterTrace {
        ClusterTrace::generate_spot_1gpu(40, 60, 8.0, 5.0, 7)
    }

    #[test]
    fn same_seed_same_schedule() {
        let inj = ChaosInjector::new(ChaosConfig::harsh(11)).unwrap();
        let b = base();
        let (t1, f1) = inj.perturb(&b);
        let (t2, f2) = inj.perturb(&b);
        assert_eq!(t1, t2);
        assert_eq!(f1, f2);
        let other = ChaosInjector::new(ChaosConfig::harsh(12)).unwrap();
        assert_ne!(other.perturb(&b).1, f1, "seeds must matter");
    }

    #[test]
    fn quiet_config_is_the_identity() {
        let inj = ChaosInjector::new(ChaosConfig::quiet(3)).unwrap();
        let b = base();
        let (t, faults) = inj.perturb(&b);
        assert_eq!(t, b);
        assert!(faults.is_empty());
    }

    #[test]
    fn perturbed_trace_is_ordered_and_bounded() {
        for seed in 0..20 {
            let inj = ChaosInjector::new(ChaosConfig::from_seed(seed)).unwrap();
            let b = base();
            let (t, faults) = inj.perturb(&b);
            for w in t.events.windows(2) {
                assert!(w[0].time_hours <= w[1].time_hours, "seed {seed}");
            }
            for e in &t.events {
                assert!(e.time_hours >= 0.0 && e.time_hours <= t.duration_hours);
            }
            for f in &faults {
                assert!(f.time_hours >= 0.0 && f.time_hours <= t.duration_hours);
            }
        }
    }

    #[test]
    fn harsh_config_exercises_every_fault_class() {
        let inj = ChaosInjector::new(ChaosConfig::harsh(5)).unwrap();
        let (_, faults) = inj.perturb(&base());
        let labels: std::collections::BTreeSet<&str> =
            faults.iter().map(|f| f.fault.label()).collect();
        for want in [
            "silence",
            "stutter_drifting",
            "storage_outage",
            "checkpoint_corrupt",
            "capacity_collapse",
        ] {
            assert!(labels.contains(want), "missing {want}: {labels:?}");
        }
        assert!(
            labels.iter().any(|l| l.starts_with("preemption")),
            "missing preemptions: {labels:?}"
        );
    }

    #[test]
    fn storage_outages_never_overlap() {
        let cfg = ChaosConfig {
            outage_rate_per_hour: 10.0,
            outage_minutes: 30.0,
            ..ChaosConfig::harsh(17)
        };
        let inj = ChaosInjector::new(cfg).unwrap();
        let (t, _) = inj.perturb(&base());
        let mut open = false;
        for e in &t.events {
            match e.kind {
                ClusterEventKind::StorageOutageStart => {
                    assert!(!open, "nested outage at {}", e.time_hours);
                    open = true;
                }
                ClusterEventKind::StorageOutageEnd => {
                    assert!(open, "unmatched end at {}", e.time_hours);
                    open = false;
                }
                _ => {}
            }
        }
    }

    #[test]
    fn burst_victims_are_live_vms() {
        let inj = ChaosInjector::new(ChaosConfig::harsh(23)).unwrap();
        let b = base();
        let (_, faults) = inj.perturb(&b);
        let all_vms: BTreeSet<u64> = b
            .events
            .iter()
            .filter(|e| matches!(e.kind, ClusterEventKind::Granted { .. }))
            .map(|e| e.vm)
            .collect();
        for f in &faults {
            if matches!(f.fault, FaultKind::Preemption { .. }) {
                assert!(all_vms.contains(&f.vm), "{f:?} targets an unknown VM");
            }
        }
    }

    #[test]
    fn observed_perturbation_reports_faults_on_the_bus() {
        use varuna_obs::{Source, VecSink};
        let inj = ChaosInjector::new(ChaosConfig::harsh(31)).unwrap();
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        let (_, faults) = inj.perturb_observed(&base(), &mut bus);
        let events = sink.take();
        assert_eq!(events.len(), faults.len());
        for (e, f) in events.iter().zip(&faults) {
            assert_eq!(e.source, Source::Chaos);
            assert!((e.t_sim - f.time_hours * 3600.0).abs() < 1e-9);
            match &e.kind {
                EventKind::FaultInjected { fault, vm } => {
                    assert_eq!(fault, f.fault.label());
                    assert_eq!(*vm, f.vm);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn recovery_tuning_adds_control_plane_faults_without_shifting_the_rest() {
        for seed in 0..8 {
            let plain = ChaosInjector::new(ChaosConfig::from_seed(seed)).unwrap();
            let rec = ChaosInjector::new(ChaosConfig::recovery(seed)).unwrap();
            let b = base();
            let (_, f_plain) = plain.perturb(&b);
            let (_, f_rec) = rec.perturb(&b);
            // Dropping the torn-write faults recovers the plain schedule
            // exactly: the new process consumes RNG only when it fires.
            let without_torn: Vec<InjectedFault> = f_rec
                .iter()
                .copied()
                .filter(|f| !matches!(f.fault, FaultKind::CheckpointTorn { .. }))
                .collect();
            assert_eq!(without_torn, f_plain, "seed {seed}");
            // crash_prob = 1.0 guarantees a kill plan, independent of the
            // fault schedule, and the plain tuning draws none.
            let plan = rec.crash_plan().expect("recovery tuning plans a kill");
            assert!((0.0..1.0).contains(&plan.boundary_fraction));
            assert_eq!(rec.crash_plan(), Some(plan), "plan must be deterministic");
            assert_eq!(plain.crash_plan(), None);
        }
    }

    #[test]
    fn zero_downtime_tuning_adds_delta_faults_without_shifting_the_rest() {
        let mut any_migration_kill = false;
        for seed in 0..8 {
            let rec = ChaosInjector::new(ChaosConfig::recovery(seed)).unwrap();
            let zd = ChaosInjector::new(ChaosConfig::zero_downtime(seed)).unwrap();
            let b = base();
            let (_, f_rec) = rec.perturb(&b);
            let (_, f_zd) = zd.perturb(&b);
            // Dropping the torn-delta faults recovers the recovery-tuning
            // schedule exactly: the delta process has its own RNG stream.
            let without_delta: Vec<InjectedFault> = f_zd
                .iter()
                .copied()
                .filter(|f| !matches!(f.fault, FaultKind::TornDelta { .. }))
                .collect();
            assert_eq!(without_delta, f_rec, "seed {seed}");
            assert!(
                f_zd.iter()
                    .any(|f| matches!(f.fault, FaultKind::TornDelta { .. })),
                "seed {seed} drew no torn delta at rate 0.3/h over 60h"
            );
            // The migration-kill roll is deterministic, in range, and
            // absent from tunings that disable it.
            let roll = zd.migration_kill();
            assert_eq!(zd.migration_kill(), roll, "roll must be deterministic");
            if let Some(pick) = roll {
                assert!((0.0..1.0).contains(&pick));
            }
            assert_eq!(rec.migration_kill(), None);
        }
        // The roll is keyed off its own stream, so which seeds fire is
        // fixed; sweep enough of them to see the process alive at 0.25.
        for seed in 0..32 {
            let zd = ChaosInjector::new(ChaosConfig::zero_downtime(seed)).unwrap();
            if zd.migration_kill().is_some() {
                any_migration_kill = true;
            }
        }
        assert!(
            any_migration_kill,
            "no seed in 0..32 rolled a migration kill at prob 0.25"
        );
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut cfg = ChaosConfig::default_tuning(0);
        cfg.burst_fraction = 2.0;
        assert!(matches!(
            ChaosInjector::new(cfg),
            Err(ChaosError::InvalidConfig(_))
        ));
    }
}
