//! Per-job fleet specifications.

use serde::{Deserialize, Serialize};
use varuna_models::TransformerConfig;

use crate::error::FleetError;

/// One training job submitted to the fleet.
///
/// The spec captures everything the arbiter needs to reason about the job
/// without planning it: how much capacity it can use (`demand_gpus`), the
/// minimum it needs to make acceptable progress (`floor_gpus`, the
/// deadline / minimum-throughput floor expressed in GPUs), and its share
/// `weight` relative to the rest of the fleet. The training shape itself
/// (`model`, `m_total`, `micro`) is handed to the job's own
/// [`varuna::Manager`], which keeps full authority over *how* the job runs
/// on whatever capacity the arbiter grants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable job name (unique within the fleet).
    pub name: String,
    /// The model being trained.
    pub model: TransformerConfig,
    /// Fixed effective batch size (mini-batches preserve this across
    /// morphs, paper §4.2).
    pub m_total: usize,
    /// Micro-batch size handed to the planner.
    pub micro: usize,
    /// Fair-share weight (> 0): a weight-2 job is entitled to twice the
    /// capacity of a weight-1 job under contention.
    pub weight: f64,
    /// Maximum GPUs the job can productively use; the arbiter never
    /// allocates beyond this.
    pub demand_gpus: usize,
    /// Minimum-throughput floor in GPUs. When the job's allocation sits
    /// below this floor the job counts as starved: the arbiter boosts it
    /// once the starvation bound expires, and the fallback provisioner
    /// (under [`crate::ProvisionPolicy::SpotWithFallback`]) tops it up
    /// with on-demand capacity. Zero disables the floor.
    pub floor_gpus: usize,
}

impl JobSpec {
    /// Validates the spec's static invariants.
    pub fn validate(&self) -> Result<(), FleetError> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(FleetError::InvalidSpec {
                job: self.name.clone(),
                reason: format!("weight must be finite and positive, got {}", self.weight),
            });
        }
        if self.demand_gpus == 0 {
            return Err(FleetError::InvalidSpec {
                job: self.name.clone(),
                reason: "demand_gpus must be at least 1".to_string(),
            });
        }
        if self.floor_gpus > self.demand_gpus {
            return Err(FleetError::InvalidSpec {
                job: self.name.clone(),
                reason: format!(
                    "floor_gpus ({}) exceeds demand_gpus ({})",
                    self.floor_gpus, self.demand_gpus
                ),
            });
        }
        if self.m_total == 0 || self.micro == 0 {
            return Err(FleetError::InvalidSpec {
                job: self.name.clone(),
                reason: "m_total and micro must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use varuna_models::ModelZoo;

    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "j0".to_string(),
            model: ModelZoo::gpt2_2_5b(),
            m_total: 8192,
            micro: 4,
            weight: 1.0,
            demand_gpus: 32,
            floor_gpus: 8,
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.weight = 0.0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.weight = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.demand_gpus = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.floor_gpus = 64;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.micro = 0;
        assert!(s.validate().is_err());
    }
}
