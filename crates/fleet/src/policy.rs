//! Provisioning policy: where a job's GPUs may come from.

use serde::{Deserialize, Serialize};

/// How the fleet sources capacity for its jobs.
///
/// The cost story of the paper (Table 1: spot VMs are ~4-5x cheaper per
/// GPU-hour than dedicated ones) plays out across these three policies:
/// spot-only is cheapest per GPU-hour but loses goodput whenever the
/// market starves a job below its floor; on-demand-only never starves but
/// pays the dedicated rate for every GPU-hour; spot-with-fallback rides
/// the spot market and tops jobs up to their floor with on-demand
/// capacity only while the market leaves them short.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisionPolicy {
    /// Jobs run exclusively on arbitrated spot leases; a starved job
    /// waits for the arbiter's starvation boost.
    SpotOnly,
    /// Jobs ignore the spot market entirely and run on dedicated
    /// on-demand capacity sized to their full demand.
    OnDemandOnly,
    /// Jobs ride the spot market, and whenever a job's spot allocation
    /// falls below its [`crate::JobSpec::floor_gpus`] the provisioner
    /// rents just enough on-demand GPUs (at the dedicated rate) to reach
    /// the floor, releasing them as soon as spot capacity recovers.
    SpotWithFallback,
}

impl ProvisionPolicy {
    /// Short lowercase label used in reports and tables.
    pub fn label(&self) -> &'static str {
        match self {
            ProvisionPolicy::SpotOnly => "spot_only",
            ProvisionPolicy::OnDemandOnly => "on_demand_only",
            ProvisionPolicy::SpotWithFallback => "spot_with_fallback",
        }
    }
}
