#![warn(missing_docs)]
//! Fleet control plane: many Varuna jobs, one shared spot market.
//!
//! The paper trains *one* job on leftover spot capacity. This crate
//! scales that story out: N concurrent training jobs compete for one
//! shared, contended spot market, and a global **arbiter** owns the
//! capacity they fight over. Each job keeps its own [`varuna::Manager`]
//! (planning, morphing, checkpoint pricing, degraded-mode recovery,
//! optionally the simulator-in-the-loop plan oracle) while the fleet
//! layer decides *how many* GPUs each job holds at every instant:
//!
//! - [`arbiter`] — weighted max-min fair shares with a configurable
//!   starvation bound; only jobs above their entitlement are
//!   preemptible by the arbiter,
//! - [`policy`] — where GPUs come from: spot only, on-demand only, or
//!   spot with on-demand fallback up to each job's throughput floor,
//! - [`sim`] — the deterministic discrete-event fleet loop over a
//!   shared [`varuna_cluster::trace::ClusterTrace`], driving each
//!   manager through [`varuna::Manager::on_external_capacity`],
//! - [`chaos`] — fleet-level fault scenarios (correlated preemption
//!   bursts across jobs) reusing the `varuna-chaos` injector on the
//!   shared market,
//! - [`wal`] — the combined write-ahead log: fleet allocation decisions
//!   and every job manager's plan-attempt records in one shared,
//!   sequence-numbered stream, so [`sim::recover_fleet`] rebuilds a
//!   killed control plane exactly from the surviving log prefix.
//!
//! Everything is deterministic: same fleet config + same market trace ⇒
//! byte-identical event streams and digests, so fleet runs regress like
//! golden tests.
//!
//! # Example
//!
//! ```
//! use varuna_cluster::trace::ClusterTrace;
//! use varuna_fleet::{FleetConfig, JobSpec, ProvisionPolicy};
//! use varuna_models::ModelZoo;
//!
//! let job = |name: &str| JobSpec {
//!     name: name.to_string(),
//!     model: ModelZoo::gpt2_355m(),
//!     m_total: 512,
//!     micro: 4,
//!     weight: 1.0,
//!     demand_gpus: 8,
//!     floor_gpus: 2,
//! };
//! let cfg = FleetConfig::new(vec![job("a"), job("b")])
//!     .with_policy(ProvisionPolicy::SpotWithFallback);
//! let market = ClusterTrace::generate_spot_1gpu(12, 16, 2.0, 15.0, 7);
//! let outcome = varuna_fleet::run_fleet(&cfg, &market).unwrap();
//! assert_eq!(outcome.capacity_violations, 0);
//! assert_eq!(outcome.fairness_violations, 0);
//! ```

pub mod arbiter;
pub mod chaos;
pub mod error;
pub mod job;
pub mod policy;
pub mod sim;
pub mod wal;

pub use arbiter::{fair_shares, ArbiterConfig, JobDemand};
pub use chaos::{run_fleet_chaos, FleetChaosRun};
pub use error::FleetError;
pub use job::JobSpec;
pub use policy::ProvisionPolicy;
pub use sim::{
    recover_fleet, run_fleet, run_fleet_traced, run_fleet_walled, FleetConfig, FleetOutcome,
    FleetRun, FleetStreamCheck, JobOutcome, StreamCheck,
};
pub use wal::{FleetWal, FleetWalRecord, JobWalView};
