//! Fleet-level chaos: adversarial fault schedules against the arbiter.
//!
//! The single-job chaos harness (`varuna-chaos`) perturbs a market trace
//! and replays it through one manager. At fleet scale the interesting
//! failure modes are *correlated*: a preemption burst does not hit one
//! job, it tears VMs out of many jobs' leases in the same instant, and
//! the arbiter must rebalance the survivors without breaking capacity or
//! fairness invariants. [`run_fleet_chaos`] reuses the existing
//! [`ChaosInjector`] on the *shared* market trace — so every injected
//! burst lands across whatever jobs happen to hold the victim VMs — and
//! then checks the fleet-level invariants on the outcome.

use varuna_chaos::{ChaosConfig, ChaosError, ChaosInjector, InjectedFault};
use varuna_cluster::trace::ClusterTrace;
use varuna_obs::EventKind;

use crate::error::FleetError;
use crate::policy::ProvisionPolicy;
use crate::sim::{run_fleet_traced, FleetConfig, FleetOutcome};

/// One fleet chaos run's verdict.
#[derive(Debug, Clone)]
pub struct FleetChaosRun {
    /// The injector seed.
    pub seed: u64,
    /// Faults injected into the shared market.
    pub faults: Vec<InjectedFault>,
    /// The fleet outcome under the perturbed market.
    pub outcome: FleetOutcome,
    /// Human-readable invariant violations (empty = clean).
    pub violations: Vec<String>,
}

impl FleetChaosRun {
    /// Whether every fleet invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Perturbs the shared market with `chaos` and runs the fleet on the
/// perturbed trace, checking fleet-level invariants:
///
/// - no round leased more GPUs than the market held,
/// - no arbiter revocation hit a job at or below its entitlement,
/// - every aggregate number came out finite,
/// - per-job degraded time never exceeds the trace duration,
/// - fallback provisioning is honest: no on-demand top-up under
///   [`ProvisionPolicy::SpotOnly`], and under
///   [`ProvisionPolicy::SpotWithFallback`] no fault burst ever pushes a
///   job's on-demand capacity past its floor.
pub fn run_fleet_chaos(
    cfg: &FleetConfig,
    base_market: &ClusterTrace,
    chaos: &ChaosConfig,
) -> Result<FleetChaosRun, FleetError> {
    let injector =
        ChaosInjector::new(chaos.clone()).map_err(|e: ChaosError| FleetError::InvalidConfig {
            reason: format!("chaos config: {e}"),
        })?;
    let (market, faults) = injector.perturb(base_market);
    let run = run_fleet_traced(cfg, &market)?;

    let mut violations = Vec::new();
    // Fallback honesty, checked on what was actually emitted: on-demand
    // top-ups exist only where the policy allows and are bounded by the
    // per-job floor (SpotWithFallback) or demand (OnDemandOnly).
    for e in &run.fleet_events {
        if let EventKind::FallbackProvisioned {
            job,
            total_on_demand,
            ..
        } = e.kind
        {
            let bound = match cfg.policy {
                ProvisionPolicy::SpotOnly => 0,
                ProvisionPolicy::SpotWithFallback => cfg.jobs[job as usize].floor_gpus,
                ProvisionPolicy::OnDemandOnly => cfg.jobs[job as usize].demand_gpus,
            };
            if total_on_demand > bound {
                violations.push(format!(
                    "job {job} holds {total_on_demand} on-demand GPUs, bound {bound} \
                     under {:?}",
                    cfg.policy
                ));
            }
        }
    }
    let o = run.outcome;
    if o.capacity_violations > 0 {
        violations.push(format!(
            "{} rounds leased beyond market capacity",
            o.capacity_violations
        ));
    }
    if o.fairness_violations > 0 {
        violations.push(format!(
            "{} arbiter revocations hit an under-share job",
            o.fairness_violations
        ));
    }
    if !o.dollars.is_finite() || !o.tokens.is_finite() || !o.jain_fairness.is_finite() {
        violations.push("non-finite aggregate metric".to_string());
    }
    for j in &o.per_job {
        if j.degraded_hours > market.duration_hours + 1e-9 {
            violations.push(format!(
                "job `{}` degraded {}h of a {}h trace",
                j.name, j.degraded_hours, market.duration_hours
            ));
        }
        if !j.dollars.is_finite() || !j.examples.is_finite() {
            violations.push(format!("job `{}` has a non-finite metric", j.name));
        }
    }

    Ok(FleetChaosRun {
        seed: chaos.seed,
        faults,
        outcome: o,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use varuna_cluster::trace::ClusterTrace;
    use varuna_models::ModelZoo;

    use super::*;
    use crate::job::JobSpec;
    use crate::policy::ProvisionPolicy;

    fn fleet() -> FleetConfig {
        let job = |name: &str, demand: usize| JobSpec {
            name: name.to_string(),
            model: ModelZoo::gpt2_355m(),
            m_total: 512,
            micro: 4,
            weight: 1.0,
            demand_gpus: demand,
            floor_gpus: demand / 4,
        };
        FleetConfig::new(vec![job("a", 8), job("b", 8), job("c", 4)])
            .with_policy(ProvisionPolicy::SpotOnly)
    }

    #[test]
    fn chaos_bursts_leave_fleet_invariants_intact() {
        let base = ClusterTrace::generate_spot_1gpu(16, 16, 2.0, 15.0, 3);
        let run = run_fleet_chaos(&fleet(), &base, &ChaosConfig::from_seed(5)).unwrap();
        assert!(run.is_clean(), "violations: {:?}", run.violations);
        assert!(
            !run.faults.is_empty(),
            "the injector should schedule faults"
        );
    }

    #[test]
    fn fleet_chaos_is_deterministic_per_seed() {
        let base = ClusterTrace::generate_spot_1gpu(12, 12, 1.5, 15.0, 9);
        let chaos = ChaosConfig::from_seed(17);
        let a = run_fleet_chaos(&fleet(), &base, &chaos).unwrap();
        let b = run_fleet_chaos(&fleet(), &base, &chaos).unwrap();
        assert_eq!(a.outcome.digest, b.outcome.digest);
        assert_eq!(a.faults.len(), b.faults.len());
    }

    #[test]
    fn fallback_fleets_survive_bursts_without_exceeding_floors() {
        // An adversarial burst schedule under SpotWithFallback: fallback
        // provisioning must kick in (the bursts strip jobs below their
        // floors) yet never push any job past its floor.
        let base = ClusterTrace::generate_spot_1gpu(16, 16, 2.0, 15.0, 3);
        let cfg = fleet().with_policy(ProvisionPolicy::SpotWithFallback);
        let chaos = ChaosConfig {
            burst_rate_per_hour: 2.0,
            burst_fraction: 0.6,
            ..ChaosConfig::from_seed(5)
        };
        let run = run_fleet_chaos(&cfg, &base, &chaos).unwrap();
        assert!(run.is_clean(), "violations: {:?}", run.violations);
        assert!(
            run.outcome
                .per_job
                .iter()
                .any(|j| j.on_demand_gpu_hours > 0.0),
            "bursts below the floor must trigger fallback: {:?}",
            run.outcome.per_job
        );
    }

    #[test]
    fn fallback_chaos_is_deterministic_per_seed() {
        let base = ClusterTrace::generate_spot_1gpu(12, 12, 1.5, 15.0, 9);
        let cfg = fleet().with_policy(ProvisionPolicy::SpotWithFallback);
        let chaos = ChaosConfig::from_seed(17);
        let a = run_fleet_chaos(&cfg, &base, &chaos).unwrap();
        let b = run_fleet_chaos(&cfg, &base, &chaos).unwrap();
        assert!(a.is_clean(), "violations: {:?}", a.violations);
        assert_eq!(a.outcome.digest, b.outcome.digest);
    }
}
