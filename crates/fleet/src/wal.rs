//! The fleet's combined write-ahead log.
//!
//! One shared, sequence-numbered log multiplexes every externally-visible
//! fleet control decision — arbiter allocations, preemptions, on-demand
//! fallback provisioning — with each job manager's own plan-attempt
//! records ([`varuna::WalRecord`]), tagged by job index. Killing the
//! fleet control plane at any record boundary and recovering from the
//! surviving prefix reproduces the uninterrupted run exactly, because
//! [`crate::sim::run_fleet_walled`] replays pending records instead of
//! recomputing them and the loop itself is deterministic.

use serde::{Deserialize, Serialize};
use varuna::wal::{is_plan_attempt_record, Wal};
use varuna::{WalIo, WalRecord};

/// One fleet control decision, logged before its event is emitted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FleetWalRecord {
    /// The arbiter settled a job's capacity (logged when it changed).
    Allocation {
        /// Decision time, hours since trace start.
        t_hours: f64,
        /// Job index in submission order.
        job: u64,
        /// Spot GPUs leased to the job.
        spot_gpus: usize,
        /// On-demand GPUs provisioned for the job.
        on_demand_gpus: usize,
        /// Instantaneous market capacity, GPUs.
        market_gpus: usize,
    },
    /// A job lost GPUs to the market or an arbiter revocation.
    Preempted {
        /// Decision time, hours since trace start.
        t_hours: f64,
        /// Job index in submission order.
        job: u64,
        /// GPUs revoked in this episode.
        gpus_revoked: usize,
        /// Why: `market`, `fair_share`, or `starvation_boost`.
        reason: String,
    },
    /// On-demand fallback topped a job up toward its floor.
    Fallback {
        /// Decision time, hours since trace start.
        t_hours: f64,
        /// Job index in submission order.
        job: u64,
        /// GPUs added by this provisioning step.
        gpus: usize,
        /// Total on-demand GPUs the job now holds.
        total_on_demand: usize,
    },
    /// One job-manager plan-attempt record, tagged with its job.
    Job {
        /// Job index in submission order.
        job: u64,
        /// The manager's own decision record.
        rec: WalRecord,
    },
}

impl FleetWalRecord {
    /// The decision's timestamp, hours since trace start.
    pub fn t_hours(&self) -> f64 {
        match self {
            FleetWalRecord::Allocation { t_hours, .. }
            | FleetWalRecord::Preempted { t_hours, .. }
            | FleetWalRecord::Fallback { t_hours, .. } => *t_hours,
            FleetWalRecord::Job { rec, .. } => rec.t_hours(),
        }
    }
}

/// The fleet control plane's write-ahead log.
pub type FleetWal = Wal<FleetWalRecord>;

/// A per-job [`WalIo`] view into the combined fleet log: replay consumes
/// only this job's plan-attempt records, and appended decisions are
/// wrapped in [`FleetWalRecord::Job`] so many jobs interleave into one
/// shared sequence.
pub struct JobWalView<'w> {
    /// The shared fleet log.
    pub wal: &'w mut FleetWal,
    /// The job this view belongs to.
    pub job: u64,
}

impl WalIo for JobWalView<'_> {
    fn replay_next_attempt(&mut self) -> Option<WalRecord> {
        let job = self.job;
        self.wal
            .replay_next_if(|r| {
                matches!(r, FleetWalRecord::Job { job: j, rec } if *j == job && is_plan_attempt_record(rec))
            })
            .map(|r| match r {
                FleetWalRecord::Job { rec, .. } => rec,
                other => unreachable!("predicate admits only Job records, got {other:?}"),
            })
    }

    fn append_record(&mut self, record: WalRecord) {
        self.wal.append(FleetWalRecord::Job {
            job: self.job,
            rec: record,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(t: f64, job: u64) -> FleetWalRecord {
        FleetWalRecord::Allocation {
            t_hours: t,
            job,
            spot_gpus: 4,
            on_demand_gpus: 0,
            market_gpus: 8,
        }
    }

    #[test]
    fn fleet_records_round_trip_through_bytes() {
        let mut wal = FleetWal::new();
        wal.append(alloc(0.0, 0));
        wal.append(FleetWalRecord::Job {
            job: 1,
            rec: WalRecord::LostWork {
                t_hours: 0.5,
                minibatches: 3,
                seconds: 12.0,
            },
        });
        wal.append(FleetWalRecord::Preempted {
            t_hours: 1.0,
            job: 0,
            gpus_revoked: 2,
            reason: "market".to_string(),
        });
        let loaded = FleetWal::from_bytes(&wal.to_bytes()).unwrap();
        assert_eq!(loaded.records(), wal.records());
        assert!(loaded.torn().is_none());
    }

    #[test]
    fn job_view_replays_only_its_own_attempt_records() {
        let mut wal = FleetWal::new();
        let lost = |job| FleetWalRecord::Job {
            job,
            rec: WalRecord::LostWork {
                t_hours: 0.25,
                minibatches: 1,
                seconds: 4.0,
            },
        };
        wal.append(lost(0));
        wal.append(lost(1));
        let mut wal = FleetWal::from_bytes(&wal.to_bytes()).unwrap();

        // Job 1's view does not consume job 0's pending record.
        assert!(JobWalView {
            wal: &mut wal,
            job: 1
        }
        .replay_next_attempt()
        .is_none());
        assert!(JobWalView {
            wal: &mut wal,
            job: 0
        }
        .replay_next_attempt()
        .is_some());
        assert!(JobWalView {
            wal: &mut wal,
            job: 1
        }
        .replay_next_attempt()
        .is_some());
        assert_eq!(wal.remaining(), 0);
    }

    #[test]
    fn job_view_appends_tagged_records() {
        let mut wal = FleetWal::new();
        JobWalView {
            wal: &mut wal,
            job: 7,
        }
        .append_record(WalRecord::DegradedEnter {
            t_hours: 2.0,
            gpus: 0,
            reason: "test".to_string(),
        });
        assert!(
            matches!(wal.records(), [FleetWalRecord::Job { job: 7, .. }]),
            "{:?}",
            wal.records()
        );
        assert!((wal.records()[0].t_hours() - 2.0).abs() < 1e-12);
    }
}
