//! The capacity arbiter: weighted fair shares with a starvation bound.
//!
//! The arbiter owns the shared market. Every arbitration round it
//! computes, from the instantaneous market capacity and each job's
//! (weight, demand, floor, starvation) state, the exact number of spot
//! GPUs each job is entitled to, and the fleet loop reconciles leases to
//! those targets — revoking only from jobs above their entitlement
//! (preemption-of-the-preemptible) and granting freed VMs to jobs below
//! it.
//!
//! Fairness is weighted max-min (water-filling): capacity is handed out
//! one GPU at a time to the job with the smallest `allocation / weight`,
//! skipping jobs already at their demand. The discrete formulation makes
//! the integer allocation exact (no largest-remainder rounding step) and
//! trivially deterministic: ties break toward the lower job index.
//!
//! Starvation is bounded: a job that has sat below its floor for longer
//! than [`ArbiterConfig::starvation_bound_hours`] is *boosted* — the next
//! round seeds its floor allocation before the water-filling pass, so
//! heavy jobs cannot park a light job below its floor indefinitely.

use serde::{Deserialize, Serialize};

/// Arbiter tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// How long a job may sit below its floor before the arbiter boosts
    /// it to the front of the allocation queue, hours.
    pub starvation_bound_hours: f64,
}

impl ArbiterConfig {
    /// Defaults: boost a starved job after 30 minutes below its floor.
    pub fn default_tuning() -> Self {
        ArbiterConfig {
            starvation_bound_hours: 0.5,
        }
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        Self::default_tuning()
    }
}

/// One job's inputs to an arbitration round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDemand {
    /// Fair-share weight (> 0).
    pub weight: f64,
    /// Maximum GPUs the job can use.
    pub demand: usize,
    /// Minimum-throughput floor in GPUs (0 disables).
    pub floor: usize,
    /// Whether the job has exceeded the starvation bound and gets its
    /// floor seeded before the fair pass.
    pub boosted: bool,
}

/// Computes each job's spot-GPU entitlement for one arbitration round.
///
/// Guarantees, by construction:
///
/// - `sum(result) <= capacity` — the arbiter never over-commits the
///   market;
/// - `result[i] <= jobs[i].demand` for every job;
/// - boosted jobs receive `min(floor, demand)` before any fair-share
///   GPU is handed out (in job order, while capacity lasts);
/// - the remainder is weighted max-min fair: no job can gain a GPU
///   except by taking one from a job with a smaller weighted allocation.
///
/// Deterministic: same inputs, same outputs, ties to the lower index.
pub fn fair_shares(capacity: usize, jobs: &[JobDemand]) -> Vec<usize> {
    let mut alloc = vec![0usize; jobs.len()];
    let mut left = capacity;

    // Pass 1: starvation boost — seed each boosted job's floor.
    for (i, j) in jobs.iter().enumerate() {
        if j.boosted {
            let want = j.floor.min(j.demand).min(left);
            alloc[i] = want;
            left -= want;
        }
    }

    // Pass 2: weighted max-min water-filling over the remainder. One GPU
    // per step to the unsaturated job with the smallest weighted
    // allocation; O(capacity * jobs), exact on integers.
    while left > 0 {
        let mut best: Option<usize> = None;
        for (i, j) in jobs.iter().enumerate() {
            if alloc[i] >= j.demand {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let wi = alloc[i] as f64 / jobs[i].weight;
                    let wb = alloc[b] as f64 / jobs[b].weight;
                    if wi < wb {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            Some(i) => {
                alloc[i] += 1;
                left -= 1;
            }
            // Every job is saturated; leftover capacity stays free.
            None => break,
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(weight: f64, demand: usize, floor: usize, boosted: bool) -> JobDemand {
        JobDemand {
            weight,
            demand,
            floor,
            boosted,
        }
    }

    #[test]
    fn equal_weights_split_evenly() {
        let shares = fair_shares(12, &[job(1.0, 10, 0, false); 3]);
        assert_eq!(shares, vec![4, 4, 4]);
    }

    #[test]
    fn weights_tilt_the_split() {
        let shares = fair_shares(12, &[job(2.0, 12, 0, false), job(1.0, 12, 0, false)]);
        assert_eq!(shares, vec![8, 4]);
    }

    #[test]
    fn demand_caps_redistribute_to_the_hungry() {
        let shares = fair_shares(12, &[job(1.0, 2, 0, false), job(1.0, 12, 0, false)]);
        assert_eq!(shares, vec![2, 10]);
    }

    #[test]
    fn never_exceeds_capacity_or_demand() {
        let jobs = [
            job(3.0, 7, 2, false),
            job(1.0, 40, 8, true),
            job(0.5, 3, 1, false),
        ];
        for cap in 0..60 {
            let shares = fair_shares(cap, &jobs);
            assert!(shares.iter().sum::<usize>() <= cap);
            for (s, j) in shares.iter().zip(jobs.iter()) {
                assert!(*s <= j.demand);
            }
        }
    }

    #[test]
    fn boost_seeds_the_floor_first() {
        // Without the boost a weight-0.1 job gets almost nothing against
        // a weight-10 job on a tight market; boosted, its floor comes
        // first.
        let quiet = fair_shares(10, &[job(10.0, 10, 6, false), job(0.1, 10, 6, false)]);
        assert!(quiet[1] < 6);
        let boosted = fair_shares(10, &[job(10.0, 10, 6, false), job(0.1, 10, 6, true)]);
        assert_eq!(boosted[1], 6);
        assert_eq!(boosted.iter().sum::<usize>(), 10);
    }

    #[test]
    fn leftover_capacity_stays_free_when_all_saturated() {
        let shares = fair_shares(100, &[job(1.0, 3, 0, false), job(1.0, 5, 0, false)]);
        assert_eq!(shares, vec![3, 5]);
    }

    #[test]
    fn deterministic_ties_break_low() {
        let shares = fair_shares(3, &[job(1.0, 10, 0, false), job(1.0, 10, 0, false)]);
        assert_eq!(shares, vec![2, 1]);
    }
}
