//! Fleet-level error types.

use std::fmt;

use varuna_cluster::error::ClusterError;

/// Everything that can go wrong assembling or running a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A job spec failed validation.
    InvalidSpec {
        /// The offending job's name.
        job: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The fleet-level configuration is unusable.
    InvalidConfig {
        /// What was wrong with it.
        reason: String,
    },
    /// A cluster-layer operation (trace handling, lease bookkeeping)
    /// failed.
    Cluster(ClusterError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidSpec { job, reason } => {
                write!(f, "invalid job spec `{job}`: {reason}")
            }
            FleetError::InvalidConfig { reason } => write!(f, "invalid fleet config: {reason}"),
            FleetError::Cluster(e) => write!(f, "cluster error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ClusterError> for FleetError {
    fn from(e: ClusterError) -> Self {
        FleetError::Cluster(e)
    }
}
