//! The fleet control loop: N jobs, one shared spot market, one arbiter.
//!
//! [`run_fleet`] replays a shared market [`ClusterTrace`] through a
//! discrete-event loop. Grants land in a free pool tracked by the
//! cluster layer's [`LeaseBook`]; every arbitration round the
//! [`crate::arbiter`] computes per-job spot entitlements and the loop
//! reconciles leases to them — revoking only from jobs above their
//! entitlement (preemption-of-the-preemptible), then handing freed VMs
//! to jobs below it. The provisioning layer
//! ([`crate::ProvisionPolicy`]) tops jobs up with on-demand capacity
//! where the policy allows, and each job's own [`Manager`] is driven
//! through [`Manager::on_external_capacity`] so it re-plans, morphs,
//! degrades and recovers exactly as it would under single-job trace
//! replay.
//!
//! Everything is deterministic: the loop iterates jobs in index order,
//! the lease book and all aggregation maps are `BTreeMap`s, the arbiter
//! breaks ties by index, and no wall-clock value enters any event. Same
//! config + same trace ⇒ byte-identical event streams and digests.

use std::collections::BTreeMap;

use varuna::wal::REPLAY_SECONDS_PER_RECORD;
use varuna::{Calibration, Manager, ManagerState, Oracle, RecoveryReport, VarunaCluster};
use varuna_chaos::{digest_control_events, digest_events};
use varuna_cluster::trace::{ClusterEventKind, ClusterTrace};
use varuna_cluster::{LeaseBook, VmSku};
use varuna_obs::{
    profile, Event, EventBus, EventKind, PartialReport, StreamConfig, StreamSink, VecSink,
};

use crate::arbiter::{fair_shares, ArbiterConfig, JobDemand};
use crate::error::FleetError;
use crate::job::JobSpec;
use crate::policy::ProvisionPolicy;
use crate::wal::{FleetWal, FleetWalRecord, JobWalView};

/// A fleet: the jobs, how capacity is sourced, and how it is arbitrated.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The jobs sharing the market, in submission order.
    pub jobs: Vec<JobSpec>,
    /// Where GPUs may come from.
    pub policy: ProvisionPolicy,
    /// Arbiter tuning.
    pub arbiter: ArbiterConfig,
    /// The plan oracle every job's manager uses (analytic by default).
    pub oracle: Oracle,
}

impl FleetConfig {
    /// A fleet over `jobs` with default arbitration, spot-with-fallback
    /// provisioning, and the analytic plan oracle.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        FleetConfig {
            jobs,
            policy: ProvisionPolicy::SpotWithFallback,
            arbiter: ArbiterConfig::default_tuning(),
            oracle: Oracle::analytic(),
        }
    }

    /// Replaces the provisioning policy.
    pub fn with_policy(mut self, policy: ProvisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the arbiter tuning.
    pub fn with_arbiter(mut self, arbiter: ArbiterConfig) -> Self {
        self.arbiter = arbiter;
        self
    }

    /// Replaces the plan oracle.
    pub fn with_oracle(mut self, oracle: Oracle) -> Self {
        self.oracle = oracle;
        self
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.jobs.is_empty() {
            return Err(FleetError::InvalidConfig {
                reason: "a fleet needs at least one job".to_string(),
            });
        }
        let mut names = std::collections::BTreeSet::new();
        for j in &self.jobs {
            j.validate()?;
            if !names.insert(j.name.clone()) {
                return Err(FleetError::InvalidConfig {
                    reason: format!("duplicate job name `{}`", j.name),
                });
            }
        }
        Ok(())
    }
}

/// One job's share of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Training examples processed.
    pub examples: f64,
    /// Tokens processed (`examples * seq_len`).
    pub tokens: f64,
    /// GPU-hours billed at the spot rate.
    pub spot_gpu_hours: f64,
    /// GPU-hours billed at the dedicated (on-demand) rate.
    pub on_demand_gpu_hours: f64,
    /// Total spend.
    pub dollars: f64,
    /// Reconfigurations the job's manager performed.
    pub morphs: usize,
    /// Preemption episodes the job suffered (market + arbiter).
    pub preemptions: usize,
    /// Hours spent in [`ManagerState::Degraded`].
    pub degraded_hours: f64,
    /// Manager events the job emitted.
    pub events: usize,
    /// FNV digest of the job's manager event stream.
    pub digest: u64,
}

/// Aggregate result of a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Per-job outcomes, in submission order.
    pub per_job: Vec<JobOutcome>,
    /// Trace duration, hours.
    pub duration_hours: f64,
    /// Total spend across the fleet.
    pub dollars: f64,
    /// Total examples across the fleet.
    pub examples: f64,
    /// Total tokens across the fleet.
    pub tokens: f64,
    /// Aggregate cost efficiency, dollars per thousand tokens
    /// (infinite when the fleet made no progress).
    pub dollars_per_ktoken: f64,
    /// Aggregate goodput, tokens per hour of trace time.
    pub goodput_tokens_per_hour: f64,
    /// Jain fairness index over weight-normalized per-job examples
    /// (1.0 = perfectly weighted-fair).
    pub jain_fairness: f64,
    /// Rounds where leases broke a capacity invariant: more GPUs leased
    /// than the market holds, lease-book conservation lost, or a lease
    /// grant refused. Must be 0.
    pub capacity_violations: usize,
    /// Fair-share violations: an arbiter revocation that hit a job at or
    /// below its entitlement, or a job left above its entitlement after
    /// reconciliation. Must be 0.
    pub fairness_violations: usize,
    /// Fleet-level events emitted (allocations, preemptions, fallbacks).
    pub fleet_events: usize,
    /// Peak instantaneous market capacity observed, GPUs.
    pub peak_market_gpus: usize,
    /// Combined digest: the fleet event stream folded with every job's
    /// stream digest in job order. Same config + trace ⇒ same digest.
    pub digest: u64,
}

/// A fleet run with its full event streams, for tests and exporters.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// Aggregate and per-job results.
    pub outcome: FleetOutcome,
    /// The fleet-level event stream (allocation / preemption / fallback).
    pub fleet_events: Vec<Event>,
    /// Each job's manager event stream, in submission order.
    pub job_events: Vec<Vec<Event>>,
    /// Per-bus streaming-vs-post-hoc accounting checks.
    pub stream: FleetStreamCheck,
}

/// Result of folding one bus's events through the streaming profiler
/// while the run was live, then comparing its sealed report against the
/// post-hoc `profile()` of the same stream.
///
/// Each bus carries one logical event lane (one manager, or the fleet
/// control plane), so every per-bus report is exact; cross-bus partials
/// are intentionally *not* merged here — separate jobs are separate
/// timelines, and merging them would sum unrelated makespans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheck {
    /// Whether the streamed report equals the post-hoc one byte-for-byte.
    pub matches_posthoc: bool,
    /// `StreamCounters::violations()` for the live fold. Must be 0.
    pub violations: usize,
    /// Peak resident entries the streaming profiler held.
    pub peak_resident: usize,
    /// Events the live fold observed.
    pub events: usize,
}

/// The fleet bus check plus one check per job bus, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStreamCheck {
    /// The fleet control-plane bus.
    pub fleet: StreamCheck,
    /// Each job manager's bus.
    pub jobs: Vec<StreamCheck>,
}

impl FleetStreamCheck {
    /// True when every bus streamed cleanly: byte-identical reports and
    /// zero accounting violations everywhere.
    pub fn all_clean(&self) -> bool {
        std::iter::once(&self.fleet)
            .chain(self.jobs.iter())
            .all(|c| c.matches_posthoc && c.violations == 0)
    }
}

/// Seals a live partial and scores it against the post-hoc profile of
/// the same event stream.
fn check_stream(partial: PartialReport, events: &[Event]) -> StreamCheck {
    let violations = partial.counters().violations();
    let peak_resident = partial.counters().peak_resident;
    let seen = partial.events();
    let matches = partial.into_report().to_json() == profile(events).to_json();
    StreamCheck {
        matches_posthoc: matches,
        violations,
        peak_resident,
        events: seen,
    }
}

/// Per-job mutable loop state.
struct JobState {
    od: usize,
    step_f: f64,
    examples: f64,
    spot_gpu_hours: f64,
    od_gpu_hours: f64,
    degraded_hours: f64,
    starved_since: Option<f64>,
    morphs: usize,
    preemptions: usize,
    last_total: Option<usize>,
    last_emitted: Option<(usize, usize)>,
}

impl JobState {
    fn new() -> Self {
        JobState {
            od: 0,
            step_f: 0.0,
            examples: 0.0,
            spot_gpu_hours: 0.0,
            od_gpu_hours: 0.0,
            degraded_hours: 0.0,
            starved_since: None,
            morphs: 0,
            preemptions: 0,
            last_total: None,
            last_emitted: None,
        }
    }
}

/// Invariant witnesses accumulated across rounds.
#[derive(Default)]
struct Counters {
    capacity_violations: usize,
    fairness_violations: usize,
    peak_market_gpus: usize,
}

/// Progress between arbitration rounds: hold-and-pay for every held GPU
/// (leased spot and provisioned on-demand alike), train at the planned
/// mini-batch rate while Running, accrue downtime while Degraded.
fn advance_progress(
    from: f64,
    to: f64,
    cfg: &FleetConfig,
    st: &mut [JobState],
    mgrs: &[Manager<'_>],
    book: &LeaseBook,
) {
    let dt = to - from;
    if dt <= 0.0 {
        return;
    }
    for (j, s) in st.iter_mut().enumerate() {
        s.spot_gpu_hours += book.job_gpus(j as u64) as f64 * dt;
        s.od_gpu_hours += s.od as f64 * dt;
        match mgrs[j].state() {
            ManagerState::Running => {
                if let Some(c) = mgrs[j].current_config() {
                    let steps = dt * 3600.0 / c.est_minibatch_time;
                    s.step_f += steps;
                    s.examples += steps * cfg.jobs[j].m_total as f64;
                }
            }
            ManagerState::Degraded => s.degraded_hours += dt,
        }
    }
}

/// Replay-or-log one fleet decision: a pending record replays (crash
/// recovery), a live decision is computed and logged before its event is
/// emitted. The loop is deterministic, so during recovery the cursor is
/// always exactly at the expected record; the `debug_assert` pins that.
fn fleet_step(
    wal: &mut FleetWal,
    expect: impl FnOnce(&FleetWalRecord) -> bool,
    live: impl FnOnce() -> FleetWalRecord,
) -> FleetWalRecord {
    if let Some(rec) = wal.replay_next_if(expect) {
        return rec;
    }
    debug_assert!(
        !wal.replaying(),
        "fleet WAL cursor diverged from the deterministic replay"
    );
    let rec = live();
    wal.append(rec.clone());
    rec
}

/// Emits the fleet event a logged decision stands for.
fn emit_fleet_record(bus: &mut EventBus, rec: &FleetWalRecord) {
    let t_sec = rec.t_hours() * 3600.0;
    match rec {
        FleetWalRecord::Allocation {
            job,
            spot_gpus,
            on_demand_gpus,
            market_gpus,
            ..
        } => {
            let (job, spot, od, market) = (*job, *spot_gpus, *on_demand_gpus, *market_gpus);
            bus.emit_with(|| {
                Event::fleet(
                    t_sec,
                    EventKind::FleetAllocation {
                        job,
                        spot_gpus: spot,
                        on_demand_gpus: od,
                        market_gpus: market,
                    },
                )
            });
        }
        FleetWalRecord::Preempted {
            job,
            gpus_revoked,
            reason,
            ..
        } => {
            let (job, revoked, reason) = (*job, *gpus_revoked, reason.clone());
            bus.emit_with(move || {
                Event::fleet(
                    t_sec,
                    EventKind::JobPreempted {
                        job,
                        gpus_revoked: revoked,
                        reason,
                    },
                )
            });
        }
        FleetWalRecord::Fallback {
            job,
            gpus,
            total_on_demand,
            ..
        } => {
            let (job, gpus, total) = (*job, *gpus, *total_on_demand);
            bus.emit_with(|| {
                Event::fleet(
                    t_sec,
                    EventKind::FallbackProvisioned {
                        job,
                        gpus,
                        total_on_demand: total,
                    },
                )
            });
        }
        FleetWalRecord::Job { .. } => unreachable!("job records are emitted by the manager"),
    }
}

/// One arbitration round at `t` hours: entitlements, lease
/// reconciliation, fallback provisioning, manager driving, invariants.
#[allow(clippy::too_many_arguments)]
fn arbitrate_round(
    t: f64,
    cfg: &FleetConfig,
    st: &mut [JobState],
    mgrs: &mut [Manager<'_>],
    book: &mut LeaseBook,
    vm_gpus: &BTreeMap<u64, usize>,
    fleet_bus: &mut EventBus,
    job_buses: &mut [EventBus],
    counters: &mut Counters,
    wal: &mut FleetWal,
) {
    let n = cfg.jobs.len();
    let capacity = book.capacity_gpus();
    counters.peak_market_gpus = counters.peak_market_gpus.max(capacity);

    let bound = cfg.arbiter.starvation_bound_hours;
    let boosted: Vec<bool> = st
        .iter()
        .zip(cfg.jobs.iter())
        .map(|(s, j)| j.floor_gpus > 0 && s.starved_since.is_some_and(|since| t - since >= bound))
        .collect();

    // Spot entitlements from the arbiter (none under on-demand-only).
    let targets: Vec<usize> = if cfg.policy == ProvisionPolicy::OnDemandOnly {
        vec![0; n]
    } else {
        let demands: Vec<JobDemand> = cfg
            .jobs
            .iter()
            .zip(boosted.iter())
            .map(|(j, &b)| JobDemand {
                weight: j.weight,
                demand: j.demand_gpus,
                floor: j.floor_gpus,
                boosted: b,
            })
            .collect();
        fair_shares(capacity, &demands)
    };
    let boost_active = cfg.policy != ProvisionPolicy::OnDemandOnly && boosted.iter().any(|&b| b);

    // Reconcile leases down, newest VM first, recording every revocation
    // as (job, held-before, entitlement) so the fairness invariant is
    // checked on what actually happened rather than assumed.
    let mut revocations: Vec<(usize, usize, usize)> = Vec::new();
    for j in 0..n {
        let job = j as u64;
        let before = book.job_gpus(job);
        if before <= targets[j] {
            continue;
        }
        let mut revoked = 0usize;
        let mut vms = book.job_vms(job);
        while book.job_gpus(job) > targets[j] {
            let Some(vm) = vms.pop() else { break };
            book.release(vm);
            revoked += vm_gpus.get(&vm).copied().unwrap_or(1);
        }
        if revoked > 0 {
            revocations.push((j, before, targets[j]));
            st[j].preemptions += 1;
            let reason = if boost_active {
                "starvation_boost"
            } else {
                "fair_share"
            };
            let rec = fleet_step(
                wal,
                |r| matches!(r, FleetWalRecord::Preempted { job: rj, .. } if *rj == job),
                || FleetWalRecord::Preempted {
                    t_hours: t,
                    job,
                    gpus_revoked: revoked,
                    reason: reason.to_string(),
                },
            );
            emit_fleet_record(fleet_bus, &rec);
        }
    }
    // Preemption-of-the-preemptible: only jobs strictly above their
    // entitlement may lose capacity to the arbiter.
    counters.fairness_violations += revocations
        .iter()
        .filter(|(_, before, target)| before <= target)
        .count();

    // Reconcile leases up: free VMs (ascending id) to jobs below their
    // entitlement, never leasing past it.
    let free = book.free_vms();
    let mut fi = 0usize;
    for j in 0..n {
        let job = j as u64;
        while book.job_gpus(job) < targets[j] && fi < free.len() {
            let (vm, gpus) = free[fi];
            if book.job_gpus(job) + gpus > targets[j] {
                break;
            }
            if book.lease(vm, job).is_err() {
                counters.capacity_violations += 1;
            }
            fi += 1;
        }
        if book.job_gpus(job) > targets[j] {
            counters.fairness_violations += 1;
        }
    }

    // Provisioning + manager driving, job by job.
    for j in 0..n {
        let spot = book.job_gpus(j as u64);
        let od = match cfg.policy {
            ProvisionPolicy::SpotOnly => 0,
            ProvisionPolicy::OnDemandOnly => cfg.jobs[j].demand_gpus,
            ProvisionPolicy::SpotWithFallback => cfg.jobs[j].floor_gpus.saturating_sub(spot),
        };
        if od > st[j].od {
            let added = od - st[j].od;
            let job = j as u64;
            let rec = fleet_step(
                wal,
                |r| matches!(r, FleetWalRecord::Fallback { job: rj, .. } if *rj == job),
                || FleetWalRecord::Fallback {
                    t_hours: t,
                    job,
                    gpus: added,
                    total_on_demand: od,
                },
            );
            emit_fleet_record(fleet_bus, &rec);
        }
        st[j].od = od;

        // Drive the job's manager whenever its capacity changed, and keep
        // retrying while it is degraded (the arbiter round doubles as the
        // retry tick).
        let total = spot + od;
        if st[j].last_total != Some(total) || mgrs[j].state() == ManagerState::Degraded {
            let step = st[j].step_f as u64;
            let durable = step - mgrs[j].checkpoint_policy().lost_minibatches(step);
            let mut view = JobWalView { wal, job: j as u64 };
            if let Some(d) = mgrs[j].on_external_capacity_walled(
                t,
                total,
                step,
                durable,
                &mut job_buses[j],
                &mut view,
            ) {
                if d.reconfigured {
                    st[j].morphs += 1;
                }
            }
            st[j].last_total = Some(total);
        }

        // Starvation clock: below the floor starts (or continues) an
        // episode; at or above it clears.
        if cfg.jobs[j].floor_gpus > 0 && total < cfg.jobs[j].floor_gpus {
            st[j].starved_since.get_or_insert(t);
        } else {
            st[j].starved_since = None;
        }

        if st[j].last_emitted != Some((spot, od)) {
            let job = j as u64;
            let rec = fleet_step(
                wal,
                |r| matches!(r, FleetWalRecord::Allocation { job: rj, .. } if *rj == job),
                || FleetWalRecord::Allocation {
                    t_hours: t,
                    job,
                    spot_gpus: spot,
                    on_demand_gpus: od,
                    market_gpus: capacity,
                },
            );
            emit_fleet_record(fleet_bus, &rec);
            st[j].last_emitted = Some((spot, od));
        }
    }

    // Capacity invariants, every round.
    if book.leased_gpus() > book.capacity_gpus() || book.check_conservation().is_err() {
        counters.capacity_violations += 1;
    }
}

/// Runs the fleet over a shared market trace and returns the aggregate
/// outcome. See [`run_fleet_traced`] to also get the event streams.
pub fn run_fleet(cfg: &FleetConfig, market: &ClusterTrace) -> Result<FleetOutcome, FleetError> {
    run_fleet_traced(cfg, market).map(|r| r.outcome)
}

/// Runs the fleet over a shared market trace, keeping the fleet-level
/// and per-job event streams.
///
/// Equivalent to [`run_fleet_walled`] with a fresh write-ahead log that
/// is discarded afterwards; use the walled variant to keep the log for
/// crash recovery.
pub fn run_fleet_traced(cfg: &FleetConfig, market: &ClusterTrace) -> Result<FleetRun, FleetError> {
    run_fleet_walled(cfg, market, &mut FleetWal::new())
}

/// Recovers a killed fleet run from its write-ahead log.
///
/// `wal` is the log as decoded by [`FleetWal::from_bytes`] (a possibly
/// torn tail already truncated at the last clean frame boundary). The
/// market trace is re-run from the start with every logged decision —
/// fleet allocations and per-job plan attempts alike — *replayed* rather
/// than recomputed; once the log is exhausted the run continues live,
/// appending to the same log. A `RecoveryReplay` event on the fleet
/// stream prices the replay as downtime.
///
/// # Errors
///
/// Same contract as [`run_fleet_traced`].
pub fn recover_fleet(
    cfg: &FleetConfig,
    market: &ClusterTrace,
    wal: &mut FleetWal,
) -> Result<(FleetRun, RecoveryReport), FleetError> {
    let report = RecoveryReport {
        replayed_records: wal.remaining(),
        torn: wal.torn(),
        dropped_bytes: wal.dropped_bytes(),
        replay_seconds: wal.remaining() as f64 * REPLAY_SECONDS_PER_RECORD,
    };
    let run = run_fleet_walled(cfg, market, wal)?;
    Ok((run, report))
}

/// Runs the fleet through a write-ahead log: every fleet control decision
/// (allocation, preemption, fallback) and every job manager's
/// plan-attempt record is logged to one shared sequence *before* its
/// event is emitted, and pending records (crash recovery) replay instead
/// of recomputing. A fresh log makes this identical to
/// [`run_fleet_traced`].
///
/// # Errors
///
/// Returns [`FleetError::InvalidConfig`] for an empty fleet or duplicate
/// job names.
pub fn run_fleet_walled(
    cfg: &FleetConfig,
    market: &ClusterTrace,
    wal: &mut FleetWal,
) -> Result<FleetRun, FleetError> {
    cfg.validate()?;
    let n = cfg.jobs.len();

    // Each job calibrates against a cluster sized to its own demand; the
    // calibration is scale-invariant (paper §4.3) so the size only
    // bounds the planner's search space.
    let calibs: Vec<Calibration> = cfg
        .jobs
        .iter()
        .map(|j| Calibration::profile(&j.model, &VarunaCluster::commodity_1gpu(j.demand_gpus)))
        .collect();
    let mut mgrs: Vec<Manager<'_>> = calibs
        .iter()
        .zip(cfg.jobs.iter())
        .map(|(c, j)| {
            Manager::new(c, j.m_total, j.micro)
                .with_fallback()
                .with_oracle(cfg.oracle.clone())
        })
        .collect();

    let fleet_sink = VecSink::new();
    let fleet_stream = StreamSink::new(StreamConfig::default());
    let mut fleet_bus = EventBus::with_sink(Box::new(fleet_sink.clone()));
    fleet_bus.add_sink(Box::new(fleet_stream.clone()));
    let job_sinks: Vec<VecSink> = (0..n).map(|_| VecSink::new()).collect();
    let job_streams: Vec<StreamSink> = (0..n)
        .map(|_| StreamSink::new(StreamConfig::default()))
        .collect();
    let mut job_buses: Vec<EventBus> = job_sinks
        .iter()
        .zip(job_streams.iter())
        .map(|(s, live)| {
            let mut bus = EventBus::with_sink(Box::new(s.clone()));
            bus.add_sink(Box::new(live.clone()));
            bus
        })
        .collect();

    let mut st: Vec<JobState> = (0..n).map(|_| JobState::new()).collect();
    let mut book = LeaseBook::new();
    let mut vm_gpus: BTreeMap<u64, usize> = BTreeMap::new();
    let mut counters = Counters::default();

    // A pending log means this run is a recovery: announce (and price)
    // the replay before re-driving the loop.
    if wal.remaining() > 0 || wal.torn().is_some() {
        let crash_t_sec = wal.records().last().map_or(0.0, |r| r.t_hours()) * 3600.0;
        let pending = wal.remaining() as u64;
        let torn = wal.torn().is_some();
        let dropped_bytes = wal.dropped_bytes();
        fleet_bus.emit_with(|| {
            Event::recovery(
                crash_t_sec,
                EventKind::RecoveryReplay {
                    wal_records: pending,
                    torn,
                    dropped_bytes,
                    replay_seconds: pending as f64 * REPLAY_SECONDS_PER_RECORD,
                },
            )
        });
    }

    // Bootstrap round: on-demand fleets provision before any market
    // event, and an empty market parks every spot job as degraded.
    arbitrate_round(
        0.0,
        cfg,
        &mut st,
        &mut mgrs,
        &mut book,
        &vm_gpus,
        &mut fleet_bus,
        &mut job_buses,
        &mut counters,
        wal,
    );

    let mut t_prev = 0.0f64;
    let evs = &market.events;
    let mut i = 0usize;
    while i < evs.len() {
        let t = evs[i].time_hours;
        advance_progress(t_prev, t, cfg, &mut st, &mgrs, &book);
        // Apply every market event in this batch (same timestamp), then
        // arbitrate once.
        while i < evs.len() && evs[i].time_hours == t {
            let e = &evs[i];
            match e.kind {
                ClusterEventKind::Granted { gpus } => {
                    if book.grant(e.vm, gpus).is_ok() {
                        vm_gpus.insert(e.vm, gpus);
                    }
                }
                ClusterEventKind::Preempted => {
                    if let Some(job) = book.preempt(e.vm) {
                        st[job as usize].preemptions += 1;
                        let revoked = vm_gpus.get(&e.vm).copied().unwrap_or(1);
                        let rec = fleet_step(
                            wal,
                            |r| matches!(r, FleetWalRecord::Preempted { job: rj, .. } if *rj == job),
                            || FleetWalRecord::Preempted {
                                t_hours: t,
                                job,
                                gpus_revoked: revoked,
                                reason: "market".to_string(),
                            },
                        );
                        emit_fleet_record(&mut fleet_bus, &rec);
                    }
                    vm_gpus.remove(&e.vm);
                }
                // Per-VM health events (stutter, silence, storage) are
                // single-job concerns; the fleet layer arbitrates raw
                // capacity only.
                _ => {}
            }
            i += 1;
        }
        arbitrate_round(
            t,
            cfg,
            &mut st,
            &mut mgrs,
            &mut book,
            &vm_gpus,
            &mut fleet_bus,
            &mut job_buses,
            &mut counters,
            wal,
        );
        t_prev = t;
    }
    advance_progress(t_prev, market.duration_hours, cfg, &mut st, &mgrs, &book);

    fleet_bus.flush();
    for b in &mut job_buses {
        b.flush();
    }
    let fleet_events = fleet_sink.take();
    let job_events: Vec<Vec<Event>> = job_sinks.iter().map(|s| s.take()).collect();

    let sku = VmSku::nc6_v3();
    let spot_rate = sku.spot_price_per_gpu_hour();
    let od_rate = sku.dedicated_price_per_gpu_hour();

    let per_job: Vec<JobOutcome> = cfg
        .jobs
        .iter()
        .zip(st.iter())
        .zip(job_events.iter())
        .map(|((j, s), ev)| JobOutcome {
            name: j.name.clone(),
            examples: s.examples,
            tokens: s.examples * j.model.seq_len as f64,
            spot_gpu_hours: s.spot_gpu_hours,
            on_demand_gpu_hours: s.od_gpu_hours,
            dollars: s.spot_gpu_hours * spot_rate + s.od_gpu_hours * od_rate,
            morphs: s.morphs,
            preemptions: s.preemptions,
            degraded_hours: s.degraded_hours,
            events: ev.len(),
            digest: digest_events(ev),
        })
        .collect();

    let dollars: f64 = per_job.iter().map(|j| j.dollars).sum();
    let tokens: f64 = per_job.iter().map(|j| j.tokens).sum();
    let examples: f64 = per_job.iter().map(|j| j.examples).sum();

    // Jain index over weight-normalized progress: 1.0 when every job got
    // exactly its weighted share of useful work.
    let shares: Vec<f64> = per_job
        .iter()
        .zip(cfg.jobs.iter())
        .map(|(o, j)| o.examples / j.weight)
        .collect();
    let sum: f64 = shares.iter().sum();
    let sumsq: f64 = shares.iter().map(|x| x * x).sum();
    let jain = if sum > 0.0 {
        (sum * sum) / (shares.len() as f64 * sumsq)
    } else {
        1.0
    };

    // Fold per-job stream digests into the fleet stream digest (FNV
    // combine, job order) so one u64 certifies the whole run. Recovery
    // replay announcements are excluded so a kill-and-recover run can be
    // compared digest-for-digest against its uninterrupted twin.
    let mut digest = digest_control_events(&fleet_events);
    for o in &per_job {
        digest = digest.wrapping_mul(0x0000_0100_0000_01B3) ^ o.digest;
    }

    let outcome = FleetOutcome {
        duration_hours: market.duration_hours,
        dollars,
        examples,
        tokens,
        dollars_per_ktoken: if tokens > 0.0 {
            dollars / (tokens / 1000.0)
        } else {
            f64::INFINITY
        },
        goodput_tokens_per_hour: if market.duration_hours > 0.0 {
            tokens / market.duration_hours
        } else {
            0.0
        },
        jain_fairness: jain,
        capacity_violations: counters.capacity_violations,
        fairness_violations: counters.fairness_violations,
        fleet_events: fleet_events.len(),
        peak_market_gpus: counters.peak_market_gpus,
        digest,
        per_job,
    };
    let stream = FleetStreamCheck {
        fleet: check_stream(fleet_stream.take_partial(), &fleet_events),
        jobs: job_streams
            .iter()
            .zip(job_events.iter())
            .map(|(live, ev)| check_stream(live.take_partial(), ev))
            .collect(),
    };
    Ok(FleetRun {
        outcome,
        fleet_events,
        job_events,
        stream,
    })
}

#[cfg(test)]
mod tests {
    use varuna_cluster::trace::{ClusterEvent, ClusterEventKind, ClusterTrace};
    use varuna_models::ModelZoo;
    use varuna_obs::EventKind;

    use super::*;

    fn small_job(name: &str, weight: f64, demand: usize, floor: usize) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            model: ModelZoo::gpt2_355m(),
            m_total: 512,
            micro: 4,
            weight,
            demand_gpus: demand,
            floor_gpus: floor,
        }
    }

    /// A scripted market: `vms` one-GPU grants at t=0, held for the whole
    /// trace.
    fn steady_market(vms: u64, hours: f64) -> ClusterTrace {
        ClusterTrace {
            events: (0..vms)
                .map(|vm| ClusterEvent {
                    time_hours: 0.0,
                    vm,
                    kind: ClusterEventKind::Granted { gpus: 1 },
                })
                .collect(),
            duration_hours: hours,
        }
    }

    #[test]
    fn two_jobs_split_a_steady_market_fairly() {
        let cfg = FleetConfig::new(vec![small_job("a", 1.0, 8, 2), small_job("b", 1.0, 8, 2)])
            .with_policy(ProvisionPolicy::SpotOnly);
        let run = run_fleet_traced(&cfg, &steady_market(8, 2.0)).unwrap();
        let o = &run.outcome;
        assert_eq!(o.capacity_violations, 0);
        assert_eq!(o.fairness_violations, 0);
        assert_eq!(o.peak_market_gpus, 8);
        // Both jobs run 4 GPUs for 2 hours, no on-demand.
        for j in &o.per_job {
            assert!(
                (j.spot_gpu_hours - 8.0).abs() < 1e-9,
                "{}",
                j.spot_gpu_hours
            );
            assert_eq!(j.on_demand_gpu_hours, 0.0);
            assert!(j.examples > 0.0, "job should make progress");
        }
        assert!((o.jain_fairness - 1.0).abs() < 1e-6);
        assert!(o.dollars_per_ktoken.is_finite());
        // Allocation events were emitted for both jobs.
        assert!(run
            .fleet_events
            .iter()
            .any(|e| matches!(e.kind, EventKind::FleetAllocation { .. })));
    }

    #[test]
    fn market_preemption_revokes_and_the_arbiter_rebalances() {
        let mut market = steady_market(8, 2.0);
        // At t=1h the market takes 4 VMs back.
        for vm in 0..4 {
            market.events.push(ClusterEvent {
                time_hours: 1.0,
                vm,
                kind: ClusterEventKind::Preempted,
            });
        }
        let cfg = FleetConfig::new(vec![small_job("a", 1.0, 8, 1), small_job("b", 1.0, 8, 1)])
            .with_policy(ProvisionPolicy::SpotOnly);
        let run = run_fleet_traced(&cfg, &market).unwrap();
        let o = &run.outcome;
        assert_eq!(o.capacity_violations, 0);
        assert_eq!(o.fairness_violations, 0);
        // 8 GPU-hours in hour one, 4 in hour two, split evenly.
        let held: f64 = o.per_job.iter().map(|j| j.spot_gpu_hours).sum();
        assert!((held - 12.0).abs() < 1e-9, "{held}");
        assert!(run.fleet_events.iter().any(|e| matches!(
            &e.kind,
            EventKind::JobPreempted { reason, .. } if reason == "market"
        )));
    }

    #[test]
    fn fallback_tops_up_to_the_floor_when_the_market_is_empty() {
        let market = ClusterTrace {
            events: Vec::new(),
            duration_hours: 1.0,
        };
        let cfg = FleetConfig::new(vec![small_job("a", 1.0, 8, 4)]);
        let run = run_fleet_traced(&cfg, &market).unwrap();
        let o = &run.outcome;
        let j = &o.per_job[0];
        assert_eq!(j.spot_gpu_hours, 0.0);
        assert!((j.on_demand_gpu_hours - 4.0).abs() < 1e-9);
        assert!(j.examples > 0.0, "the floor keeps the job alive");
        assert!(run.fleet_events.iter().any(|e| matches!(
            e.kind,
            EventKind::FallbackProvisioned {
                gpus: 4,
                total_on_demand: 4,
                ..
            }
        )));
    }

    #[test]
    fn on_demand_only_ignores_the_market_and_pays_dedicated_rates() {
        let cfg = FleetConfig::new(vec![small_job("a", 1.0, 4, 1)])
            .with_policy(ProvisionPolicy::OnDemandOnly);
        let run = run_fleet_traced(&cfg, &steady_market(8, 1.0)).unwrap();
        let j = &run.outcome.per_job[0];
        assert_eq!(j.spot_gpu_hours, 0.0);
        assert!((j.on_demand_gpu_hours - 4.0).abs() < 1e-9);
        let od_rate = VmSku::nc6_v3().dedicated_price_per_gpu_hour();
        assert!((j.dollars - 4.0 * od_rate).abs() < 1e-9);
    }

    #[test]
    fn same_config_and_trace_is_byte_identical() {
        let market = ClusterTrace::generate_spot_1gpu(12, 12, 2.0, 15.0, 11);
        let cfg = FleetConfig::new(vec![
            small_job("a", 2.0, 8, 2),
            small_job("b", 1.0, 6, 2),
            small_job("c", 1.0, 6, 0),
        ]);
        let a = run_fleet_traced(&cfg, &market).unwrap();
        let b = run_fleet_traced(&cfg, &market).unwrap();
        assert_eq!(a.outcome.digest, b.outcome.digest);
        assert_eq!(a.fleet_events, b.fleet_events);
        assert_eq!(a.job_events, b.job_events);
        assert_eq!(a.outcome, b.outcome);
    }

    #[test]
    fn every_bus_streams_byte_identical_to_posthoc_under_churn() {
        let market = ClusterTrace::generate_spot_1gpu(12, 12, 2.0, 15.0, 11);
        let cfg = FleetConfig::new(vec![
            small_job("a", 2.0, 8, 2),
            small_job("b", 1.0, 6, 2),
            small_job("c", 1.0, 6, 0),
        ]);
        let run = run_fleet_traced(&cfg, &market).unwrap();
        assert!(
            run.stream.all_clean(),
            "live streamed accounting diverged: {:?}",
            run.stream
        );
        assert_eq!(run.stream.jobs.len(), 3);
        assert_eq!(run.stream.fleet.events, run.fleet_events.len());
        for (check, events) in run.stream.jobs.iter().zip(run.job_events.iter()) {
            assert_eq!(check.events, events.len());
            // Control-plane streams fold as they arrive: resident state
            // stays far below the stream length.
            assert!(
                check.peak_resident <= events.len(),
                "resident {} vs {} events",
                check.peak_resident,
                events.len()
            );
        }
    }

    #[test]
    fn rejects_empty_and_duplicate_fleets() {
        assert!(run_fleet(&FleetConfig::new(Vec::new()), &steady_market(1, 1.0)).is_err());
        let cfg = FleetConfig::new(vec![small_job("a", 1.0, 4, 0), small_job("a", 1.0, 4, 0)]);
        assert!(run_fleet(&cfg, &steady_market(1, 1.0)).is_err());
    }
}
