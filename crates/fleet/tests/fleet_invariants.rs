//! Property-based fleet suite: whatever the market does, the arbiter
//! must uphold the capacity and fair-share invariants, and the whole
//! fleet loop must stay deterministic.

use proptest::prelude::*;
use varuna_chaos::verify::check_invariants;
use varuna_cluster::trace::{ClusterEvent, ClusterEventKind, ClusterTrace};
use varuna_fleet::{
    fair_shares, recover_fleet, run_fleet_traced, run_fleet_walled, ArbiterConfig, FleetConfig,
    FleetWal, JobDemand, JobSpec, ProvisionPolicy,
};
use varuna_models::ModelZoo;
use varuna_obs::EventKind;

/// A seeded random fleet of 2-5 small jobs with varied weights, demands
/// and floors. Small models keep planning cheap; the properties under
/// test are about the arbiter, not the planner.
fn fleet_from(seed: u64, jobs: usize) -> FleetConfig {
    let job = |i: u64| {
        // Cheap deterministic per-job parameter mixing.
        let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
        let demand = 4 + (mix % 9) as usize; // 4..=12
        JobSpec {
            name: format!("job-{i}"),
            model: ModelZoo::gpt2_355m(),
            m_total: 512,
            micro: 4,
            weight: 1.0 + (mix >> 8 & 3) as f64, // 1..=4
            demand_gpus: demand,
            floor_gpus: (mix >> 16) as usize % (demand / 2 + 1),
        }
    };
    FleetConfig::new((0..jobs as u64).map(job).collect()).with_arbiter(ArbiterConfig {
        starvation_bound_hours: 0.25,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite invariant (a): across every arbitration round of a
    /// random contended market, the total GPUs leased to jobs never
    /// exceed the market's instantaneous capacity, and the lease book
    /// conserves VMs.
    #[test]
    fn leases_never_exceed_market_capacity(
        seed in 0u64..1_000,
        jobs in 2usize..5,
        hosts in 4usize..20,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(hosts, hosts, 2.0, 20.0, seed);
        for policy in [
            ProvisionPolicy::SpotOnly,
            ProvisionPolicy::SpotWithFallback,
            ProvisionPolicy::OnDemandOnly,
        ] {
            let cfg = fleet_from(seed, jobs).with_policy(policy);
            let run = run_fleet_traced(&cfg, &market).expect("valid fleet");
            prop_assert_eq!(
                run.outcome.capacity_violations, 0,
                "seed {} jobs {} hosts {} policy {:?} over-leased the market",
                seed, jobs, hosts, policy
            );
            // The event stream agrees: no allocation snapshot shows more
            // spot GPUs than the market held at that instant.
            for e in &run.fleet_events {
                if let EventKind::FleetAllocation { spot_gpus, market_gpus, .. } = e.kind {
                    prop_assert!(spot_gpus <= market_gpus);
                }
            }
        }
    }

    /// Satellite invariant (b): the arbiter only preempts the
    /// preemptible. No job at or below its fair-share entitlement is
    /// ever revoked by the arbiter while an over-share job holds
    /// capacity — witnessed end-to-end by the in-loop fairness counter.
    #[test]
    fn arbiter_never_preempts_under_share_jobs(
        seed in 0u64..1_000,
        jobs in 2usize..5,
        hosts in 4usize..20,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(hosts, hosts, 2.0, 20.0, seed);
        let cfg = fleet_from(seed, jobs).with_policy(ProvisionPolicy::SpotOnly);
        let run = run_fleet_traced(&cfg, &market).expect("valid fleet");
        prop_assert_eq!(
            run.outcome.fairness_violations, 0,
            "seed {}: an under-share job was preempted by the arbiter",
            seed
        );
    }

    /// Satellite invariant (c): same seed + same trace ⇒ byte-identical
    /// fleet event streams and digests.
    #[test]
    fn same_seed_fleet_runs_are_byte_identical(
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(10, 10, 1.5, 20.0, seed);
        let cfg = fleet_from(seed, jobs);
        let a = run_fleet_traced(&cfg, &market).expect("first run");
        let b = run_fleet_traced(&cfg, &market).expect("second run");
        prop_assert_eq!(a.outcome.digest, b.outcome.digest, "seed {} diverged", seed);
        prop_assert_eq!(a.fleet_events, b.fleet_events);
        prop_assert_eq!(a.job_events, b.job_events);
    }

    /// Satellite: capacity flapping at fleet scale. A market that rapidly
    /// grants and revokes the same VMs drives jobs through repeated
    /// degraded/readmit cycles; every per-job stream must keep the
    /// single-job invariants (strict degraded alternation — the fleet
    /// analogue of never-double-excluded — monotone time, priced lost
    /// work), and once the flapping settles every job converges to
    /// exactly its arbiter entitlement.
    #[test]
    fn flapping_capacity_converges_to_entitlements(
        seed in 0u64..500,
        jobs in 2usize..4,
        cycles in 2usize..6,
    ) {
        let hosts = 8u64;
        let mut events: Vec<ClusterEvent> = (0..hosts)
            .map(|vm| ClusterEvent {
                time_hours: 0.0,
                vm,
                kind: ClusterEventKind::Granted { gpus: 1 },
            })
            .collect();
        // Flap half the hosts on a fast revoke/re-grant cycle, then leave
        // a stable tail for convergence.
        let mut t = 0.5;
        for _ in 0..cycles {
            for vm in 0..hosts / 2 {
                events.push(ClusterEvent { time_hours: t, vm, kind: ClusterEventKind::Preempted });
            }
            t += 0.25;
            for vm in 0..hosts / 2 {
                events.push(ClusterEvent {
                    time_hours: t,
                    vm,
                    kind: ClusterEventKind::Granted { gpus: 1 },
                });
            }
            t += 0.25;
        }
        let market = ClusterTrace { events, duration_hours: t + 2.0 };

        // Floors stay 0 so no starvation boost perturbs the entitlement
        // we check convergence against.
        let mut cfg = fleet_from(seed, jobs).with_policy(ProvisionPolicy::SpotOnly);
        for j in &mut cfg.jobs {
            j.floor_gpus = 0;
        }
        let run = run_fleet_traced(&cfg, &market).expect("valid fleet");

        for (j, ev) in run.job_events.iter().enumerate() {
            let v = check_invariants(ev);
            prop_assert!(v.is_empty(), "seed {} job {}: {:?}", seed, j, v);
        }

        // Determinism under flapping.
        let again = run_fleet_traced(&cfg, &market).expect("valid fleet");
        prop_assert_eq!(run.outcome.digest, again.outcome.digest);

        // Convergence: the final allocation snapshot of every job equals
        // its fair-share entitlement at full (re-admitted) capacity.
        let demands: Vec<JobDemand> = cfg.jobs.iter().map(|j| JobDemand {
            weight: j.weight,
            demand: j.demand_gpus,
            floor: j.floor_gpus,
            boosted: false,
        }).collect();
        let entitlements = fair_shares(hosts as usize, &demands);
        for (j, want) in entitlements.iter().enumerate() {
            let last = run.fleet_events.iter().rev().find_map(|e| match e.kind {
                EventKind::FleetAllocation { job, spot_gpus, on_demand_gpus, .. }
                    if job == j as u64 => Some((spot_gpus, on_demand_gpus)),
                _ => None,
            });
            prop_assert_eq!(
                last, Some((*want, 0)),
                "seed {} job {} did not converge to its entitlement {}",
                seed, j, want
            );
        }
    }

    /// Tentpole at fleet scale: a random kill point in the combined
    /// write-ahead log recovers to the uninterrupted run's digest and
    /// final WAL bytes, torn tail or not.
    #[test]
    fn fleet_recovers_exactly_from_random_kill_points(
        seed in 0u64..200,
        frac in 0.0f64..1.0,
        torn in any::<bool>(),
    ) {
        let market = ClusterTrace::generate_spot_1gpu(8, 4, 2.0, 15.0, seed);
        let mut cfg = fleet_from(seed, 2);
        cfg.jobs.truncate(2);
        let mut wal = FleetWal::new();
        let reference = run_fleet_walled(&cfg, &market, &mut wal).expect("oracle run");
        let n = wal.len();
        let boundary = ((frac * (n + 1) as f64) as usize).min(n);
        let torn = torn && boundary < n;
        let bytes = if torn {
            wal.torn_bytes(boundary, 0.5)
        } else {
            wal.truncated_bytes(boundary)
        };
        let mut recovered = FleetWal::from_bytes(&bytes).expect("surviving prefix loads");
        let (run, report) = recover_fleet(&cfg, &market, &mut recovered).expect("recovery");
        prop_assert_eq!(report.replayed_records, boundary);
        prop_assert_eq!(report.torn.is_some(), torn);
        prop_assert_eq!(
            run.outcome.digest, reference.outcome.digest,
            "seed {} boundary {}/{} torn {} diverged", seed, boundary, n, torn
        );
        prop_assert_eq!(&run.job_events, &reference.job_events);
        prop_assert_eq!(
            recovered.to_bytes(), wal.to_bytes(),
            "seed {}: recovered WAL bytes diverged", seed
        );
    }

    /// The arbiter's allocation function itself honors its contract on
    /// arbitrary inputs: capacity respected, demands capped, boosted
    /// floors seeded while capacity lasts.
    #[test]
    fn fair_shares_contract(
        capacity in 0usize..200,
        njobs in 1usize..8,
        seed in any::<u64>(),
    ) {
        let jobs: Vec<JobDemand> = (0..njobs as u64)
            .map(|i| {
                let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1234_5677);
                let demand = (mix % 32) as usize;
                JobDemand {
                    weight: 1.0 + (mix >> 8 & 7) as f64,
                    demand,
                    floor: ((mix >> 16) as usize % 16).min(demand),
                    boosted: mix >> 24 & 1 == 1,
                }
            })
            .collect();
        let shares = fair_shares(capacity, &jobs);
        prop_assert_eq!(shares.len(), jobs.len());
        prop_assert!(shares.iter().sum::<usize>() <= capacity);
        for (s, j) in shares.iter().zip(jobs.iter()) {
            prop_assert!(*s <= j.demand);
        }
        // If total demand saturates capacity, nothing is left stranded.
        let total_demand: usize = jobs.iter().map(|j| j.demand).sum();
        if total_demand >= capacity {
            prop_assert_eq!(shares.iter().sum::<usize>(), capacity);
        }
    }
}

#[test]
fn fleet_kill_at_every_boundary_recovers_exactly() {
    // Exhaustive sweep of one small fleet: every record boundary of the
    // combined WAL, clean and torn, reproduces the uninterrupted run.
    let market = ClusterTrace::generate_spot_1gpu(6, 3, 2.0, 12.0, 13);
    let mut cfg = fleet_from(13, 2);
    for j in &mut cfg.jobs {
        j.demand_gpus = j.demand_gpus.min(6);
    }
    let mut wal = FleetWal::new();
    let reference = run_fleet_walled(&cfg, &market, &mut wal).expect("oracle run");
    let n = wal.len();
    assert!(n > 0, "the fleet must log decisions");
    let full_bytes = wal.to_bytes();
    for boundary in 0..=n {
        for torn in [false, true] {
            let torn = torn && boundary < n;
            let bytes = if torn {
                wal.torn_bytes(boundary, 0.4)
            } else {
                wal.truncated_bytes(boundary)
            };
            let mut recovered = FleetWal::from_bytes(&bytes).expect("prefix loads");
            let (run, report) = recover_fleet(&cfg, &market, &mut recovered).expect("recovery");
            assert_eq!(report.replayed_records, boundary, "boundary {boundary}");
            assert_eq!(
                run.outcome.digest, reference.outcome.digest,
                "boundary {boundary}/{n} torn {torn} diverged"
            );
            assert_eq!(run.job_events, reference.job_events, "boundary {boundary}");
            assert_eq!(
                recovered.to_bytes(),
                full_bytes,
                "boundary {boundary}: WAL bytes diverged"
            );
        }
    }
}
