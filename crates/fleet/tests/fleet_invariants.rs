//! Property-based fleet suite: whatever the market does, the arbiter
//! must uphold the capacity and fair-share invariants, and the whole
//! fleet loop must stay deterministic.

use proptest::prelude::*;
use varuna_cluster::trace::ClusterTrace;
use varuna_fleet::{
    fair_shares, run_fleet_traced, ArbiterConfig, FleetConfig, JobDemand, JobSpec, ProvisionPolicy,
};
use varuna_models::ModelZoo;
use varuna_obs::EventKind;

/// A seeded random fleet of 2-5 small jobs with varied weights, demands
/// and floors. Small models keep planning cheap; the properties under
/// test are about the arbiter, not the planner.
fn fleet_from(seed: u64, jobs: usize) -> FleetConfig {
    let job = |i: u64| {
        // Cheap deterministic per-job parameter mixing.
        let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
        let demand = 4 + (mix % 9) as usize; // 4..=12
        JobSpec {
            name: format!("job-{i}"),
            model: ModelZoo::gpt2_355m(),
            m_total: 512,
            micro: 4,
            weight: 1.0 + (mix >> 8 & 3) as f64, // 1..=4
            demand_gpus: demand,
            floor_gpus: (mix >> 16) as usize % (demand / 2 + 1),
        }
    };
    FleetConfig::new((0..jobs as u64).map(job).collect()).with_arbiter(ArbiterConfig {
        starvation_bound_hours: 0.25,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite invariant (a): across every arbitration round of a
    /// random contended market, the total GPUs leased to jobs never
    /// exceed the market's instantaneous capacity, and the lease book
    /// conserves VMs.
    #[test]
    fn leases_never_exceed_market_capacity(
        seed in 0u64..1_000,
        jobs in 2usize..5,
        hosts in 4usize..20,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(hosts, hosts, 2.0, 20.0, seed);
        for policy in [
            ProvisionPolicy::SpotOnly,
            ProvisionPolicy::SpotWithFallback,
            ProvisionPolicy::OnDemandOnly,
        ] {
            let cfg = fleet_from(seed, jobs).with_policy(policy);
            let run = run_fleet_traced(&cfg, &market).expect("valid fleet");
            prop_assert_eq!(
                run.outcome.capacity_violations, 0,
                "seed {} jobs {} hosts {} policy {:?} over-leased the market",
                seed, jobs, hosts, policy
            );
            // The event stream agrees: no allocation snapshot shows more
            // spot GPUs than the market held at that instant.
            for e in &run.fleet_events {
                if let EventKind::FleetAllocation { spot_gpus, market_gpus, .. } = e.kind {
                    prop_assert!(spot_gpus <= market_gpus);
                }
            }
        }
    }

    /// Satellite invariant (b): the arbiter only preempts the
    /// preemptible. No job at or below its fair-share entitlement is
    /// ever revoked by the arbiter while an over-share job holds
    /// capacity — witnessed end-to-end by the in-loop fairness counter.
    #[test]
    fn arbiter_never_preempts_under_share_jobs(
        seed in 0u64..1_000,
        jobs in 2usize..5,
        hosts in 4usize..20,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(hosts, hosts, 2.0, 20.0, seed);
        let cfg = fleet_from(seed, jobs).with_policy(ProvisionPolicy::SpotOnly);
        let run = run_fleet_traced(&cfg, &market).expect("valid fleet");
        prop_assert_eq!(
            run.outcome.fairness_violations, 0,
            "seed {}: an under-share job was preempted by the arbiter",
            seed
        );
    }

    /// Satellite invariant (c): same seed + same trace ⇒ byte-identical
    /// fleet event streams and digests.
    #[test]
    fn same_seed_fleet_runs_are_byte_identical(
        seed in 0u64..1_000,
        jobs in 2usize..5,
    ) {
        let market = ClusterTrace::generate_spot_1gpu(10, 10, 1.5, 20.0, seed);
        let cfg = fleet_from(seed, jobs);
        let a = run_fleet_traced(&cfg, &market).expect("first run");
        let b = run_fleet_traced(&cfg, &market).expect("second run");
        prop_assert_eq!(a.outcome.digest, b.outcome.digest, "seed {} diverged", seed);
        prop_assert_eq!(a.fleet_events, b.fleet_events);
        prop_assert_eq!(a.job_events, b.job_events);
    }

    /// The arbiter's allocation function itself honors its contract on
    /// arbitrary inputs: capacity respected, demands capped, boosted
    /// floors seeded while capacity lasts.
    #[test]
    fn fair_shares_contract(
        capacity in 0usize..200,
        njobs in 1usize..8,
        seed in any::<u64>(),
    ) {
        let jobs: Vec<JobDemand> = (0..njobs as u64)
            .map(|i| {
                let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1234_5677);
                let demand = (mix % 32) as usize;
                JobDemand {
                    weight: 1.0 + (mix >> 8 & 7) as f64,
                    demand,
                    floor: ((mix >> 16) as usize % 16).min(demand),
                    boosted: mix >> 24 & 1 == 1,
                }
            })
            .collect();
        let shares = fair_shares(capacity, &jobs);
        prop_assert_eq!(shares.len(), jobs.len());
        prop_assert!(shares.iter().sum::<usize>() <= capacity);
        for (s, j) in shares.iter().zip(jobs.iter()) {
            prop_assert!(*s <= j.demand);
        }
        // If total demand saturates capacity, nothing is left stranded.
        let total_demand: usize = jobs.iter().map(|j| j.demand).sum();
        if total_demand >= capacity {
            prop_assert_eq!(shares.iter().sum::<usize>(), capacity);
        }
    }
}
