#![warn(missing_docs)]
//! Network substrate for the Varuna reproduction.
//!
//! The Varuna paper characterizes the fabric connecting GPUs entirely by
//! per-link **bandwidth**, **base latency**, and **jitter** (Section 3,
//! Observation 3), and it models collectives with a ring-allreduce cost that
//! depends on ring size and the number of allreduces in flight per node
//! (Section 4.3, Table 2). This crate provides exactly those abstractions:
//!
//! - [`link`]: link classes (NVLink, PCIe, Ethernet, InfiniBand) and their
//!   bandwidth/latency parameters.
//! - [`jitter`]: deterministic, seedable jitter distributions.
//! - [`topology`]: endpoints grouped into nodes, pair classification, and NIC
//!   capacities.
//! - [`transfer`]: point-to-point transfer cost under contention.
//! - [`collective`]: analytical cost models for ring and hierarchical
//!   allreduce.
//! - [`ring`]: a real (data-plane) ring-allreduce implementation used by the
//!   miniature training engine, verified against a naive reduction.
//! - [`units`]: unit helpers (Gbps, MiB, milliseconds).

pub mod collective;
pub mod jitter;
pub mod link;
pub mod ring;
pub mod topology;
pub mod transfer;
pub mod units;

pub use collective::{allreduce_time, hierarchical_allreduce_time, AllreduceSpec};
pub use jitter::{sample_jitter, JitterModel};
pub use link::{Link, LinkClass};
pub use topology::{Endpoint, NodeId, Topology};
pub use transfer::{transfer_time, TransferSpec};
