//! Deterministic network jitter models.
//!
//! Commodity networks suffer latency jitter that hyperclusters do not
//! (paper Observation 3). Varuna explicitly profiles jitter and feeds it to
//! its simulator; we model jitter as a seeded lognormal (heavy right tail,
//! matching measured datacenter RTT distributions) so that every experiment
//! is exactly reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::units::Seconds;

/// A jitter distribution added on top of a link's base latency.
///
/// `mean` is the mean extra delay in seconds and `sigma` the lognormal shape
/// parameter; `sigma == 0` collapses to a deterministic `mean` offset, and a
/// zero `mean` disables jitter entirely (hypercluster links).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Mean additional delay in seconds.
    pub mean: Seconds,
    /// Lognormal shape parameter (0 = deterministic).
    pub sigma: f64,
}

impl JitterModel {
    /// A jitter-free model, used for NVLink and InfiniBand fabrics.
    pub const NONE: JitterModel = JitterModel {
        mean: 0.0,
        sigma: 0.0,
    };

    /// Creates a jitter model with the given mean delay and shape.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or `sigma` is negative, which would not
    /// describe a delay distribution.
    pub fn new(mean: Seconds, sigma: f64) -> Self {
        assert!(mean >= 0.0, "jitter mean must be non-negative");
        assert!(sigma >= 0.0, "jitter sigma must be non-negative");
        JitterModel { mean, sigma }
    }

    /// Returns true if this model never adds delay.
    pub fn is_none(&self) -> bool {
        self.mean == 0.0
    }

    /// Creates a deterministic sampler for this model from a seed.
    pub fn sampler(&self, seed: u64) -> JitterSampler {
        JitterSampler::new(*self, seed)
    }

    /// The mean of the distribution (useful for jitter-agnostic estimates).
    pub fn mean_delay(&self) -> Seconds {
        self.mean
    }
}

/// Draws one jitter value from `model` using an external RNG.
///
/// Useful for simulators that own a single RNG and sample jitter for many
/// different links.
pub fn sample_jitter<R: rand::Rng>(model: &JitterModel, rng: &mut R) -> Seconds {
    if model.mean > 0.0 && model.sigma > 0.0 {
        let mu = model.mean.ln() - model.sigma * model.sigma / 2.0;
        let d = LogNormal::new(mu, model.sigma).expect("valid lognormal parameters");
        d.sample(rng)
    } else {
        model.mean
    }
}

/// A seeded sampler drawing successive jitter values from a [`JitterModel`].
#[derive(Debug, Clone)]
pub struct JitterSampler {
    model: JitterModel,
    dist: Option<LogNormal<f64>>,
    rng: StdRng,
}

impl JitterSampler {
    /// Creates a sampler with the given deterministic seed.
    pub fn new(model: JitterModel, seed: u64) -> Self {
        // A lognormal with parameters (mu, sigma) has mean exp(mu + sigma^2/2);
        // solve for mu so the sampler's mean matches `model.mean`.
        let dist = if model.mean > 0.0 && model.sigma > 0.0 {
            let mu = model.mean.ln() - model.sigma * model.sigma / 2.0;
            Some(LogNormal::new(mu, model.sigma).expect("valid lognormal parameters"))
        } else {
            None
        };
        JitterSampler {
            model,
            dist,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the next jitter value in seconds.
    pub fn sample(&mut self) -> Seconds {
        match &self.dist {
            Some(d) => d.sample(&mut self.rng),
            None => self.model.mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_samples_zero() {
        let mut s = JitterModel::NONE.sampler(1);
        for _ in 0..10 {
            assert_eq!(s.sample(), 0.0);
        }
    }

    #[test]
    fn zero_sigma_is_deterministic_mean() {
        let mut s = JitterModel::new(0.002, 0.0).sampler(7);
        assert_eq!(s.sample(), 0.002);
        assert_eq!(s.sample(), 0.002);
    }

    #[test]
    fn sampler_is_reproducible_across_seeds() {
        let m = JitterModel::new(0.001, 0.8);
        let a: Vec<f64> = {
            let mut s = m.sampler(42);
            (0..16).map(|_| s.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut s = m.sampler(42);
            (0..16).map(|_| s.sample()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut s = m.sampler(43);
            (0..16).map(|_| s.sample()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn empirical_mean_matches_model_mean() {
        let m = JitterModel::new(0.004, 0.5);
        let mut s = m.sampler(9);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| s.sample()).sum();
        let emp = total / n as f64;
        assert!(
            (emp - 0.004).abs() / 0.004 < 0.02,
            "empirical mean {emp} too far from 0.004"
        );
    }

    #[test]
    fn samples_are_positive() {
        let mut s = JitterModel::new(0.001, 1.2).sampler(3);
        for _ in 0..1000 {
            assert!(s.sample() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "jitter mean must be non-negative")]
    fn negative_mean_rejected() {
        let _ = JitterModel::new(-1.0, 0.1);
    }
}
