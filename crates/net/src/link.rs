//! Link classes and their bandwidth/latency/jitter parameters.
//!
//! The fabrics evaluated in the paper (Section 7, "Experimental setup"):
//! 10 Gbps Ethernet between commodity Azure VMs, 2.4 Tbps NVLink inside a
//! DGX-2, PCIe between GPUs of a multi-GPU VM, and 200 Gbps InfiniBand
//! between DGX-2 nodes of the hypercluster.

use serde::{Deserialize, Serialize};

use crate::jitter::JitterModel;
use crate::units::{gbps, micros, millis, tbps, BytesPerSec, Seconds};

/// The class of fabric connecting a pair of GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// NVLink inside a DGX-2: 2.4 Tbps all-to-all, negligible latency.
    NvLink,
    /// PCIe between GPUs within a commodity multi-GPU VM.
    PcieIntra,
    /// Commodity Ethernet between VMs (the low-priority setting).
    EthernetInter,
    /// InfiniBand between hypercluster nodes.
    InfinibandInter,
}

/// Bandwidth, base latency and jitter of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Which fabric this is.
    pub class: LinkClass,
    /// Point-to-point bandwidth available to one flow with no contention.
    pub bandwidth: BytesPerSec,
    /// Base one-way latency in seconds.
    pub latency: Seconds,
    /// Jitter added on top of the base latency.
    pub jitter: JitterModel,
}

impl Link {
    /// NVLink inside a DGX-2 (2.4 Tbps all-to-all, ~3 us latency, no jitter).
    pub fn nvlink() -> Self {
        Link {
            class: LinkClass::NvLink,
            bandwidth: tbps(2.4),
            latency: micros(3.0),
            jitter: JitterModel::NONE,
        }
    }

    /// PCIe 3.0 x16 between GPUs of the same commodity VM (~12 GB/s usable).
    pub fn pcie() -> Self {
        Link {
            class: LinkClass::PcieIntra,
            bandwidth: 12.0e9,
            latency: micros(10.0),
            jitter: JitterModel::NONE,
        }
    }

    /// Commodity datacenter Ethernet between Azure VMs.
    ///
    /// Each NC-series VM has a 10 Gbps NIC; pairwise connectivity is routed
    /// through multiple levels of bottleneck switches (paper Section 7), so
    /// the effective cross-VM bandwidth is below NIC line rate and
    /// multi-megabyte tensor transfers see heavy-tailed delivery jitter
    /// (TCP retransmits, incast, cross-traffic) — the latency/jitter the
    /// paper's Observation 3 is about.
    pub fn ethernet() -> Self {
        Link {
            class: LinkClass::EthernetInter,
            bandwidth: gbps(7.0),
            latency: millis(0.25),
            jitter: JitterModel::new(millis(2.5), 1.6),
        }
    }

    /// InfiniBand between DGX-2 nodes (200 Gbps, ~5 us latency, no jitter).
    pub fn infiniband() -> Self {
        Link {
            class: LinkClass::InfinibandInter,
            bandwidth: gbps(200.0),
            latency: micros(5.0),
            jitter: JitterModel::NONE,
        }
    }

    /// Returns this link with its bandwidth scaled by `factor`.
    ///
    /// Used by the Table 5 experiment, which evaluates GPipe vs Varuna under
    /// a 1.5x and 2x slower network.
    pub fn scaled_bandwidth(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale factor must be positive");
        self.bandwidth *= factor;
        self
    }

    /// Mean one-way delay including jitter (for jitter-agnostic estimates).
    pub fn mean_latency(&self) -> Seconds {
        self.latency + self.jitter.mean_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_is_orders_of_magnitude_faster_than_ethernet() {
        let ratio = Link::nvlink().bandwidth / Link::ethernet().bandwidth;
        assert!(ratio > 100.0, "NVLink/Ethernet ratio was {ratio}");
    }

    #[test]
    fn ethernet_has_jitter_hypercluster_does_not() {
        assert!(!Link::ethernet().jitter.is_none());
        assert!(Link::nvlink().jitter.is_none());
        assert!(Link::infiniband().jitter.is_none());
    }

    #[test]
    fn scaled_bandwidth_scales_only_bandwidth() {
        let e = Link::ethernet();
        let s = e.scaled_bandwidth(0.5);
        assert_eq!(s.bandwidth, e.bandwidth * 0.5);
        assert_eq!(s.latency, e.latency);
        assert_eq!(s.jitter, e.jitter);
    }

    #[test]
    fn mean_latency_includes_jitter() {
        let e = Link::ethernet();
        assert!(e.mean_latency() > e.latency);
        let n = Link::nvlink();
        assert_eq!(n.mean_latency(), n.latency);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_factor_rejected() {
        let _ = Link::ethernet().scaled_bandwidth(0.0);
    }
}
