//! Point-to-point transfer cost model.
//!
//! A transfer of `bytes` over a link with one-way latency `l` and available
//! bandwidth `b` completes in `l + jitter + bytes / b`. When several flows
//! leave the same node concurrently they share the node's NIC, modeled as an
//! equal (max-min fair) split — the progressive-filling allocation that TCP
//! approximates on a shared bottleneck.

use serde::{Deserialize, Serialize};

use crate::link::Link;
use crate::units::{Bytes, BytesPerSec, Seconds};

/// Description of one point-to-point transfer for costing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Payload size in bytes.
    pub bytes: Bytes,
    /// Number of flows concurrently sharing the sender-side bottleneck
    /// (including this one). `1` means the flow has the link to itself.
    pub concurrent_flows: usize,
}

impl TransferSpec {
    /// A transfer with exclusive use of the link.
    pub fn exclusive(bytes: Bytes) -> Self {
        TransferSpec {
            bytes,
            concurrent_flows: 1,
        }
    }
}

/// Effective per-flow bandwidth when `flows` flows share capacity `capacity`.
///
/// # Panics
///
/// Panics if `flows` is zero.
pub fn fair_share(capacity: BytesPerSec, flows: usize) -> BytesPerSec {
    assert!(flows > 0, "at least one flow must be present");
    capacity / flows as f64
}

/// Time to complete a transfer over `link`, with `jitter` already sampled.
///
/// The serialization time uses the smaller of the link's own bandwidth and
/// the fair share of the sender bottleneck `bottleneck` across
/// `spec.concurrent_flows` flows.
pub fn transfer_time(
    spec: TransferSpec,
    link: Link,
    bottleneck: BytesPerSec,
    jitter: Seconds,
) -> Seconds {
    assert!(spec.bytes >= 0.0, "transfer size must be non-negative");
    let share = fair_share(bottleneck, spec.concurrent_flows);
    let bw = link.bandwidth.min(share);
    link.latency + jitter + spec.bytes / bw
}

/// Mean transfer time, using the link's mean jitter rather than a sample.
pub fn mean_transfer_time(spec: TransferSpec, link: Link, bottleneck: BytesPerSec) -> Seconds {
    transfer_time(spec, link, bottleneck, link.jitter.mean_delay())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::units::{gbps, mib};

    #[test]
    fn exclusive_transfer_is_latency_plus_serialization() {
        let link = Link {
            bandwidth: gbps(8.0),
            ..Link::ethernet()
        };
        let t = transfer_time(TransferSpec::exclusive(1e9), link, link.bandwidth, 0.0);
        // 1 GB at 1 GB/s plus 0.25 ms latency.
        assert!((t - (1.0 + 0.00025)).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn concurrent_flows_halve_bandwidth() {
        let link = Link::ethernet();
        let solo = transfer_time(
            TransferSpec::exclusive(mib(100.0)),
            link,
            link.bandwidth,
            0.0,
        );
        let shared = transfer_time(
            TransferSpec {
                bytes: mib(100.0),
                concurrent_flows: 2,
            },
            link,
            link.bandwidth,
            0.0,
        );
        let serialization = solo - link.latency;
        assert!((shared - link.latency - 2.0 * serialization).abs() < 1e-9);
    }

    #[test]
    fn link_bandwidth_caps_fair_share() {
        // A huge bottleneck capacity cannot push a flow past the link rate.
        let link = Link::ethernet();
        let t1 = transfer_time(
            TransferSpec::exclusive(mib(10.0)),
            link,
            link.bandwidth,
            0.0,
        );
        let t2 = transfer_time(
            TransferSpec::exclusive(mib(10.0)),
            link,
            link.bandwidth * 100.0,
            0.0,
        );
        assert_eq!(t1, t2);
    }

    #[test]
    fn jitter_adds_directly() {
        let link = Link::ethernet();
        let base = transfer_time(TransferSpec::exclusive(mib(1.0)), link, link.bandwidth, 0.0);
        let jit = transfer_time(
            TransferSpec::exclusive(mib(1.0)),
            link,
            link.bandwidth,
            0.003,
        );
        assert!((jit - base - 0.003).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = Link::infiniband();
        let t = transfer_time(TransferSpec::exclusive(0.0), link, link.bandwidth, 0.0);
        assert_eq!(t, link.latency);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn zero_flows_rejected() {
        let _ = fair_share(1e9, 0);
    }
}
