//! Unit helpers used throughout the network and execution substrates.
//!
//! All times are `f64` seconds, all sizes `f64` bytes, and all bandwidths
//! `f64` bytes per second. These helpers keep call sites readable and make
//! unit mistakes greppable.

/// Seconds, the base time unit of the substrate.
pub type Seconds = f64;

/// Bytes, the base size unit of the substrate.
pub type Bytes = f64;

/// Bytes per second, the base bandwidth unit of the substrate.
pub type BytesPerSec = f64;

/// Converts a bandwidth in gigabits per second to bytes per second.
///
/// # Examples
///
/// ```
/// use varuna_net::units::gbps;
/// assert_eq!(gbps(10.0), 1.25e9);
/// ```
pub fn gbps(g: f64) -> BytesPerSec {
    g * 1e9 / 8.0
}

/// Converts a bandwidth in terabits per second to bytes per second.
pub fn tbps(t: f64) -> BytesPerSec {
    gbps(t * 1000.0)
}

/// Converts mebibytes to bytes.
pub fn mib(m: f64) -> Bytes {
    m * 1024.0 * 1024.0
}

/// Converts gibibytes to bytes.
pub fn gib(g: f64) -> Bytes {
    g * 1024.0 * 1024.0 * 1024.0
}

/// Converts microseconds to seconds.
pub fn micros(u: f64) -> Seconds {
    u * 1e-6
}

/// Converts milliseconds to seconds.
pub fn millis(ms: f64) -> Seconds {
    ms * 1e-3
}

/// Formats a byte count with a binary-prefix suffix for human-readable logs.
///
/// # Examples
///
/// ```
/// use varuna_net::units::format_bytes;
/// assert_eq!(format_bytes(1536.0), "1.50 KiB");
/// ```
pub fn format_bytes(b: Bytes) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut i = 0;
    while v >= 1024.0 && i < UNITS.len() - 1 {
        v /= 1024.0;
        i += 1;
    }
    if i == 0 {
        format!("{v:.0} {}", UNITS[i])
    } else {
        format!("{v:.2} {}", UNITS[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_converts_to_bytes_per_sec() {
        assert_eq!(gbps(8.0), 1e9);
        assert_eq!(tbps(2.4), gbps(2400.0));
    }

    #[test]
    fn size_helpers_are_binary_prefixed() {
        assert_eq!(mib(1.0), 1_048_576.0);
        assert_eq!(gib(1.0), 1024.0 * mib(1.0));
    }

    #[test]
    fn time_helpers_scale_correctly() {
        assert!((micros(1.0) - 1e-6).abs() < 1e-18);
        assert!((millis(1.5) - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn format_bytes_picks_sensible_prefix() {
        assert_eq!(format_bytes(10.0), "10 B");
        assert_eq!(format_bytes(mib(7.5)), "7.50 MiB");
        assert_eq!(format_bytes(gib(2.4)), "2.40 GiB");
    }
}
