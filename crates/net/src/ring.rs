//! Data-plane ring allreduce.
//!
//! The analytical model in [`crate::collective`] prices the collective; this
//! module actually executes it. The miniature training engine uses it to
//! average gradients across data-parallel replicas exactly the way a real
//! ring allreduce would (chunked reduce-scatter followed by all-gather), so
//! that the reduction order — and therefore the floating-point result — is
//! the one a D-ring produces, not a naive left-to-right sum.

/// Executes an in-place ring allreduce (sum) across `bufs`.
///
/// After the call every buffer contains the element-wise sum of all input
/// buffers, computed with the chunked reduce-scatter / all-gather schedule of
/// a `D`-participant ring.
///
/// # Panics
///
/// Panics if `bufs` is empty or the buffers have differing lengths.
pub fn ring_allreduce_sum(bufs: &mut [Vec<f32>]) {
    let d = bufs.len();
    assert!(d > 0, "allreduce needs at least one participant");
    let n = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == n),
        "buffers must have equal length"
    );
    if d == 1 || n == 0 {
        return;
    }

    // Chunk c covers chunk_range(c); chunks are as even as possible.
    let bounds: Vec<(usize, usize)> = (0..d)
        .map(|c| {
            let lo = c * n / d;
            let hi = (c + 1) * n / d;
            (lo, hi)
        })
        .collect();

    // Reduce-scatter: after step s, rank r has accumulated s+2 contributions
    // in chunk (r - s - 1) mod d. After d-1 steps, rank r holds the full sum
    // of chunk (r + 1) mod d.
    for s in 0..d - 1 {
        for r in 0..d {
            let src = r;
            let dst = (r + 1) % d;
            let c = (r + d - s) % d;
            let (lo, hi) = bounds[c];
            // Read the source chunk, then accumulate into the destination.
            let chunk: Vec<f32> = bufs[src][lo..hi].to_vec();
            for (i, v) in chunk.into_iter().enumerate() {
                bufs[dst][lo + i] += v;
            }
        }
    }

    // All-gather: rank (c + d - 1) mod d owns the fully reduced chunk c;
    // circulate each chunk around the ring d-1 times.
    for s in 0..d - 1 {
        for r in 0..d {
            let src = r;
            let dst = (r + 1) % d;
            let c = (r + 1 + d - s) % d;
            let (lo, hi) = bounds[c];
            let chunk: Vec<f32> = bufs[src][lo..hi].to_vec();
            bufs[dst][lo..hi].copy_from_slice(&chunk);
        }
    }
}

/// Executes a ring reduce-scatter: afterwards participant `r` holds the
/// fully reduced chunk `r` (other positions are left in an unspecified
/// partially-reduced state). Returns the chunk boundaries.
///
/// This is the first half of the ring allreduce, exposed separately
/// because sharded state (ZeRO-style optimizer shards, Varuna's sharded
/// checkpoints) stops here: each participant persists only its chunk.
///
/// # Panics
///
/// Panics if `bufs` is empty or lengths differ.
pub fn ring_reduce_scatter(bufs: &mut [Vec<f32>]) -> Vec<(usize, usize)> {
    let d = bufs.len();
    assert!(d > 0, "reduce-scatter needs at least one participant");
    let n = bufs[0].len();
    assert!(
        bufs.iter().all(|b| b.len() == n),
        "buffers must have equal length"
    );
    let bounds: Vec<(usize, usize)> = (0..d).map(|c| (c * n / d, (c + 1) * n / d)).collect();
    if d == 1 || n == 0 {
        return bounds;
    }
    // After step s, rank (c + s + 1) mod d has accumulated s + 2
    // contributions of chunk c; after d-1 steps rank (c + d - 1) mod d has
    // them all. Shift one more hop so rank r owns chunk r.
    for s in 0..d - 1 {
        for r in 0..d {
            let dst = (r + 1) % d;
            let c = (r + d - s) % d;
            let (lo, hi) = bounds[c];
            let chunk: Vec<f32> = bufs[r][lo..hi].to_vec();
            for (i, v) in chunk.into_iter().enumerate() {
                bufs[dst][lo + i] += v;
            }
        }
    }
    // Owner of fully reduced chunk c is (c + d - 1) mod d; move it to c.
    for c in 0..d {
        let owner = (c + d - 1) % d;
        if owner != c {
            let (lo, hi) = bounds[c];
            let chunk: Vec<f32> = bufs[owner][lo..hi].to_vec();
            bufs[c][lo..hi].copy_from_slice(&chunk);
        }
    }
    bounds
}

/// Executes a ring all-gather of per-participant chunks: participant `r`
/// contributes `bufs[r][bounds[r]]` and afterwards every buffer holds all
/// chunks. The inverse of the scatter in [`ring_reduce_scatter`].
pub fn ring_all_gather(bufs: &mut [Vec<f32>], bounds: &[(usize, usize)]) {
    let d = bufs.len();
    assert_eq!(bounds.len(), d, "one chunk per participant");
    if d <= 1 {
        return;
    }
    // Circulate every chunk around the ring d - 1 times.
    for _ in 0..d - 1 {
        for c in 0..d {
            let (lo, hi) = bounds[c];
            let chunk: Vec<f32> = bufs[c][lo..hi].to_vec();
            for (r, buf) in bufs.iter_mut().enumerate() {
                if r != c {
                    buf[lo..hi].copy_from_slice(&chunk);
                }
            }
        }
    }
}

/// Executes an in-place ring allreduce that averages across participants.
pub fn ring_allreduce_mean(bufs: &mut [Vec<f32>]) {
    let d = bufs.len() as f32;
    ring_allreduce_sum(bufs);
    for b in bufs.iter_mut() {
        for v in b.iter_mut() {
            *v /= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_sum(bufs: &[Vec<f32>]) -> Vec<f32> {
        let n = bufs[0].len();
        let mut out = vec![0.0f32; n];
        for b in bufs {
            for (o, v) in out.iter_mut().zip(b) {
                *o += v;
            }
        }
        out
    }

    #[test]
    fn two_participants_sum() {
        let mut bufs = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 20.0, 30.0, 40.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(bufs[0], bufs[1]);
    }

    #[test]
    fn single_participant_is_identity() {
        let mut bufs = vec![vec![5.0, -1.0]];
        ring_allreduce_sum(&mut bufs);
        assert_eq!(bufs[0], vec![5.0, -1.0]);
    }

    #[test]
    fn mean_divides_by_participants() {
        let mut bufs = vec![vec![2.0, 4.0], vec![4.0, 8.0], vec![6.0, 0.0]];
        ring_allreduce_mean(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![4.0, 4.0]);
        }
    }

    #[test]
    fn uneven_chunking_handles_small_vectors() {
        // n < d exercises empty chunks.
        let mut bufs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0], vec![5.0]];
        ring_allreduce_sum(&mut bufs);
        for b in &bufs {
            assert_eq!(b, &vec![15.0]);
        }
    }

    #[test]
    fn empty_vectors_are_fine() {
        let mut bufs = vec![vec![], vec![], vec![]];
        ring_allreduce_sum(&mut bufs);
        assert!(bufs.iter().all(|b| b.is_empty()));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let mut bufs = vec![vec![1.0, 2.0], vec![1.0]];
        ring_allreduce_sum(&mut bufs);
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_summed_chunk() {
        let mut bufs = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![10.0, 20.0, 30.0, 40.0],
            vec![100.0, 200.0, 300.0, 400.0],
            vec![1000.0, 2000.0, 3000.0, 4000.0],
        ];
        let bounds = ring_reduce_scatter(&mut bufs);
        for (r, &(lo, hi)) in bounds.iter().enumerate() {
            for i in lo..hi {
                let want = [1111.0, 2222.0, 3333.0, 4444.0][i];
                assert_eq!(bufs[r][i], want, "rank {r} chunk mismatch at {i}");
            }
        }
    }

    #[test]
    fn scatter_then_gather_equals_allreduce() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let bufs: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..23).map(|_| rng.gen_range(-4.0f32..4.0)).collect())
            .collect();
        let mut a = bufs.clone();
        ring_allreduce_sum(&mut a);
        let mut b = bufs.clone();
        let bounds = ring_reduce_scatter(&mut b);
        ring_all_gather(&mut b, &bounds);
        for (x, y) in a.iter().zip(&b) {
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() < 1e-3, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn sharded_checkpoint_roundtrip_via_collectives() {
        // The §4.5 sharded-checkpoint story at the collective level: each
        // replica persists only its reduce-scattered chunk; restoring is
        // an all-gather of the chunks.
        let state: Vec<Vec<f32>> = (0..4).map(|r| vec![r as f32 + 1.0; 16]).collect();
        let mut work = state.clone();
        let bounds = ring_reduce_scatter(&mut work);
        // "Persist" chunks.
        let shards: Vec<Vec<f32>> = bounds
            .iter()
            .enumerate()
            .map(|(r, &(lo, hi))| work[r][lo..hi].to_vec())
            .collect();
        // "Restore": place shards and gather.
        let mut restored = vec![vec![0.0f32; 16]; 4];
        for (r, &(lo, hi)) in bounds.iter().enumerate() {
            restored[r][lo..hi].copy_from_slice(&shards[r]);
        }
        ring_all_gather(&mut restored, &bounds);
        for b in &restored {
            assert!(b.iter().all(|&v| v == 10.0), "sum of 1+2+3+4 everywhere");
        }
    }

    proptest! {
        #[test]
        fn matches_naive_sum(
            d in 1usize..9,
            n in 0usize..64,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let bufs: Vec<Vec<f32>> = (0..d)
                .map(|_| (0..n).map(|_| rng.gen_range(-8.0f32..8.0)).collect())
                .collect();
            let expected = naive_sum(&bufs);
            let mut got = bufs.clone();
            ring_allreduce_sum(&mut got);
            for b in &got {
                for (x, y) in b.iter().zip(&expected) {
                    prop_assert!((x - y).abs() <= 1e-3 * (1.0 + y.abs()));
                }
            }
            // All participants agree exactly.
            for b in &got[1..] {
                prop_assert_eq!(b, &got[0]);
            }
        }
    }
}
