//! Analytical cost models for collective operations.
//!
//! Varuna's calibration measures `AR_i(D)`, the gradient allreduce time for
//! cut-point `i` on a ring of size `D`, including the case where `k`
//! allreduces are in flight on the same node (Table 2 and Section 4.3).
//! This module provides the closed-form cost of the bandwidth-optimal ring
//! allreduce of Patarasuk & Yuan, which those measurements calibrate.

use serde::{Deserialize, Serialize};

use crate::link::Link;
use crate::transfer::fair_share;
use crate::units::{Bytes, Seconds};

/// Parameters of one allreduce invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllreduceSpec {
    /// Bytes contributed by (and returned to) each participant.
    pub bytes: Bytes,
    /// Ring size: the number of participants `D`.
    pub ring_size: usize,
    /// Number of allreduces concurrently in flight sharing each node's NIC
    /// (`k` in the paper; 1 means exclusive use).
    pub in_flight: usize,
}

impl AllreduceSpec {
    /// An allreduce with exclusive use of the network.
    pub fn exclusive(bytes: Bytes, ring_size: usize) -> Self {
        AllreduceSpec {
            bytes,
            ring_size,
            in_flight: 1,
        }
    }
}

/// Time for a ring allreduce over `link`.
///
/// The ring algorithm runs `2(D-1)` steps (reduce-scatter then all-gather),
/// each moving `bytes / D` per participant, so total wire time per
/// participant is `2 (D-1)/D * bytes / bw` plus `2(D-1)` latency hops. With
/// `D == 1` the collective is a no-op and costs zero.
///
/// # Panics
///
/// Panics if `ring_size` or `in_flight` is zero.
pub fn allreduce_time(spec: AllreduceSpec, link: Link) -> Seconds {
    assert!(spec.ring_size > 0, "ring size must be positive");
    assert!(spec.in_flight > 0, "in-flight count must be positive");
    let d = spec.ring_size as f64;
    if spec.ring_size == 1 {
        return 0.0;
    }
    let bw = fair_share(link.bandwidth, spec.in_flight);
    let steps = 2.0 * (d - 1.0);
    steps * (spec.bytes / d / bw + link.mean_latency())
}

/// Time for a hierarchical allreduce: reduce within each node over `intra`,
/// ring allreduce of one representative per node over `inter`, then an
/// intra-node broadcast.
///
/// `local_size` is the number of participants per node; `nodes` the number of
/// nodes. Used when data-parallel replicas of a stage span multi-GPU VMs.
pub fn hierarchical_allreduce_time(
    bytes: Bytes,
    local_size: usize,
    nodes: usize,
    intra: Link,
    inter: Link,
    in_flight: usize,
) -> Seconds {
    assert!(local_size > 0 && nodes > 0, "participants must be positive");
    // Local reduce and final broadcast: one payload traversal each.
    let local = if local_size > 1 {
        2.0 * (bytes / intra.bandwidth + intra.mean_latency())
    } else {
        0.0
    };
    let cross = allreduce_time(
        AllreduceSpec {
            bytes,
            ring_size: nodes,
            in_flight,
        },
        inter,
    );
    local + cross
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::units::mib;

    #[test]
    fn singleton_ring_is_free() {
        assert_eq!(
            allreduce_time(AllreduceSpec::exclusive(mib(100.0), 1), Link::ethernet()),
            0.0
        );
    }

    #[test]
    fn wire_time_approaches_2x_payload_for_large_rings() {
        // As D grows, 2(D-1)/D -> 2, so serialization time tends to
        // 2 * bytes / bw (the bandwidth-optimality property).
        let link = Link::infiniband(); // negligible latency
        let bytes = mib(512.0);
        let t = allreduce_time(AllreduceSpec::exclusive(bytes, 64), link);
        let bound = 2.0 * bytes / link.bandwidth;
        assert!(t > bound * 0.95 && t < bound * 1.1, "t={t} bound={bound}");
    }

    #[test]
    fn allreduce_time_is_monotone_in_ring_size() {
        let link = Link::ethernet();
        let mut prev = 0.0;
        for d in 1..20 {
            let t = allreduce_time(AllreduceSpec::exclusive(mib(64.0), d), link);
            assert!(t >= prev, "not monotone at D={d}");
            prev = t;
        }
    }

    #[test]
    fn in_flight_contention_scales_serialization() {
        let link = Link::infiniband();
        let solo = allreduce_time(AllreduceSpec::exclusive(mib(256.0), 8), link);
        let busy = allreduce_time(
            AllreduceSpec {
                bytes: mib(256.0),
                ring_size: 8,
                in_flight: 4,
            },
            link,
        );
        // Latency terms are tiny on IB so the ratio should be close to 4.
        assert!((busy / solo - 4.0).abs() < 0.05, "ratio {}", busy / solo);
    }

    #[test]
    fn hierarchical_beats_flat_ring_over_slow_inter() {
        // 4 nodes x 4 GPUs: flat 16-ring over Ethernet vs NVLink-local
        // reduce + 4-ring over Ethernet.
        let bytes = mib(200.0);
        let flat = allreduce_time(AllreduceSpec::exclusive(bytes, 16), Link::ethernet());
        let hier = hierarchical_allreduce_time(bytes, 4, 4, Link::nvlink(), Link::ethernet(), 1);
        assert!(hier < flat, "hier {hier} >= flat {flat}");
    }

    #[test]
    fn single_gpu_nodes_skip_local_phase() {
        let bytes = mib(10.0);
        let h = hierarchical_allreduce_time(bytes, 1, 6, Link::pcie(), Link::ethernet(), 1);
        let flat = allreduce_time(AllreduceSpec::exclusive(bytes, 6), Link::ethernet());
        assert_eq!(h, flat);
    }
}
