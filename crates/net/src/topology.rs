//! Cluster network topology: GPU endpoints grouped into nodes.
//!
//! A topology answers one question for the execution emulator: what [`Link`]
//! connects GPU `a` to GPU `b`? GPUs on the same node talk over the
//! intra-node fabric (NVLink or PCIe); GPUs on different nodes go over the
//! inter-node fabric (Ethernet or InfiniBand) and additionally share their
//! node's NIC.

use serde::{Deserialize, Serialize};

use crate::link::Link;
use crate::units::BytesPerSec;

/// Identifier of a GPU endpoint (0-based, dense).
pub type Endpoint = usize;

/// Identifier of a physical node / VM (0-based, dense).
pub type NodeId = usize;

/// A cluster topology: `num_nodes` nodes of `gpus_per_node` GPUs each.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    num_nodes: usize,
    gpus_per_node: usize,
    intra: Link,
    inter: Link,
    nic_bandwidth: BytesPerSec,
}

impl Topology {
    /// Creates a topology from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` or `gpus_per_node` is zero.
    pub fn new(
        num_nodes: usize,
        gpus_per_node: usize,
        intra: Link,
        inter: Link,
        nic_bandwidth: BytesPerSec,
    ) -> Self {
        assert!(num_nodes > 0, "topology needs at least one node");
        assert!(gpus_per_node > 0, "nodes need at least one GPU");
        Topology {
            num_nodes,
            gpus_per_node,
            intra,
            inter,
            nic_bandwidth,
        }
    }

    /// Commodity cluster of `n` single-GPU VMs (Azure NC6_v3-like).
    ///
    /// All traffic crosses Ethernet; there is no intra-node fabric in play
    /// (the intra link is still defined for uniformity but never selected).
    pub fn commodity_1gpu(n: usize) -> Self {
        Topology::new(
            n,
            1,
            Link::pcie(),
            Link::ethernet(),
            Link::ethernet().bandwidth,
        )
    }

    /// Commodity cluster of `n_vms` four-GPU VMs (Azure NC24_v3-like).
    ///
    /// NC24-class VMs carry a 24 Gbps NIC (vs 10 Gbps on the 1-GPU SKU);
    /// with protocol overheads ~18 Gbps is attainable and shared by the
    /// VM's four GPUs.
    pub fn commodity_4gpu(n_vms: usize) -> Self {
        let inter = Link {
            bandwidth: crate::units::gbps(18.0),
            ..Link::ethernet()
        };
        Topology::new(n_vms, 4, Link::pcie(), inter, inter.bandwidth)
    }

    /// Hypercluster of `n` DGX-2 nodes: 16 GPUs on NVLink per node,
    /// 200 Gbps InfiniBand between nodes.
    pub fn hypercluster(n: usize) -> Self {
        Topology::new(
            n,
            16,
            Link::nvlink(),
            Link::infiniband(),
            Link::infiniband().bandwidth,
        )
    }

    /// Returns this topology with inter-node bandwidth scaled by `factor`
    /// (used for the Table 5 slow-network sweep).
    pub fn scaled_inter_bandwidth(mut self, factor: f64) -> Self {
        self.inter = self.inter.scaled_bandwidth(factor);
        self.nic_bandwidth *= factor;
        self
    }

    /// Total number of GPU endpoints.
    pub fn num_gpus(&self) -> usize {
        self.num_nodes * self.gpus_per_node
    }

    /// Number of nodes (VMs).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// The node hosting endpoint `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn node_of(&self, e: Endpoint) -> NodeId {
        assert!(e < self.num_gpus(), "endpoint {e} out of range");
        e / self.gpus_per_node
    }

    /// Whether two endpoints share a node.
    pub fn same_node(&self, a: Endpoint, b: Endpoint) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The link connecting two endpoints.
    pub fn link_between(&self, a: Endpoint, b: Endpoint) -> Link {
        if self.same_node(a, b) {
            self.intra
        } else {
            self.inter
        }
    }

    /// The intra-node link.
    pub fn intra_link(&self) -> Link {
        self.intra
    }

    /// The inter-node link.
    pub fn inter_link(&self) -> Link {
        self.inter
    }

    /// Per-node NIC capacity shared by all inter-node flows of that node.
    pub fn nic_bandwidth(&self) -> BytesPerSec {
        self.nic_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    #[test]
    fn single_gpu_vms_always_cross_ethernet() {
        let t = Topology::commodity_1gpu(8);
        assert_eq!(t.num_gpus(), 8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(t.link_between(a, b).class, LinkClass::EthernetInter);
                }
            }
        }
    }

    #[test]
    fn four_gpu_vm_grouping() {
        let t = Topology::commodity_4gpu(3);
        assert_eq!(t.num_gpus(), 12);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
        assert_eq!(t.link_between(0, 3).class, LinkClass::PcieIntra);
        assert_eq!(t.link_between(0, 4).class, LinkClass::EthernetInter);
    }

    #[test]
    fn hypercluster_uses_nvlink_and_infiniband() {
        let t = Topology::hypercluster(2);
        assert_eq!(t.num_gpus(), 32);
        assert_eq!(t.link_between(0, 15).class, LinkClass::NvLink);
        assert_eq!(t.link_between(0, 16).class, LinkClass::InfinibandInter);
    }

    #[test]
    fn scaled_inter_bandwidth_affects_inter_and_nic_only() {
        let t = Topology::commodity_1gpu(4);
        let s = t.clone().scaled_inter_bandwidth(0.5);
        assert_eq!(s.inter_link().bandwidth, t.inter_link().bandwidth * 0.5);
        assert_eq!(s.nic_bandwidth(), t.nic_bandwidth() * 0.5);
        assert_eq!(s.intra_link().bandwidth, t.intra_link().bandwidth);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        let t = Topology::commodity_1gpu(2);
        let _ = t.node_of(2);
    }
}
