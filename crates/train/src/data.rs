//! A deterministic synthetic corpus for convergence experiments.
//!
//! The paper trains on natural-language corpora we do not have; the
//! substitute is a seeded order-2 Markov source over a 27-symbol alphabet
//! with strongly structured transitions. It has real learnable statistics
//! (a transformer beats the unigram baseline decisively) while being
//! perfectly reproducible, which the Figure 9/10 analogs require.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Alphabet size of the synthetic corpus (26 letters + space).
pub const VOCAB: usize = 27;

/// A deterministic synthetic token stream.
#[derive(Debug, Clone)]
pub struct Corpus {
    tokens: Vec<usize>,
}

impl Corpus {
    /// Generates `len` tokens from an order-2 Markov chain seeded by
    /// `seed`. The transition structure is fixed (derived from the seed),
    /// so two corpora with the same arguments are identical.
    pub fn synthetic(len: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // A sparse transition table: each (prev2, prev1) context prefers
        // 3 successors with 70/20/10 odds — enough structure to learn.
        let contexts = VOCAB * VOCAB;
        let prefs: Vec<[usize; 3]> = (0..contexts)
            .map(|_| {
                [
                    rng.gen_range(0..VOCAB),
                    rng.gen_range(0..VOCAB),
                    rng.gen_range(0..VOCAB),
                ]
            })
            .collect();
        let mut tokens = Vec::with_capacity(len);
        let mut p2 = 0usize;
        let mut p1 = 1usize;
        for _ in 0..len {
            let ctx = &prefs[p2 * VOCAB + p1];
            let roll: f64 = rng.gen();
            let next = if roll < 0.70 {
                ctx[0]
            } else if roll < 0.90 {
                ctx[1]
            } else if roll < 0.97 {
                ctx[2]
            } else {
                rng.gen_range(0..VOCAB)
            };
            tokens.push(next);
            p2 = p1;
            p1 = next;
        }
        Corpus { tokens }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Deterministically samples a batch of `batch` windows of length
    /// `seq + 1`, returning `(inputs, next-token targets)` each of length
    /// `batch * seq`. `step` indexes the batch so successive steps see
    /// different data.
    pub fn batch(&self, batch: usize, seq: usize, step: u64) -> (Vec<usize>, Vec<usize>) {
        assert!(
            self.tokens.len() > seq + 1,
            "corpus too short for sequence length"
        );
        let mut rng = StdRng::seed_from_u64(0xDA7A ^ step);
        let mut inputs = Vec::with_capacity(batch * seq);
        let mut targets = Vec::with_capacity(batch * seq);
        for _ in 0..batch {
            let start = rng.gen_range(0..self.tokens.len() - seq - 1);
            inputs.extend_from_slice(&self.tokens[start..start + seq]);
            targets.extend_from_slice(&self.tokens[start + 1..start + seq + 1]);
        }
        (inputs, targets)
    }

    /// Empirical unigram entropy in nats — the loss floor of a
    /// context-free predictor, used as the baseline convergence bar.
    pub fn unigram_entropy(&self) -> f64 {
        let mut counts = vec![0usize; VOCAB];
        for &t in &self.tokens {
            counts[t] += 1;
        }
        let n = self.tokens.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::synthetic(5000, 7);
        let b = Corpus::synthetic(5000, 7);
        assert_eq!(a.tokens, b.tokens);
        let c = Corpus::synthetic(5000, 8);
        assert_ne!(a.tokens, c.tokens);
    }

    #[test]
    fn tokens_are_in_vocabulary() {
        let c = Corpus::synthetic(10_000, 1);
        assert!(c.tokens.iter().all(|&t| t < VOCAB));
        assert_eq!(c.len(), 10_000);
    }

    #[test]
    fn batches_are_deterministic_per_step_and_shaped() {
        let c = Corpus::synthetic(4000, 3);
        let (i1, t1) = c.batch(4, 16, 0);
        let (i2, t2) = c.batch(4, 16, 0);
        assert_eq!(i1, i2);
        assert_eq!(t1, t2);
        assert_eq!(i1.len(), 64);
        let (i3, _) = c.batch(4, 16, 1);
        assert_ne!(i1, i3, "different steps draw different windows");
        // Targets are the next tokens.
        for k in 0..16 - 1 {
            assert_eq!(t1[k], i1[k + 1]);
        }
    }

    #[test]
    fn corpus_has_learnable_structure() {
        // Markov structure => conditional entropy well below unigram
        // entropy. Estimate bigram conditional entropy and compare.
        // The source is order-2, so measure the trigram conditional
        // entropy H(next | prev2, prev1).
        let c = Corpus::synthetic(200_000, 5);
        let uni = c.unigram_entropy();
        let mut tri = std::collections::HashMap::<(usize, usize, usize), usize>::new();
        let mut ctx = std::collections::HashMap::<(usize, usize), usize>::new();
        for w in c.tokens.windows(3) {
            *tri.entry((w[0], w[1], w[2])).or_default() += 1;
            *ctx.entry((w[0], w[1])).or_default() += 1;
        }
        let n = (c.tokens.len() - 2) as f64;
        let mut cond = 0.0f64;
        for (&(a, b, z), &cnt) in &tri {
            let _ = z;
            let p = cnt as f64 / n;
            let p_given = cnt as f64 / ctx[&(a, b)] as f64;
            cond -= p * p_given.ln();
        }
        assert!(
            cond < 0.75 * uni,
            "conditional entropy {cond:.2} should beat unigram {uni:.2}"
        );
    }
}
