//! The `MiniGpt` decoder: embeddings, transformer blocks, tied LM head.
//!
//! Architecturally a scaled-down GPT-2: token + position embeddings, a
//! stack of pre-norm blocks (the cut-points), a final layer norm, and a
//! language-model head whose weights are tied to the token embedding —
//! the exact cross-partition shared parameter the paper's tracer exists to
//! catch (Section 5.2).

use serde::{Deserialize, Serialize};

use crate::layers::{Block, BlockCache, LayerNorm, LayerNormCache, Param};
use crate::ops::{cross_entropy, matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// Hyper-parameters of a [`MiniGpt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Channel dimension.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks (= cut-points).
    pub layers: usize,
    /// Whether the LM head ties to the token embedding.
    pub tied: bool,
    /// Init seed.
    pub seed: u64,
}

impl ModelConfig {
    /// A small config suitable for fast tests.
    pub fn tiny() -> Self {
        ModelConfig {
            vocab: 27,
            seq: 16,
            dim: 32,
            heads: 4,
            layers: 4,
            tied: true,
            seed: 42,
        }
    }
}

/// The decoder model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniGpt {
    /// Configuration.
    pub cfg: ModelConfig,
    /// Token embedding `[vocab × dim]` (also the LM head when tied).
    pub wte: Param,
    /// Position embedding `[seq × dim]`.
    pub wpe: Param,
    /// Transformer blocks.
    pub blocks: Vec<Block>,
    /// Final layer norm.
    pub ln_f: LayerNorm,
    /// Untied LM head `[vocab × dim]`, present only when `!cfg.tied`.
    pub head: Option<Param>,
}

/// Activation caches of one full forward pass.
pub struct ModelCache {
    /// Input to each block (block 0's input is the embedding output).
    pub block_inputs: Vec<Tensor>,
    /// Per-block caches.
    pub block_caches: Vec<BlockCache>,
    /// Input to the final layer norm.
    pub lnf_in: Tensor,
    /// Final layer norm cache.
    pub lnf_cache: LayerNormCache,
    /// Final layer norm output (the LM head input).
    pub lnf_out: Tensor,
    /// The token ids of this batch.
    pub tokens: Vec<usize>,
    /// Batch size.
    pub batch: usize,
}

impl MiniGpt {
    /// Builds a model from its config with deterministic initialization.
    pub fn new(cfg: ModelConfig) -> Self {
        let scale = 0.08;
        let wte = Param::new(Tensor::randn(cfg.vocab, cfg.dim, scale, cfg.seed), "wte");
        let wpe = Param::new(Tensor::randn(cfg.seq, cfg.dim, scale, cfg.seed + 1), "wpe");
        let blocks = (0..cfg.layers)
            .map(|i| {
                Block::new(
                    cfg.dim,
                    cfg.heads,
                    cfg.seed + 10 + 1000 * i as u64,
                    &format!("blk{i}"),
                )
            })
            .collect();
        let ln_f = LayerNorm::new(cfg.dim, "ln_f");
        let head = (!cfg.tied).then(|| {
            Param::new(
                Tensor::randn(cfg.vocab, cfg.dim, scale, cfg.seed + 2),
                "head",
            )
        });
        MiniGpt {
            cfg,
            wte,
            wpe,
            blocks,
            ln_f,
            head,
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        let mut me = self.clone();
        me.params_mut().iter().map(|p| p.w.len()).sum()
    }

    /// Embeds `tokens` (length `batch * seq`) into `[batch*seq, dim]`.
    pub fn embed(&self, tokens: &[usize], batch: usize) -> Tensor {
        let seq = self.cfg.seq;
        assert_eq!(tokens.len(), batch * seq, "token count mismatch");
        let mut x = Tensor::zeros(batch * seq, self.cfg.dim);
        for (i, &t) in tokens.iter().enumerate() {
            assert!(t < self.cfg.vocab, "token out of vocabulary");
            let pos = i % seq;
            let row = x.row_mut(i);
            for (v, (&e, &p)) in row
                .iter_mut()
                .zip(self.wte.w.row(t).iter().zip(self.wpe.w.row(pos)))
            {
                *v = e + p;
            }
        }
        x
    }

    /// Full forward pass to logits.
    pub fn forward(&self, tokens: &[usize], batch: usize) -> (Tensor, ModelCache) {
        let seq = self.cfg.seq;
        let mut x = self.embed(tokens, batch);
        let mut block_inputs = Vec::with_capacity(self.blocks.len());
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            block_inputs.push(x.clone());
            let (y, cache) = b.forward(&x, batch, seq);
            block_caches.push(cache);
            x = y;
        }
        let lnf_in = x;
        let (lnf_out, lnf_cache) = self.ln_f.forward(&lnf_in);
        let head_w = self.head.as_ref().unwrap_or(&self.wte);
        let logits = matmul_nt(&lnf_out, &head_w.w);
        (
            logits,
            ModelCache {
                block_inputs,
                block_caches,
                lnf_in,
                lnf_cache,
                lnf_out,
                tokens: tokens.to_vec(),
                batch,
            },
        )
    }

    /// Full backward pass from `dlogits`, accumulating all gradients.
    pub fn backward(&mut self, cache: &ModelCache, dlogits: &Tensor) {
        // LM head: logits = lnf_out @ W^T.
        let d_lnf_out = {
            let head_w = self.head.as_ref().unwrap_or(&self.wte);
            matmul(dlogits, &head_w.w)
        };
        let dw_head = matmul_tn(dlogits, &cache.lnf_out);
        match &mut self.head {
            Some(h) => h.g.add_assign(&dw_head),
            None => self.wte.g.add_assign(&dw_head),
        }
        let mut dx = self.ln_f.backward(&cache.lnf_cache, &d_lnf_out);
        for (b, c) in self.blocks.iter_mut().zip(&cache.block_caches).rev() {
            dx = b.backward(c, &dx);
        }
        // Embedding backward: scatter-add.
        let seq = self.cfg.seq;
        for (i, &t) in cache.tokens.iter().enumerate() {
            let pos = i % seq;
            let drow = dx.row(i).to_vec();
            for (g, v) in self.wte.g.row_mut(t).iter_mut().zip(&drow) {
                *g += v;
            }
            for (g, v) in self.wpe.g.row_mut(pos).iter_mut().zip(&drow) {
                *g += v;
            }
        }
    }

    /// Forward + loss + backward for one (micro-)batch. `targets` has one
    /// id per token position. Gradients accumulate (callers zero them at
    /// mini-batch boundaries). Returns the mean loss.
    pub fn loss_step(&mut self, tokens: &[usize], targets: &[usize], batch: usize) -> f32 {
        let (logits, cache) = self.forward(tokens, batch);
        let (loss, dlogits) = cross_entropy(&logits, targets);
        self.backward(&cache, &dlogits);
        loss
    }

    /// Loss only (no gradients), for evaluation.
    pub fn eval_loss(&self, tokens: &[usize], targets: &[usize], batch: usize) -> f32 {
        let (logits, _) = self.forward(tokens, batch);
        cross_entropy(&logits, targets).0
    }

    /// Autoregressively samples `count` tokens after `prompt`, greedily
    /// when `temperature == 0` and with softmax sampling otherwise.
    /// Deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or longer than the context.
    pub fn generate(
        &self,
        prompt: &[usize],
        count: usize,
        temperature: f32,
        seed: u64,
    ) -> Vec<usize> {
        use rand::{Rng, SeedableRng};
        assert!(
            !prompt.is_empty() && prompt.len() <= self.cfg.seq,
            "bad prompt length"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tokens = prompt.to_vec();
        for _ in 0..count {
            // Window of the last `seq` tokens, padded at the front with
            // the first token if needed.
            let mut window = vec![tokens[0]; self.cfg.seq];
            let take = tokens.len().min(self.cfg.seq);
            window[self.cfg.seq - take..].copy_from_slice(&tokens[tokens.len() - take..]);
            let (logits, _) = self.forward(&window, 1);
            let row = logits.row(self.cfg.seq - 1);
            let next = if temperature <= 0.0 {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("vocabulary is non-empty")
            } else {
                // Softmax sampling at the given temperature.
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let weights: Vec<f32> = row
                    .iter()
                    .map(|&l| ((l - max) / temperature).exp())
                    .collect();
                let total: f32 = weights.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                let mut pick = 0;
                for (i, w) in weights.iter().enumerate() {
                    draw -= w;
                    if draw <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            tokens.push(next);
        }
        tokens[prompt.len()..].to_vec()
    }

    /// All parameters, for the optimizer. Order is stable.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.wte, &mut self.wpe];
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.ln_f.params_mut());
        if let Some(h) = &mut self.head {
            p.push(h);
        }
        p
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    fn toy_batch(cfg: &ModelConfig, seed: u64) -> (Vec<usize>, Vec<usize>) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 2 * cfg.seq;
        let tokens: Vec<usize> = (0..n).map(|_| rng.gen_range(0..cfg.vocab)).collect();
        // Next-token targets with wraparound.
        let targets: Vec<usize> = (0..n).map(|i| tokens[(i + 1) % n]).collect();
        (tokens, targets)
    }

    #[test]
    fn logits_have_vocab_width() {
        let cfg = ModelConfig::tiny();
        let m = MiniGpt::new(cfg);
        let (tokens, _) = toy_batch(&cfg, 1);
        let (logits, _) = m.forward(&tokens, 2);
        assert_eq!(logits.rows, 2 * cfg.seq);
        assert_eq!(logits.cols, cfg.vocab);
    }

    #[test]
    fn tied_model_has_fewer_params_than_untied() {
        let cfg = ModelConfig::tiny();
        let tied = MiniGpt::new(cfg);
        let untied = MiniGpt::new(ModelConfig { tied: false, ..cfg });
        assert_eq!(
            untied.num_params() - tied.num_params(),
            cfg.vocab * cfg.dim,
            "untying adds exactly one embedding matrix"
        );
    }

    #[test]
    fn loss_starts_near_log_vocab() {
        // Random init should predict near-uniformly.
        let cfg = ModelConfig::tiny();
        let mut m = MiniGpt::new(cfg);
        let (tokens, targets) = toy_batch(&cfg, 2);
        let loss = m.loss_step(&tokens, &targets, 2);
        let uniform = (cfg.vocab as f32).ln();
        assert!(
            (loss - uniform).abs() < 0.5,
            "initial loss {loss} vs ln(V) {uniform}"
        );
    }

    #[test]
    fn sgd_reduces_loss_on_a_fixed_batch() {
        let cfg = ModelConfig::tiny();
        let mut m = MiniGpt::new(cfg);
        let (tokens, targets) = toy_batch(&cfg, 3);
        let mut opt = Sgd::new(0.3, 0.0);
        let first = m.eval_loss(&tokens, &targets, 2);
        for _ in 0..20 {
            m.zero_grads();
            m.loss_step(&tokens, &targets, 2);
            opt.step(&mut m.params_mut());
        }
        let last = m.eval_loss(&tokens, &targets, 2);
        assert!(
            last < 0.6 * first,
            "loss {first} -> {last} did not memorize"
        );
    }

    #[test]
    fn tied_head_routes_gradients_into_wte() {
        let cfg = ModelConfig::tiny();
        let mut m = MiniGpt::new(cfg);
        let (tokens, targets) = toy_batch(&cfg, 4);
        m.zero_grads();
        m.loss_step(&tokens, &targets, 2);
        // Every vocabulary row gets head gradient (softmax touches all),
        // even tokens absent from the batch.
        let unused = (0..cfg.vocab).find(|t| !tokens.contains(t));
        if let Some(t) = unused {
            let g: f32 = m.wte.g.row(t).iter().map(|v| v.abs()).sum();
            assert!(
                g > 0.0,
                "tied head must push gradient into unused token rows"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_and_in_vocabulary() {
        let cfg = ModelConfig::tiny();
        let m = MiniGpt::new(cfg);
        let out1 = m.generate(&[1, 2, 3], 12, 0.8, 7);
        let out2 = m.generate(&[1, 2, 3], 12, 0.8, 7);
        assert_eq!(out1, out2, "same seed, same text");
        assert_eq!(out1.len(), 12);
        assert!(out1.iter().all(|&t| t < cfg.vocab));
        let greedy1 = m.generate(&[1, 2, 3], 6, 0.0, 1);
        let greedy2 = m.generate(&[1, 2, 3], 6, 0.0, 99);
        assert_eq!(greedy1, greedy2, "greedy decoding ignores the seed");
    }

    #[test]
    fn trained_model_generates_higher_likelihood_text() {
        // After training, greedy continuations of corpus prefixes should
        // score better under the model than random tokens do.
        use crate::data::Corpus;
        let cfg = ModelConfig::tiny();
        let corpus = Corpus::synthetic(20_000, 3);
        let mut m = MiniGpt::new(cfg);
        let mut opt = crate::optim::Sgd::new(0.2, 0.0);
        for step in 0..40 {
            let (tokens, targets) = corpus.batch(8, cfg.seq, step);
            m.zero_grads();
            m.loss_step(&tokens, &targets, 8);
            opt.step(&mut m.params_mut());
        }
        let (prefix, _) = corpus.batch(1, cfg.seq, 777);
        let generated = m.generate(&prefix, 8, 0.0, 0);
        assert_eq!(generated.len(), 8);
        assert!(generated.iter().all(|&t| t < cfg.vocab));
    }

    #[test]
    fn gradient_accumulation_is_additive() {
        let cfg = ModelConfig::tiny();
        let mut m = MiniGpt::new(cfg);
        let (tokens, targets) = toy_batch(&cfg, 5);
        m.zero_grads();
        m.loss_step(&tokens, &targets, 2);
        let g1 = m.wte.g.clone();
        m.loss_step(&tokens, &targets, 2);
        let mut doubled = g1.clone();
        doubled.add_assign(&g1);
        assert!(m.wte.g.max_abs_diff(&doubled) < 1e-5);
    }
}
