//! Stale-gradient training, PipeDream/PipeDream-2BW style.
//!
//! PipeDream-family systems trade synchronous-SGD semantics for pipeline
//! utilization: the gradient applied at step `t` was computed with the
//! weights of step `t-1` (2BW keeps exactly 2 weight versions). The paper's
//! appendix (Figure 10) shows a 355M GPT-2 diverging under PipeDream-2BW
//! after 16K iterations. This module reproduces the mechanism — delayed
//! updates `w_{t+1} = w_t − lr · ∇L(w_{t-1})` — so the divergence analog
//! can be demonstrated at small scale.

use crate::data::Corpus;
use crate::model::{MiniGpt, ModelConfig};
use crate::optim::Sgd;
use crate::tensor::Tensor;

/// A trainer applying 1-step-stale gradients (the 2BW weight-version
/// discipline collapsed to its semantics).
#[derive(Debug, Clone)]
pub struct StaleTrainer {
    /// Current weights `w_t`.
    pub model: MiniGpt,
    /// Weights of the previous step `w_{t-1}`, used for gradient
    /// computation.
    shadow: MiniGpt,
    opt: Sgd,
    /// Mini-batch size in sequences.
    pub m_total: usize,
    /// Training data.
    pub corpus: Corpus,
    /// Steps completed.
    pub step: u64,
}

impl StaleTrainer {
    /// Builds a stale trainer (shadow starts equal to the model).
    pub fn new(cfg: ModelConfig, corpus: Corpus, lr: f32, momentum: f32, m_total: usize) -> Self {
        let model = MiniGpt::new(cfg);
        StaleTrainer {
            shadow: model.clone(),
            model,
            opt: Sgd::new(lr, momentum),
            m_total,
            corpus,
            step: 0,
        }
    }

    /// One stale step: gradient at `w_{t-1}`, update applied to `w_t`.
    /// Returns the loss measured at the stale weights.
    pub fn train_minibatch(&mut self) -> f32 {
        let seq = self.model.cfg.seq;
        let (tokens, targets) = self.corpus.batch(self.m_total, seq, self.step);
        // Compute the gradient with the *previous* weights.
        self.shadow.zero_grads();
        let loss = self.shadow.loss_step(&tokens, &targets, self.m_total);
        // Snapshot current weights; they become the next step's stale
        // version.
        let grads: Vec<Tensor> = {
            let mut s = self.shadow.clone();
            s.params_mut().iter().map(|p| p.g.clone()).collect()
        };
        let next_shadow = self.model.clone();
        for (p, g) in self.model.params_mut().iter_mut().zip(&grads) {
            p.g = g.clone();
        }
        self.opt.step(&mut self.model.params_mut());
        self.shadow = next_shadow;
        self.step += 1;
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::VOCAB;
    use crate::single::Trainer;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 12,
            dim: 24,
            heads: 4,
            layers: 2,
            tied: true,
            seed: 2,
        }
    }

    /// Mean loss over the last few steps of a run.
    fn tail_mean(losses: &[f32], k: usize) -> f32 {
        let tail = &losses[losses.len().saturating_sub(k)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }

    #[test]
    fn stale_updates_destabilize_training_at_aggressive_lr() {
        // Figure 10 analog: at a learning rate where synchronous SGD (with
        // momentum) still trains stably, 1-step-stale updates oscillate or
        // blow up.
        let corpus = Corpus::synthetic(20_000, 31);
        let lr = 0.55;
        let momentum = 0.9;
        let steps = 60;

        let mut sync = Trainer::new(cfg(), corpus.clone(), lr, 16);
        sync.opt.momentum = momentum;
        let sync_losses: Vec<f32> = (0..steps).map(|_| sync.train_minibatch(16)).collect();

        let mut stale = StaleTrainer::new(cfg(), corpus, lr, momentum, 16);
        let stale_losses: Vec<f32> = (0..steps).map(|_| stale.train_minibatch()).collect();

        let sync_tail = tail_mean(&sync_losses, 10);
        let stale_tail = tail_mean(&stale_losses, 10);
        assert!(
            sync_tail.is_finite() && sync_tail < sync_losses[0],
            "sync run should be stable (tail {sync_tail}, start {})",
            sync_losses[0]
        );
        assert!(
            !stale_tail.is_finite() || stale_tail > 1.1 * sync_tail,
            "stale updates should be visibly worse: sync {sync_tail} vs stale {stale_tail}"
        );
    }

    #[test]
    fn stale_matches_sync_at_tiny_lr() {
        // Sanity: with a small learning rate the one-step delay is
        // negligible — staleness is an optimization hazard, not a gradient
        // bug.
        let corpus = Corpus::synthetic(10_000, 32);
        let mut sync = Trainer::new(cfg(), corpus.clone(), 0.01, 8);
        let mut stale = StaleTrainer::new(cfg(), corpus, 0.01, 0.0, 8);
        let mut sync_last = 0.0;
        let mut stale_last = 0.0;
        for _ in 0..20 {
            sync_last = sync.train_minibatch(8);
            stale_last = stale.train_minibatch();
        }
        assert!((sync_last - stale_last).abs() < 0.1);
    }

    #[test]
    fn first_stale_step_equals_sync_step() {
        // At t=0 the shadow equals the model, so the first update is
        // identical to synchronous SGD.
        let corpus = Corpus::synthetic(5_000, 33);
        let mut sync = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut stale = StaleTrainer::new(cfg(), corpus, 0.1, 0.0, 8);
        let l1 = sync.train_minibatch(8);
        let l2 = stale.train_minibatch();
        assert!((l1 - l2).abs() < 1e-6);
        let diff = sync.model.wte.w.max_abs_diff(&stale.model.wte.w);
        assert!(diff < 1e-6, "first updates differ by {diff}");
    }
}
