//! Mixed-precision-style training semantics: dynamic loss scaling and
//! global-norm clipping over a *partitioned* model.
//!
//! These are the two pieces of implicit global state the paper's tracer
//! exists to catch (§5.2): APEX-style loss scaling ("one stage may hit
//! overflow while others may not, thus requiring an allreduce to
//! synchronize it") and NVLAMB's global gradient norm ("computed across
//! layers"). This module wires them into the pipeline trainer the *correct*
//! way — synchronized across partitions — and exposes the *broken* way
//! (per-partition decisions) so the failure the tracer prevents can be
//! demonstrated.

use crate::optim::LossScaler;
use crate::pipeline::StagePart;

/// Outcome of a synchronized mixed-precision step across all partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Whether any partition observed an overflow.
    pub global_overflow: bool,
    /// Whether the optimizer step should be applied.
    pub apply: bool,
}

/// Checks every partition's gradients and updates the shared loss scaler
/// with the *global* overflow decision (the allreduce the paper describes).
pub fn synchronized_scale_update(
    parts: &mut [StagePart],
    scaler: &mut LossScaler,
) -> ScaleDecision {
    let global_overflow = parts
        .iter_mut()
        .any(|p| LossScaler::has_overflow(&p.params_mut()));
    let apply = scaler.update(global_overflow);
    ScaleDecision {
        global_overflow,
        apply,
    }
}

/// The bug the tracer prevents: each partition consults only its own
/// gradients and keeps its own scaler. Returns each partition's (divergent)
/// apply decision.
pub fn unsynchronized_scale_update(
    parts: &mut [StagePart],
    scalers: &mut [LossScaler],
) -> Vec<bool> {
    parts
        .iter_mut()
        .zip(scalers.iter_mut())
        .map(|(p, s)| {
            let overflow = LossScaler::has_overflow(&p.params_mut());
            s.update(overflow)
        })
        .collect()
}

/// Global L2 norm of the gradients across *all* partitions — the NVLAMB
/// quantity that needs a cross-partition allreduce of partial norms.
pub fn global_grad_norm(parts: &mut [StagePart]) -> f64 {
    parts
        .iter_mut()
        .map(|p| p.params_mut().iter().map(|prm| prm.g.sq_sum()).sum::<f64>())
        .sum::<f64>()
        .sqrt()
}

/// Clips every partition's gradients to a maximum global norm. Returns the
/// pre-clip norm.
pub fn clip_global_norm(parts: &mut [StagePart], max_norm: f64) -> f64 {
    assert!(max_norm > 0.0);
    let norm = global_grad_norm(parts);
    if norm > max_norm {
        let scale = (max_norm / norm) as f32;
        for p in parts.iter_mut() {
            for prm in p.params_mut() {
                prm.g.scale(scale);
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Corpus, VOCAB};
    use crate::model::{MiniGpt, ModelConfig};
    use crate::ops::cross_entropy;
    use crate::pipeline::StageInput;
    use crate::tensor::Tensor;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 8,
            dim: 16,
            heads: 2,
            layers: 4,
            tied: true,
            seed: 5,
        }
    }

    /// Runs one forward/backward over 4 stage parts, returning them with
    /// real gradients populated.
    fn parts_with_grads() -> Vec<StagePart> {
        let model = MiniGpt::new(cfg());
        let mut parts = StagePart::split(&model, 4);
        let corpus = Corpus::synthetic(2000, 1);
        let (tokens, targets) = corpus.batch(2, 8, 0);
        let mut caches = Vec::new();
        let mut x = StageInput::Tokens(tokens);
        for part in &mut parts {
            let (y, c) = part.forward(&x, 2);
            caches.push((c, y.clone()));
            x = StageInput::Act(y);
        }
        let (_, dlogits) = cross_entropy(&caches[3].1, &targets);
        let mut dout = dlogits;
        for (part, (c, _)) in parts.iter_mut().zip(caches.iter()).rev() {
            match part.backward(c, &dout) {
                Some(d) => dout = d,
                None => break,
            }
        }
        parts
    }

    #[test]
    fn clean_gradients_apply_and_keep_the_scale() {
        let mut parts = parts_with_grads();
        let mut scaler = LossScaler::new(1024.0);
        let d = synchronized_scale_update(&mut parts, &mut scaler);
        assert!(!d.global_overflow);
        assert!(d.apply);
        assert_eq!(scaler.scale, 1024.0);
    }

    #[test]
    fn one_partitions_overflow_skips_everyone() {
        // Inject a NaN into stage 2 only — the exact scenario of §5.2.
        let mut parts = parts_with_grads();
        parts[2].blocks[0].mlp.fc1.w.g = {
            let shape = &parts[2].blocks[0].mlp.fc1.w.g;
            let mut t = Tensor::zeros(shape.rows, shape.cols);
            t.data[0] = f32::NAN;
            t
        };
        let mut scaler = LossScaler::new(1024.0);
        let d = synchronized_scale_update(&mut parts, &mut scaler);
        assert!(d.global_overflow);
        assert!(!d.apply, "the whole step must be skipped");
        assert_eq!(scaler.scale, 512.0, "scale halves globally");
    }

    #[test]
    fn unsynchronized_scalers_diverge_silently() {
        // Without the tracer-mandated sync, stage 2 skips its update while
        // the others apply — the partitions now hold weights from
        // different optimization timelines.
        let mut parts = parts_with_grads();
        parts[2].blocks[0].mlp.fc1.w.g.data[0] = f32::INFINITY;
        let mut scalers = vec![LossScaler::new(1024.0); 4];
        let decisions = unsynchronized_scale_update(&mut parts, &mut scalers);
        assert_eq!(decisions, vec![true, true, false, true]);
        assert_eq!(scalers[2].scale, 512.0);
        assert_eq!(scalers[0].scale, 1024.0, "scales have silently diverged");
    }

    #[test]
    fn global_norm_equals_single_model_norm() {
        // The partitioned global norm must equal the norm computed on the
        // unpartitioned model, minus the tied-head double count.
        let mut parts = parts_with_grads();
        let norm = global_grad_norm(&mut parts);
        assert!(norm > 0.0);
        // Clipping to half the norm scales gradients down.
        let pre = clip_global_norm(&mut parts, norm / 2.0);
        assert!((pre - norm).abs() < 1e-9);
        let post = global_grad_norm(&mut parts);
        assert!(
            (post - norm / 2.0).abs() / norm < 1e-3,
            "post-clip norm {post}"
        );
    }

    #[test]
    fn clip_is_a_no_op_below_the_threshold() {
        let mut parts = parts_with_grads();
        let norm = global_grad_norm(&mut parts);
        clip_global_norm(&mut parts, norm * 10.0);
        let after = global_grad_norm(&mut parts);
        assert!((after - norm).abs() < 1e-9);
    }
}
