//! Dense row-major f32 matrices — the only tensor type the engine needs.
//!
//! Activations are `[batch*seq, channels]` matrices; attention reshapes
//! per-head views internally. Everything is plain `Vec<f32>`: no unsafe, no
//! SIMD intrinsics, deterministic.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of f32.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Tensor {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// A matrix with i.i.d. uniform entries in `[-scale, scale]`, from a
    /// deterministic seed.
    pub fn randn(rows: usize, cols: usize, scale: f32, seed: u64) -> Self {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Tensor { rows, cols, data }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, k: f32) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Sets every element to zero (for gradient reset).
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of squares of all elements (for global-norm computations).
    pub fn sq_sum(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Largest absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(0, 2), 3.0);
        assert_eq!(t.at(1, 0), 4.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn randn_is_deterministic_and_bounded() {
        let a = Tensor::randn(4, 4, 0.1, 7);
        let b = Tensor::randn(4, 4, 0.1, 7);
        assert_eq!(a, b);
        assert!(a.data.iter().all(|v| v.abs() <= 0.1));
        let c = Tensor::randn(4, 4, 0.1, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data, vec![5.5, 11.0, 16.5]);
    }

    #[test]
    fn sq_sum_and_diff() {
        let a = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert_eq!(a.sq_sum(), 25.0);
        let b = Tensor::from_vec(1, 2, vec![3., 4.5]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_rejected() {
        let _ = Tensor::from_vec(2, 2, vec![1.0]);
    }
}
