//! Multi-threaded pipeline + data-parallel training.
//!
//! The model splits at cut-points (block boundaries) into `P` stage
//! partitions, each replicated `D` ways. Every (stage, replica) runs on its
//! own OS thread; activations and gradients flow through channels; stages
//! stash only their *input* activations and recompute the rest before
//! backward (paper Section 3.1); data-parallel gradients average through a
//! real ring allreduce; and the tied embedding gradient is summed between
//! the first and last stages every mini-batch (Section 5.2).
//!
//! Each stage thread is driven by a [`SchedulePolicy`] from `varuna-sched`
//! — the same trait the discrete-event emulator executes — with the same
//! split of responsibility: the thread computes *legality* (which inputs
//! have arrived, stash-window headroom, which gradients are in hand,
//! pending-recompute commitment) and exposes it as a [`StageView`]; the
//! policy picks the *discipline*. Varuna, GPipe, 1F1B, PipeDream, and the
//! greedy reference policy therefore all run on real numerics.
//!
//! Per-micro-batch gradient contributions are reduced canonically (summed
//! in micro-batch-index order, whatever order the backwards actually ran
//! in), so the final weights are bit-identical across schedule disciplines
//! — the schedule-invariance the paper's correctness-preserving morphing
//! depends on — verified by the equivalence tests below.

use crossbeam::channel::{unbounded, Receiver, Sender};
use varuna_obs::{Event, EventBus, EventKind};
use varuna_sched::{GreedyPolicy, Op, OpKind, PolicyFactory, SchedulePolicy, StageView};

use crate::data::Corpus;
use crate::layers::{Block, LayerNorm, Param};
use crate::model::{MiniGpt, ModelConfig};
use crate::ops::{cross_entropy, matmul, matmul_nt, matmul_tn};
use crate::optim::{Optimizer, Sgd};
use crate::tensor::Tensor;
use varuna_net::ring::ring_allreduce_mean;

/// A contiguous slice of the model owned by one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StagePart {
    /// Stage index.
    pub stage: usize,
    /// Pipeline depth.
    pub p: usize,
    /// Model config.
    pub cfg: ModelConfig,
    /// Embedding tables (stage 0 only): `(wte, wpe)`.
    pub embed: Option<(Param, Param)>,
    /// The stage's transformer blocks.
    pub blocks: Vec<Block>,
    /// Global block index range `[lo, hi)` covered by this stage.
    pub block_range: (usize, usize),
    /// Final layer norm and LM head (last stage only). With tied
    /// embeddings the head is a *copy* of `wte` kept in sync by the
    /// shared-parameter allreduce.
    pub final_part: Option<(LayerNorm, Param)>,
}

/// Input to a stage's forward pass.
#[derive(Debug, Clone)]
pub enum StageInput {
    /// Token ids (stage 0).
    Tokens(Vec<usize>),
    /// Boundary activations from the previous stage.
    Act(Tensor),
}

/// Activation caches of one stage forward (dropped after the pipeline
/// forward; rebuilt by recompute before backward).
pub struct StageCache {
    block_caches: Vec<crate::layers::BlockCache>,
    lnf: Option<(crate::layers::LayerNormCache, Tensor)>,
    tokens: Option<Vec<usize>>,
}

impl StagePart {
    /// Splits a full model into `p` stage partitions with (nearly) equal
    /// block counts. With tied embeddings the last stage receives a copy
    /// of `wte` as its head.
    pub fn split(model: &MiniGpt, p: usize) -> Vec<StagePart> {
        let l = model.blocks.len();
        assert!(p >= 1 && p <= l, "pipeline depth must be in 1..=layers");
        (0..p)
            .map(|s| {
                let lo = s * l / p;
                let hi = (s + 1) * l / p;
                let head = if model.cfg.tied {
                    let mut h = model.wte.clone();
                    h.name = "head(tied-wte)".to_string();
                    h
                } else {
                    model.head.clone().expect("untied model has a head")
                };
                StagePart {
                    stage: s,
                    p,
                    cfg: model.cfg,
                    embed: (s == 0).then(|| (model.wte.clone(), model.wpe.clone())),
                    blocks: model.blocks[lo..hi].to_vec(),
                    block_range: (lo, hi),
                    final_part: (s == p - 1).then(|| (model.ln_f.clone(), head)),
                }
            })
            .collect()
    }

    /// Reassembles a full model from one replica's stage parts.
    ///
    /// # Panics
    ///
    /// Panics if the parts do not form a complete pipeline.
    pub fn reassemble(parts: &[StagePart]) -> MiniGpt {
        assert!(!parts.is_empty());
        let cfg = parts[0].cfg;
        let (wte, wpe) = parts[0].embed.clone().expect("stage 0 holds the embedding");
        let mut blocks = Vec::with_capacity(cfg.layers);
        for part in parts {
            blocks.extend(part.blocks.iter().cloned());
        }
        assert_eq!(blocks.len(), cfg.layers, "parts do not cover the model");
        let (ln_f, head) = parts
            .last()
            .unwrap()
            .final_part
            .clone()
            .expect("last stage holds the head");
        MiniGpt {
            cfg,
            wte,
            wpe,
            blocks,
            ln_f,
            head: (!cfg.tied).then_some(head),
        }
    }

    /// Forward pass over one micro-batch. Returns boundary activations
    /// (interior stages) or logits (last stage), plus the cache.
    pub fn forward(&self, input: &StageInput, batch: usize) -> (Tensor, StageCache) {
        let seq = self.cfg.seq;
        let (mut x, tokens) = match input {
            StageInput::Tokens(toks) => {
                let (wte, wpe) = self.embed.as_ref().expect("tokens only enter stage 0");
                let mut x = Tensor::zeros(batch * seq, self.cfg.dim);
                for (i, &t) in toks.iter().enumerate() {
                    let pos = i % seq;
                    for (v, (&e, &p)) in x
                        .row_mut(i)
                        .iter_mut()
                        .zip(wte.w.row(t).iter().zip(wpe.w.row(pos)))
                    {
                        *v = e + p;
                    }
                }
                (x, Some(toks.clone()))
            }
            StageInput::Act(a) => (a.clone(), None),
        };
        let mut block_caches = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let (y, c) = b.forward(&x, batch, seq);
            block_caches.push(c);
            x = y;
        }
        let mut lnf = None;
        if let Some((ln_f, head)) = &self.final_part {
            let (out, c) = ln_f.forward(&x);
            x = matmul_nt(&out, &head.w);
            lnf = Some((c, out));
        }
        (
            x,
            StageCache {
                block_caches,
                lnf,
                tokens,
            },
        )
    }

    /// Backward pass. `dout` is `dlogits` for the last stage, otherwise
    /// the gradient of the boundary activations. Returns the gradient to
    /// send upstream (`None` from stage 0).
    pub fn backward(&mut self, cache: &StageCache, dout: &Tensor) -> Option<Tensor> {
        let mut dx = if let Some((ln_f, head)) = &mut self.final_part {
            let (lnf_cache, lnf_out) = cache.lnf.as_ref().expect("last stage cache carries ln_f");
            head.g.add_assign(&matmul_tn(dout, lnf_out));
            let d_lnf_out = matmul(dout, &head.w);
            ln_f.backward(lnf_cache, &d_lnf_out)
        } else {
            dout.clone()
        };
        for (b, c) in self.blocks.iter_mut().zip(&cache.block_caches).rev() {
            dx = b.backward(c, &dx);
        }
        if let Some((wte, wpe)) = &mut self.embed {
            let toks = cache.tokens.as_ref().expect("stage 0 cache carries tokens");
            let seq = self.cfg.seq;
            for (i, &t) in toks.iter().enumerate() {
                let pos = i % seq;
                let drow = dx.row(i).to_vec();
                for (g, v) in wte.g.row_mut(t).iter_mut().zip(&drow) {
                    *g += v;
                }
                for (g, v) in wpe.g.row_mut(pos).iter_mut().zip(&drow) {
                    *g += v;
                }
            }
            None
        } else {
            Some(dx)
        }
    }

    /// The stage's parameters (stable order).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        if let Some((wte, wpe)) = &mut self.embed {
            p.push(wte);
            p.push(wpe);
        }
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        if let Some((ln_f, head)) = &mut self.final_part {
            p.extend(ln_f.params_mut());
            p.push(head);
        }
        p
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// The pipeline + data-parallel trainer.
pub struct PipelineTrainer {
    /// `parts[replica][stage]`.
    pub parts: Vec<Vec<StagePart>>,
    opts: Vec<Vec<Optimizer>>,
    /// Model config.
    pub cfg: ModelConfig,
    /// Fixed mini-batch size in sequences (`M_total`).
    pub m_total: usize,
    /// Micro-batch size in sequences.
    pub micro: usize,
    /// Training data.
    pub corpus: Corpus,
    /// Mini-batches completed.
    pub step: u64,
    /// Maximum stashed micro-batch inputs per stage (memory backpressure);
    /// `usize::MAX` disables the bound.
    pub window: usize,
    /// Peak stash observed per stage (max over replicas) in the last
    /// mini-batch.
    pub peak_stash: Vec<usize>,
    /// Per-stage op sequence executed by replica 0 in the last mini-batch
    /// (the trainer-side record for emulator-vs-trainer cross-validation).
    pub last_op_order: Vec<Vec<Op>>,
    /// Whether stages rematerialize activations from stashed inputs before
    /// backward (`true`, Varuna/GPipe/1F1B) or store every forward's
    /// caches instead (`false`, PipeDream).
    pub recompute: bool,
    lr: f32,
    /// Wall-clock seconds spent inside `train_minibatch_observed`, used as
    /// the `t_sim` axis of emitted training events.
    elapsed_train_seconds: f64,
}

impl PipelineTrainer {
    /// Builds a `p × d` pipeline trainer from a fresh model.
    pub fn new(
        cfg: ModelConfig,
        corpus: Corpus,
        lr: f32,
        m_total: usize,
        p: usize,
        d: usize,
        micro: usize,
    ) -> Self {
        let model = MiniGpt::new(cfg);
        Self::from_model(model, corpus, lr, m_total, p, d, micro)
    }

    /// Builds a trainer around an existing model (used for morphing and
    /// checkpoint resume).
    pub fn from_model(
        model: MiniGpt,
        corpus: Corpus,
        lr: f32,
        m_total: usize,
        p: usize,
        d: usize,
        micro: usize,
    ) -> Self {
        assert!(d > 0 && micro > 0);
        assert!(
            m_total.is_multiple_of(d * micro),
            "m_total must split evenly into d * micro chunks"
        );
        let parts: Vec<Vec<StagePart>> = (0..d).map(|_| StagePart::split(&model, p)).collect();
        let opts = (0..d)
            .map(|_| (0..p).map(|_| Optimizer::Sgd(Sgd::new(lr, 0.0))).collect())
            .collect();
        PipelineTrainer {
            parts,
            opts,
            cfg: model.cfg,
            m_total,
            micro,
            corpus,
            step: 0,
            window: usize::MAX,
            peak_stash: vec![0; p],
            last_op_order: vec![Vec::new(); p],
            recompute: true,
            lr,
            elapsed_train_seconds: 0.0,
        }
    }

    /// Bounds the per-stage input-activation stash (GPU-memory
    /// backpressure). Semantics are unchanged; only scheduling is.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "a stage must stash at least one input");
        self.window = window;
        self
    }

    /// Selects whether stages rematerialize activations before backward
    /// (the default) or store every forward's caches instead — the memory
    /// model PipeDream-style disciplines assume.
    pub fn with_recompute(mut self, recompute: bool) -> Self {
        self.recompute = recompute;
        self
    }

    /// Switches every stage's optimizer to Adam with learning rate `lr`
    /// (fresh state; call before training).
    pub fn with_adam(mut self, lr: f32) -> Self {
        for replica in &mut self.opts {
            for opt in replica.iter_mut() {
                *opt = Optimizer::adam(lr);
            }
        }
        self
    }

    /// Pipeline depth.
    pub fn p(&self) -> usize {
        self.parts[0].len()
    }

    /// Data-parallel width.
    pub fn d(&self) -> usize {
        self.parts.len()
    }

    /// Micro-batches per replica per mini-batch.
    pub fn n_micro(&self) -> usize {
        self.m_total / (self.d() * self.micro)
    }

    /// Reassembles the full model from replica 0 (all replicas are kept
    /// identical by construction).
    pub fn reassemble(&self) -> MiniGpt {
        StagePart::reassemble(&self.parts[0])
    }

    /// Morphs to a new `(p, d, micro)` configuration, preserving weights
    /// and `M_total` — the paper's job morphing (Section 4.2).
    pub fn morph(&mut self, p: usize, d: usize, micro: usize) {
        let model = self.reassemble();
        let step = self.step;
        let window = self.window;
        let recompute = self.recompute;
        let elapsed = self.elapsed_train_seconds;
        *self = PipelineTrainer::from_model(
            model,
            self.corpus.clone(),
            self.lr,
            self.m_total,
            p,
            d,
            micro,
        );
        self.window = window;
        self.recompute = recompute;
        self.step = step;
        self.elapsed_train_seconds = elapsed;
    }

    /// Runs one mini-batch across all stages and replicas under the greedy
    /// reference discipline; returns the mean loss.
    pub fn train_minibatch(&mut self) -> f32 {
        self.train_minibatch_with(&|_, _| Box::new(GreedyPolicy))
    }

    /// Runs one mini-batch with each (stage, replica) thread driven by a
    /// policy from `factory(stage, replica)`; returns the mean loss.
    ///
    /// The thread computes legality — input arrival, stash-window
    /// headroom, gradient availability, pending-recompute commitment — and
    /// the policy chooses among the legal ops, exactly as in the
    /// discrete-event emulator. Because per-micro-batch gradient deltas
    /// are reduced in canonical (micro-batch-index) order, the resulting
    /// weights are bit-identical for every discipline.
    pub fn train_minibatch_with(&mut self, factory: &PolicyFactory<'_>) -> f32 {
        let seq = self.cfg.seq;
        let p = self.p();
        let d = self.d();
        let micro = self.micro;
        let n_micro = self.n_micro();
        let recompute = self.recompute;
        let (tokens, targets) = self.corpus.batch(self.m_total, seq, self.step);

        for replica in &mut self.parts {
            for part in replica {
                part.zero_grads();
            }
        }

        // Policies are instantiated up front on this thread: the factory
        // itself need not be `Sync`, but the boxed policies are `Send`.
        let mut policies: Vec<Vec<Box<dyn SchedulePolicy>>> = (0..d)
            .map(|r| (0..p).map(|s| factory(s, r)).collect())
            .collect();

        // Slice the mini-batch: replica r takes chunk r, split into
        // micro-batches — the same examples the reference trainer sees.
        let mut total_loss = 0.0f32;
        let window = self.window;
        let mut peaks = vec![0usize; p];
        let mut op_order = vec![Vec::new(); p];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (r, (replica, pols)) in self.parts.iter_mut().zip(&mut policies).enumerate() {
                // One merged message channel per stage; each neighbor
                // holds a sender clone (acts flow down, grads flow up).
                let chans: Vec<(Sender<StageMsg>, Receiver<StageMsg>)> =
                    (0..p).map(|_| unbounded()).collect();
                let rep_lo = r * n_micro * micro * seq;
                for (s, (part, policy)) in replica.iter_mut().zip(pols.drain(..)).enumerate() {
                    let rx = chans[s].1.clone();
                    let act_tx = (s + 1 < p).then(|| chans[s + 1].0.clone());
                    let grad_tx = (s > 0).then(|| chans[s - 1].0.clone());
                    let tokens = &tokens;
                    let targets = &targets;
                    handles.push((
                        r,
                        s,
                        scope.spawn(move || {
                            run_stage(StageRun {
                                part,
                                policy,
                                rx,
                                act_tx,
                                grad_tx,
                                n_micro,
                                micro,
                                seq,
                                rep_lo,
                                window,
                                recompute,
                                tokens,
                                targets,
                            })
                        }),
                    ));
                }
                // `chans` drops here, leaving only the neighbor-held
                // sender clones: a stage that idles with no live senders
                // panics instead of hanging.
            }
            for (r, stage, h) in handles {
                let (loss, peak, ops) = h.join().expect("stage thread panicked");
                total_loss += loss;
                peaks[stage] = peaks[stage].max(peak);
                if r == 0 {
                    op_order[stage] = ops;
                }
            }
        });

        self.peak_stash = peaks;
        self.last_op_order = op_order;

        // Average gradients: micro-batches within a replica were summed,
        // and replicas must average — overall each parameter's gradient
        // becomes the full mini-batch mean.
        let inv = 1.0 / n_micro as f32;
        for replica in &mut self.parts {
            for part in replica.iter_mut() {
                for prm in part.params_mut() {
                    prm.g.scale(inv);
                }
            }
        }
        self.allreduce_grads();
        self.sync_tied_embedding();

        for (replica, opts) in self.parts.iter_mut().zip(&mut self.opts) {
            for (part, opt) in replica.iter_mut().zip(opts.iter_mut()) {
                opt.step(&mut part.params_mut());
            }
        }
        self.step += 1;
        total_loss / (n_micro * d) as f32
    }

    /// Runs one mini-batch like [`PipelineTrainer::train_minibatch`] and
    /// reports it as an [`EventKind::EpochLoss`] on `bus` (source `Train`,
    /// `t_sim` = cumulative wall-clock seconds spent training through this
    /// method).
    pub fn train_minibatch_observed(&mut self, bus: &mut EventBus) -> f32 {
        let started = std::time::Instant::now();
        let loss = self.train_minibatch();
        let wall = started.elapsed().as_secs_f64();
        self.elapsed_train_seconds += wall;
        let examples_per_sec = self.m_total as f64 / wall.max(1e-12);
        bus.emit_with(|| {
            Event::train(
                self.elapsed_train_seconds,
                EventKind::EpochLoss {
                    step: self.step,
                    loss: loss as f64,
                    examples_per_sec,
                },
            )
        });
        loss
    }

    /// Ring-allreduce (mean) of every stage's gradients across replicas.
    fn allreduce_grads(&mut self) {
        let p = self.p();
        let d = self.d();
        if d == 1 {
            return;
        }
        for s in 0..p {
            let n_params = {
                let mut probe = std::mem::take(&mut self.parts[0][s]);
                let n = probe.params_mut().len();
                self.parts[0][s] = probe;
                n
            };
            for i in 0..n_params {
                let mut bufs: Vec<Vec<f32>> = (0..d)
                    .map(|r| {
                        let mut part = std::mem::take(&mut self.parts[r][s]);
                        let data = part.params_mut()[i].g.data.clone();
                        self.parts[r][s] = part;
                        data
                    })
                    .collect();
                ring_allreduce_mean(&mut bufs);
                for (r, buf) in bufs.into_iter().enumerate() {
                    let mut part = std::mem::take(&mut self.parts[r][s]);
                    part.params_mut()[i].g.data = buf;
                    self.parts[r][s] = part;
                }
            }
        }
    }

    /// Sums the tied-embedding gradient contributions from stage 0 (wte)
    /// and the last stage (head copy), writing the sum back to both — the
    /// shared-parameter allreduce of Section 5.2.
    fn sync_tied_embedding(&mut self) {
        if !self.cfg.tied {
            return;
        }
        let p = self.p();
        if p == 1 {
            // Single stage: wte and head are distinct Params here too.
            for replica in &mut self.parts {
                let part = &mut replica[0];
                let head_g = part.final_part.as_ref().unwrap().1.g.clone();
                let (wte, _) = part.embed.as_mut().unwrap();
                wte.g.add_assign(&head_g);
                let sum = wte.g.clone();
                part.final_part.as_mut().unwrap().1.g = sum;
            }
            return;
        }
        for replica in &mut self.parts {
            let head_g = replica[p - 1].final_part.as_ref().unwrap().1.g.clone();
            let (wte, _) = replica[0].embed.as_mut().unwrap();
            wte.g.add_assign(&head_g);
            let sum = wte.g.clone();
            replica[p - 1].final_part.as_mut().unwrap().1.g = sum;
        }
    }
}

/// A message between adjacent stage threads, tagged with its micro-batch.
enum StageMsg {
    /// Boundary activations from the upstream stage.
    Act(usize, Tensor),
    /// Boundary gradient from the downstream stage.
    Grad(usize, Tensor),
}

/// Everything one stage thread needs for a mini-batch.
struct StageRun<'a> {
    part: &'a mut StagePart,
    policy: Box<dyn SchedulePolicy>,
    /// Merged inbox: acts from stage `s-1`, grads from stage `s+1`.
    rx: Receiver<StageMsg>,
    /// Sender into stage `s+1`'s inbox (interior stages).
    act_tx: Option<Sender<StageMsg>>,
    /// Sender into stage `s-1`'s inbox (non-first stages).
    grad_tx: Option<Sender<StageMsg>>,
    n_micro: usize,
    micro: usize,
    seq: usize,
    rep_lo: usize,
    window: usize,
    recompute: bool,
    tokens: &'a [usize],
    targets: &'a [usize],
}

/// One stage thread's work for a mini-batch, driven by a
/// [`SchedulePolicy`]. The thread owns *legality*: it tracks which inputs
/// have arrived, bounds the input-activation stash by `window` so forwards
/// exert backpressure exactly as on a memory-limited GPU, records which
/// gradients are in hand, and enforces the pending-recompute commitment
/// (paper constraint 2). The policy owns the *discipline* — which legal op
/// runs next. Every pick is asserted legal against the [`StageView`].
///
/// Gradient contributions are kept as per-micro-batch deltas and reduced
/// in micro-batch-index order after the loop, so the accumulated gradient
/// (and therefore the weight update) is bit-identical regardless of the
/// order the policy ran the backwards in.
///
/// Returns `(summed loss, peak stash, executed op sequence)`.
fn run_stage(run: StageRun<'_>) -> (f32, usize, Vec<Op>) {
    let StageRun {
        part,
        mut policy,
        rx,
        act_tx,
        grad_tx,
        n_micro,
        micro,
        seq,
        rep_lo,
        window,
        recompute,
        tokens,
        targets,
    } = run;
    let first = part.stage == 0;
    let last = part.final_part.is_some();
    let p = part.p;

    // Stashed inputs of forwarded-but-not-backwarded micro-batches.
    let mut stash: Vec<Option<StageInput>> = (0..n_micro).map(|_| None).collect();
    let mut stash_len = 0usize;
    let mut peak_stash = 0usize;
    // Boundary activations that arrived but have not been forwarded yet.
    let mut acts: Vec<Option<Tensor>> = vec![None; n_micro];
    // Boundary gradients in hand (interior stages).
    let mut grad_inbox: Vec<Option<Tensor>> = vec![None; n_micro];
    let mut grads_ready = vec![false; n_micro];
    let mut recomputes_done = vec![false; n_micro];
    let mut backwards_done = vec![false; n_micro];
    // Materialized caches (plus, on the last stage, the logits needed to
    // form the loss gradient). With recompute enabled at most one is held
    // — the live one; with it disabled every forward's cache is retained.
    let mut caches: Vec<Option<StageCache>> = (0..n_micro).map(|_| None).collect();
    let mut outs: Vec<Option<Tensor>> = vec![None; n_micro];
    let mut live: Option<usize> = None;
    let mut pending: Option<usize> = None;
    // Per-micro-batch gradient deltas, reduced canonically after the loop.
    let mut deltas: Vec<Option<Vec<Tensor>>> = (0..n_micro).map(|_| None).collect();
    let mut fwd_done = 0usize;
    let mut done = 0usize;
    let mut loss_sum = 0.0f32;
    let mut order: Vec<Op> = Vec::with_capacity(3 * n_micro);

    let slice_lo = |mb: usize| rep_lo + mb * micro * seq;

    while done < n_micro {
        // Drain everything that has already arrived (non-blocking).
        while let Ok(msg) = rx.try_recv() {
            match msg {
                StageMsg::Act(mb, a) => acts[mb] = Some(a),
                StageMsg::Grad(mb, g) => {
                    grad_inbox[mb] = Some(g);
                    grads_ready[mb] = true;
                }
            }
        }

        let next_forward_ready =
            fwd_done < n_micro && stash_len < window && (first || acts[fwd_done].is_some());
        let view = StageView {
            stage: part.stage,
            p,
            last_stage: last,
            n_micro,
            forwards_done: fwd_done,
            next_forward_ready,
            grads_ready: &grads_ready,
            recomputes_done: &recomputes_done,
            backwards_done: &backwards_done,
            live_acts: live,
            pending_recompute: pending,
            stash_len,
            stash_window: window,
            recompute_enabled: recompute,
        };
        let Some(op) = policy.pick(&view) else {
            // The policy idles: block until the next message. A policy
            // that idles with no live senders left has wedged the stage —
            // the expect turns that into a panic rather than a hang.
            let msg = rx.recv().expect("policy idled with no inbound messages");
            match msg {
                StageMsg::Act(mb, a) => acts[mb] = Some(a),
                StageMsg::Grad(mb, g) => {
                    grad_inbox[mb] = Some(g);
                    grads_ready[mb] = true;
                }
            }
            continue;
        };
        assert!(
            view.is_legal(op),
            "stage {} picked illegal {op:?}",
            part.stage
        );
        order.push(op);

        // Starting any op other than the backward that consumes them
        // invalidates live activations (same rule as the emulator); with
        // recompute disabled all caches persist until their backward.
        if recompute && !(op.kind == OpKind::Backward && live == Some(op.micro)) {
            if let Some(m) = live.take() {
                caches[m] = None;
                outs[m] = None;
            }
        }

        match op.kind {
            OpKind::Forward => {
                let mb = op.micro;
                let input = if first {
                    let lo = slice_lo(mb);
                    StageInput::Tokens(tokens[lo..lo + micro * seq].to_vec())
                } else {
                    StageInput::Act(acts[mb].take().expect("forward legality implies arrival"))
                };
                let (out, cache) = part.forward(&input, micro);
                stash[mb] = Some(input);
                stash_len += 1;
                peak_stash = peak_stash.max(stash_len);
                fwd_done += 1;
                if last {
                    let lo = slice_lo(mb);
                    let (loss, _) = cross_entropy(&out, &targets[lo..lo + micro * seq]);
                    loss_sum += loss;
                    // The loss gradient is locally available: the last
                    // stage's "gradient arrival" is its own forward.
                    grads_ready[mb] = true;
                    outs[mb] = Some(out);
                } else {
                    act_tx
                        .as_ref()
                        .expect("interior stage has a downstream channel")
                        .send(StageMsg::Act(mb, out))
                        .expect("activation receiver dropped");
                }
                caches[mb] = Some(cache);
                live = Some(mb);
            }
            OpKind::Recompute => {
                let mb = op.micro;
                let input = stash[mb].as_ref().expect("recompute reads the stash");
                let (out, cache) = part.forward(input, micro);
                caches[mb] = Some(cache);
                if last {
                    outs[mb] = Some(out);
                }
                recomputes_done[mb] = true;
                pending = Some(mb);
                live = Some(mb);
            }
            OpKind::Backward => {
                let mb = op.micro;
                let cache = caches[mb].take().expect("backward needs a cache");
                let dout = if last {
                    let out = outs[mb].take().expect("last stage retains logits");
                    let lo = slice_lo(mb);
                    let (_, dlogits) = cross_entropy(&out, &targets[lo..lo + micro * seq]);
                    dlogits
                } else {
                    grad_inbox[mb]
                        .take()
                        .expect("backward legality implies grad")
                };
                let dinput = part.backward(&cache, &dout);
                if let Some(dinput) = dinput {
                    grad_tx
                        .as_ref()
                        .expect("non-first stage has an upstream channel")
                        .send(StageMsg::Grad(mb, dinput))
                        .expect("gradient receiver dropped");
                }
                // Extract this micro-batch's gradient delta and reset the
                // accumulators for the next backward.
                deltas[mb] = Some(
                    part.params_mut()
                        .iter_mut()
                        .map(|prm| {
                            let g = prm.g.clone();
                            prm.zero_grad();
                            g
                        })
                        .collect(),
                );
                stash[mb] = None;
                stash_len -= 1;
                backwards_done[mb] = true;
                grads_ready[mb] = false;
                pending = None;
                live = None;
                done += 1;
            }
        }
    }

    // Canonical reduction: sum the deltas in micro-batch-index order so
    // the accumulated gradient is independent of the execution order.
    for delta in deltas.into_iter().flatten() {
        for (prm, d) in part.params_mut().iter_mut().zip(&delta) {
            prm.g.add_assign(d);
        }
    }
    (loss_sum, peak_stash, order)
}

impl Default for StagePart {
    fn default() -> Self {
        StagePart {
            stage: 0,
            p: 1,
            cfg: ModelConfig::tiny(),
            embed: None,
            blocks: Vec::new(),
            block_range: (0, 0),
            final_part: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::VOCAB;
    use crate::single::Trainer;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 12,
            dim: 24,
            heads: 4,
            layers: 4,
            tied: true,
            seed: 3,
        }
    }

    fn max_weight_diff(a: &MiniGpt, b: &MiniGpt) -> f32 {
        let mut am = a.clone();
        let mut bm = b.clone();
        am.params_mut()
            .iter()
            .zip(bm.params_mut().iter())
            .map(|(x, y)| x.w.max_abs_diff(&y.w))
            .fold(0.0, f32::max)
    }

    #[test]
    fn split_reassemble_round_trip() {
        let m = MiniGpt::new(cfg());
        for p in [1, 2, 4] {
            let parts = StagePart::split(&m, p);
            assert_eq!(parts.len(), p);
            let back = StagePart::reassemble(&parts);
            assert_eq!(
                max_weight_diff(&m, &back),
                0.0,
                "p={p} round trip changed weights"
            );
        }
    }

    #[test]
    fn pipeline_forward_matches_single_process() {
        let m = MiniGpt::new(cfg());
        let corpus = Corpus::synthetic(3000, 5);
        let (tokens, _) = corpus.batch(2, 12, 0);
        let (want, _) = m.forward(&tokens, 2);
        // Chain the stage parts by hand.
        let mut parts = StagePart::split(&m, 4);
        let mut x = StageInput::Tokens(tokens);
        let mut out = None;
        for part in &mut parts {
            let (y, _) = part.forward(&x, 2);
            out = Some(y.clone());
            x = StageInput::Act(y);
        }
        assert_eq!(want, out.unwrap(), "stage chaining must be exact");
    }

    #[test]
    fn pipelined_training_matches_reference_trainer() {
        // The core sync-SGD-preservation claim: P=4, D=1 pipelined
        // training with recompute produces the same weights as the
        // single-process trainer.
        let corpus = Corpus::synthetic(4000, 6);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 2);
        for _ in 0..3 {
            let l_ref = reference.train_minibatch(2);
            let l_pipe = pipe.train_minibatch();
            assert!(
                (l_ref - l_pipe).abs() < 1e-4,
                "losses diverged: {l_ref} vs {l_pipe}"
            );
        }
        let diff = max_weight_diff(&reference.model, &pipe.reassemble());
        assert!(diff < 5e-5, "weights diverged by {diff}");
    }

    #[test]
    fn data_parallel_training_matches_reference_trainer() {
        // P=2, D=2 with ring allreduce equals the single-process result.
        let corpus = Corpus::synthetic(4000, 7);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 2, 2, 2);
        for _ in 0..3 {
            reference.train_minibatch(2);
            pipe.train_minibatch();
        }
        let diff = max_weight_diff(&reference.model, &pipe.reassemble());
        assert!(diff < 5e-4, "weights diverged by {diff}");
    }

    #[test]
    fn replicas_stay_in_lockstep() {
        let corpus = Corpus::synthetic(4000, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 2, 2, 2);
        for _ in 0..2 {
            pipe.train_minibatch();
        }
        let a = StagePart::reassemble(&pipe.parts[0]);
        let b = StagePart::reassemble(&pipe.parts[1]);
        assert_eq!(max_weight_diff(&a, &b), 0.0, "replicas must be identical");
    }

    #[test]
    fn tied_embeddings_stay_tied_across_stages() {
        let corpus = Corpus::synthetic(4000, 9);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 2);
        for _ in 0..3 {
            pipe.train_minibatch();
        }
        let wte = &pipe.parts[0][0].embed.as_ref().unwrap().0.w;
        let head = &pipe.parts[0][3].final_part.as_ref().unwrap().1.w;
        assert_eq!(wte.max_abs_diff(head), 0.0, "tied weights drifted apart");
    }

    #[test]
    fn skipping_tied_sync_breaks_the_tie() {
        // Negative control for the tracer story: without the shared-param
        // allreduce the two copies drift — the silent-accuracy-bug the
        // paper's tracer exists to prevent.
        let corpus = Corpus::synthetic(4000, 10);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 2);
        // Train one normal step then one with sync suppressed by zeroing
        // the head's gradient path: emulate by manual steps.
        pipe.train_minibatch();
        let model = pipe.reassemble();
        let mut parts = StagePart::split(&model, 4);
        // One forward/backward without sync_tied_embedding.
        let corpus2 = Corpus::synthetic(4000, 10);
        let (tokens, targets) = corpus2.batch(8, 12, 1);
        let mut x = StageInput::Tokens(tokens[0..2 * 12].to_vec());
        let mut caches = Vec::new();
        for part in &mut parts {
            let (y, c) = part.forward(&x, 2);
            caches.push((c, y.clone()));
            x = StageInput::Act(y);
        }
        let (_, dlogits) = cross_entropy(&caches[3].1, &targets[0..24]);
        let mut dout = dlogits;
        for (part, (c, _)) in parts.iter_mut().zip(caches.iter()).rev() {
            match part.backward(c, &dout) {
                Some(d) => dout = d,
                None => break,
            }
        }
        let mut opt = Sgd::new(0.1, 0.0);
        for part in &mut parts {
            opt.step(&mut part.params_mut());
        }
        let wte = &parts[0].embed.as_ref().unwrap().0.w;
        let head = &parts[3].final_part.as_ref().unwrap().1.w;
        assert!(
            wte.max_abs_diff(head) > 0.0,
            "without sync the tied copies must drift"
        );
    }

    #[test]
    fn adam_pipeline_matches_single_process_adam() {
        // Optimizer-state equivalence: Adam's per-parameter moments evolve
        // identically when the model is pipelined, because gradients are
        // identical and every replica applies the same update.
        use crate::optim::Adam;
        let corpus = Corpus::synthetic(4000, 14);
        let mut reference = MiniGpt::new(cfg());
        let mut ref_opt = Adam::new(0.01);
        let mut pipe = PipelineTrainer::new(cfg(), corpus.clone(), 0.1, 8, 4, 1, 2).with_adam(0.01);
        for step in 0..3 {
            // Reference: replicate the trainer's slicing by hand.
            let (tokens, targets) = corpus.batch(8, 12, step);
            reference.zero_grads();
            for c in 0..4 {
                let lo = c * 2 * 12;
                let hi = (c + 1) * 2 * 12;
                reference.loss_step(&tokens[lo..hi], &targets[lo..hi], 2);
            }
            for p in reference.params_mut() {
                p.g.scale(0.25);
            }
            ref_opt.step(&mut reference.params_mut());
            pipe.train_minibatch();
        }
        let diff = max_weight_diff(&reference, &pipe.reassemble());
        assert!(diff < 5e-4, "Adam pipeline diverged by {diff}");
    }

    #[test]
    fn bounded_stash_window_preserves_semantics_and_memory() {
        // Varuna's memory discipline for real: with a stash window of 2
        // the same weights come out, and no stage ever held more than 2
        // input stashes.
        let corpus = Corpus::synthetic(4000, 12);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut tight = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 1).with_window(2);
        for _ in 0..3 {
            reference.train_minibatch(1);
            tight.train_minibatch();
        }
        assert!(
            tight.peak_stash.iter().all(|&p| p <= 2),
            "stash {:?}",
            tight.peak_stash
        );
        // Early stages actually hit the bound (8 micro-batches want more).
        assert_eq!(tight.peak_stash[0], 2);
        let diff = max_weight_diff(&reference.model, &tight.reassemble());
        assert!(diff < 5e-4, "windowed run diverged by {diff}");
    }

    #[test]
    fn unbounded_window_lets_early_stages_run_ahead() {
        let corpus = Corpus::synthetic(4000, 13);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 1);
        pipe.train_minibatch();
        // Stage 0 can forward all 8 micro-batches before backwards begin;
        // the last stage alternates and stays at 1.
        assert!(
            pipe.peak_stash[0] >= 4,
            "stage 0 should run ahead: {:?}",
            pipe.peak_stash
        );
        assert!(pipe.peak_stash[3] <= 2);
    }

    #[test]
    fn observed_training_emits_loss_events_and_matches_plain_training() {
        use varuna_obs::{EventBus, EventKind, Source, VecSink};
        let corpus = Corpus::synthetic(4000, 6);
        let mut plain = PipelineTrainer::new(cfg(), corpus.clone(), 0.1, 8, 2, 1, 2);
        let mut observed = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 2, 1, 2);
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        for _ in 0..2 {
            let l_plain = plain.train_minibatch();
            let l_obs = observed.train_minibatch_observed(&mut bus);
            assert_eq!(l_plain, l_obs, "observation must not perturb training");
        }
        let events = sink.take();
        assert_eq!(events.len(), 2);
        let mut last_t = 0.0;
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.source, Source::Train);
            assert!(e.t_sim > last_t, "cumulative time must advance");
            last_t = e.t_sim;
            match &e.kind {
                EventKind::EpochLoss {
                    step,
                    loss,
                    examples_per_sec,
                } => {
                    assert_eq!(*step, i as u64 + 1);
                    assert!(loss.is_finite() && *loss > 0.0);
                    assert!(*examples_per_sec > 0.0);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn disciplines_are_bit_identical_to_the_reference_trainer() {
        // The acceptance bar for the policy-driven trainer: Varuna, GPipe,
        // and 1F1B all produce *bit-identical* final weights to the
        // single-process oracle, thanks to the canonical per-micro-batch
        // delta reduction shared by both trainers.
        //
        // Untied embeddings: the tied reference couples head and embedding
        // gradients inside each backward — a different float grouping than
        // the pipeline's end-of-batch tie sync — so exact equality is only
        // well-posed without weight tying.
        use varuna_baselines::{GPipePolicy, OneF1BPolicy};
        use varuna_sched::schedule::{generate_schedule, VarunaPolicy};
        let cfg = ModelConfig {
            tied: false,
            ..cfg()
        };
        for p in [2usize, 4] {
            let corpus = Corpus::synthetic(4000, 21);
            let mut reference = Trainer::new(cfg, corpus.clone(), 0.1, 8);
            for _ in 0..3 {
                reference.train_minibatch(2);
            }
            let run = |name: &str, factory: &PolicyFactory<'_>| {
                let mut pipe = PipelineTrainer::new(cfg, corpus.clone(), 0.1, 8, p, 1, 2);
                for _ in 0..3 {
                    pipe.train_minibatch_with(factory);
                }
                let diff = max_weight_diff(&reference.model, &pipe.reassemble());
                assert_eq!(diff, 0.0, "{name} at p={p} diverged by {diff}");
            };
            let sched = generate_schedule(p, 4, usize::MAX);
            run("varuna", &|s, _| {
                Box::new(VarunaPolicy::for_stage(&sched, s))
            });
            run("gpipe", &|_, _| Box::new(GPipePolicy));
            run("1f1b", &|_, _| Box::new(OneF1BPolicy));
        }
    }

    #[test]
    fn final_weights_are_schedule_invariant() {
        // Between disciplines the equivalence is unconditional — tied
        // embeddings, data parallelism, even PipeDream's no-recompute
        // memory model all yield the same bits, because the gradient each
        // micro-batch contributes does not depend on when it was scheduled.
        use varuna_baselines::{GPipePolicy, OneF1BPolicy, PipeDreamPolicy};
        use varuna_sched::schedule::{generate_schedule, VarunaPolicy};
        let corpus = Corpus::synthetic(4000, 22);
        let run = |factory: &PolicyFactory<'_>, recompute: bool| -> MiniGpt {
            let mut pipe = PipelineTrainer::new(cfg(), corpus.clone(), 0.1, 8, 2, 2, 1)
                .with_recompute(recompute);
            for _ in 0..2 {
                pipe.train_minibatch_with(factory);
            }
            pipe.reassemble()
        };
        let greedy = run(&|_, _| Box::new(GreedyPolicy), true);
        let sched = generate_schedule(2, 4, usize::MAX);
        for (name, model) in [
            (
                "varuna",
                run(&|s, _| Box::new(VarunaPolicy::for_stage(&sched, s)), true),
            ),
            ("gpipe", run(&|_, _| Box::new(GPipePolicy), true)),
            ("1f1b", run(&|_, _| Box::new(OneF1BPolicy), true)),
            ("pipedream", run(&|_, _| Box::new(PipeDreamPolicy), false)),
        ] {
            assert_eq!(
                max_weight_diff(&greedy, &model),
                0.0,
                "{name} diverged from the greedy reference discipline"
            );
        }
    }

    #[test]
    fn morphing_preserves_the_training_trajectory() {
        // Train 2 steps at 4x1, morph to 2x2 with a different micro size,
        // train 2 more — must match the reference trainer that never
        // changed shape (paper Section 4.2).
        let corpus = Corpus::synthetic(4000, 11);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus, 0.1, 8, 4, 1, 2);
        for _ in 0..2 {
            reference.train_minibatch(2);
            pipe.train_minibatch();
        }
        pipe.morph(2, 2, 1);
        assert_eq!(pipe.p(), 2);
        assert_eq!(pipe.d(), 2);
        for _ in 0..2 {
            reference.train_minibatch(2);
            pipe.train_minibatch();
        }
        let diff = max_weight_diff(&reference.model, &pipe.reassemble());
        assert!(diff < 1e-3, "morphing changed the trajectory by {diff}");
    }
}
