//! The single-process reference trainer.
//!
//! This is the semantics oracle: whatever micro-batching, pipelining, or
//! data-parallel layout Varuna picks, the resulting weights must match what
//! this trainer produces for the same `M_total` — the paper's
//! correctness-preserving morphing contract (Section 4.2). Gradient
//! accumulation is built in: a mini-batch of `M_total` sequences is
//! processed in micro-batches of any size that divides it, with gradients
//! averaged so the update is invariant to the split.

use crate::data::Corpus;
use crate::model::{MiniGpt, ModelConfig};
use crate::optim::Sgd;

/// A single-process trainer with gradient accumulation.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// The model being trained.
    pub model: MiniGpt,
    /// The optimizer.
    pub opt: Sgd,
    /// Fixed mini-batch size in sequences (the paper's `M_total`).
    pub m_total: usize,
    /// Training data.
    pub corpus: Corpus,
    /// Mini-batches completed.
    pub step: u64,
}

impl Trainer {
    /// Builds a trainer. `m_total` is fixed for the life of the job.
    pub fn new(cfg: ModelConfig, corpus: Corpus, lr: f32, m_total: usize) -> Self {
        assert!(m_total > 0);
        Trainer {
            model: MiniGpt::new(cfg),
            opt: Sgd::new(lr, 0.0),
            m_total,
            corpus,
            step: 0,
        }
    }

    /// Runs one mini-batch split into micro-batches of `micro` sequences.
    ///
    /// Returns the mean loss over the mini-batch. The drawn data depends
    /// only on `self.step`, never on `micro`, so different splits see the
    /// same examples — the invariance morphing relies on.
    ///
    /// # Panics
    ///
    /// Panics if `micro` does not divide `m_total`.
    pub fn train_minibatch(&mut self, micro: usize) -> f32 {
        assert!(
            micro > 0 && self.m_total.is_multiple_of(micro),
            "micro must divide m_total"
        );
        let seq = self.model.cfg.seq;
        let (tokens, targets) = self.corpus.batch(self.m_total, seq, self.step);
        let chunks = self.m_total / micro;
        self.model.zero_grads();
        let mut loss_sum = 0.0f32;
        // Each micro-batch's gradient is extracted as a standalone delta
        // and the deltas are summed in micro-batch-index order — the same
        // canonical reduction the pipeline trainer uses, so pipelined runs
        // are bit-identical to this oracle (not merely close).
        let mut deltas: Vec<Vec<crate::tensor::Tensor>> = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let lo = c * micro * seq;
            let hi = (c + 1) * micro * seq;
            loss_sum += self
                .model
                .loss_step(&tokens[lo..hi], &targets[lo..hi], micro);
            deltas.push(
                self.model
                    .params_mut()
                    .iter_mut()
                    .map(|p| {
                        let g = p.g.clone();
                        p.zero_grad();
                        g
                    })
                    .collect(),
            );
        }
        for delta in &deltas {
            for (p, d) in self.model.params_mut().iter_mut().zip(delta) {
                p.g.add_assign(d);
            }
        }
        // Each micro-batch contributed a mean gradient; average them so
        // the update equals the full-batch gradient.
        let inv = 1.0 / chunks as f32;
        for p in self.model.params_mut() {
            p.g.scale(inv);
        }
        self.opt.step(&mut self.model.params_mut());
        self.step += 1;
        loss_sum / chunks as f32
    }

    /// Evaluates mean loss on `batches` held-out mini-batches (drawn from
    /// steps far beyond the training range).
    pub fn eval(&self, batches: u64) -> f32 {
        let seq = self.model.cfg.seq;
        let mut total = 0.0f32;
        for b in 0..batches {
            let (tokens, targets) = self.corpus.batch(self.m_total, seq, 1_000_000 + b);
            total += self.model.eval_loss(&tokens, &targets, self.m_total);
        }
        total / batches as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::VOCAB;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 12,
            dim: 24,
            heads: 4,
            layers: 2,
            tied: true,
            seed: 9,
        }
    }

    #[test]
    fn gradient_accumulation_is_invariant_to_micro_batch_size() {
        // The heart of correctness-preserving morphing: the same
        // mini-batch split 1-way, 2-way, or 4-way yields the same update.
        let corpus = Corpus::synthetic(5000, 11);
        let mut full = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut halves = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut quarters = Trainer::new(cfg(), corpus, 0.1, 8);
        for _ in 0..3 {
            full.train_minibatch(8);
            halves.train_minibatch(4);
            quarters.train_minibatch(2);
        }
        let w_full = &full.model.wte.w;
        assert!(
            w_full.max_abs_diff(&halves.model.wte.w) < 2e-4,
            "2-way split diverged by {}",
            w_full.max_abs_diff(&halves.model.wte.w)
        );
        assert!(w_full.max_abs_diff(&quarters.model.wte.w) < 2e-4);
        // And the final-block weights too, not just embeddings.
        let b_full = &full.model.blocks[1].mlp.fc2.w.w;
        assert!(b_full.max_abs_diff(&quarters.model.blocks[1].mlp.fc2.w.w) < 2e-4);
    }

    #[test]
    fn training_reduces_eval_loss_toward_structure() {
        let corpus = Corpus::synthetic(20_000, 13);
        let uni = corpus.unigram_entropy() as f32;
        let mut t = Trainer::new(cfg(), corpus, 0.15, 16);
        let before = t.eval(2);
        for _ in 0..60 {
            t.train_minibatch(8);
        }
        let after = t.eval(2);
        assert!(after < before, "loss {before} -> {after}");
        assert!(
            after < uni,
            "model ({after}) should beat the unigram baseline ({uni})"
        );
    }

    #[test]
    fn data_draw_is_independent_of_micro_split() {
        let corpus = Corpus::synthetic(5000, 17);
        let a = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        // Same step => same data regardless of how we then slice it.
        let (ta, _) = a.corpus.batch(8, 12, 0);
        let (tb, _) = a.corpus.batch(8, 12, 0);
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "micro must divide")]
    fn indivisible_micro_rejected() {
        let corpus = Corpus::synthetic(2000, 19);
        let mut t = Trainer::new(cfg(), corpus, 0.1, 8);
        t.train_minibatch(3);
    }
}
