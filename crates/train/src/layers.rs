//! Neural network layers with explicit caches and manual backward passes.
//!
//! Each layer's `forward` returns the activations *and* a cache; `backward`
//! consumes the cache and accumulates parameter gradients. Keeping caches
//! external is what makes activation recompute honest: the pipeline runtime
//! drops the cache after forward and rebuilds it by re-running forward from
//! the stashed input, exactly as the paper describes (Section 3.1).

use serde::{Deserialize, Serialize};

use crate::ops::{
    add_bias, bias_grad, gelu, gelu_backward, layernorm, layernorm_backward, matmul, matmul_nt,
    matmul_tn, softmax_rows,
};
use crate::tensor::Tensor;

/// A parameter tensor with its gradient accumulator.
///
/// `uid` is the analog of Python object identity that the paper's tracer
/// relies on: cloning a parameter (as happens when a tied weight is
/// materialized on two pipeline stages) *preserves* the uid, so the tracer
/// can detect that two partitions reference the same logical tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Weights.
    pub w: Tensor,
    /// Gradient accumulator (same shape).
    pub g: Tensor,
    /// Name for tracing and checkpoints.
    pub name: String,
    /// Identity preserved across clones (tied weights share it).
    pub uid: u64,
}

impl Param {
    /// Wraps a tensor as a parameter with a zeroed gradient and a fresh
    /// identity.
    pub fn new(w: Tensor, name: impl Into<String>) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_UID: AtomicU64 = AtomicU64::new(1);
        let g = Tensor::zeros(w.rows, w.cols);
        Param {
            w,
            g,
            name: name.into(),
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.zero();
    }
}

/// A dense affine layer `y = x W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix `[in × out]`.
    pub w: Param,
    /// Bias row `[1 × out]`.
    pub b: Param,
}

/// Cache for [`Linear::forward`]: the input.
pub struct LinearCache {
    x: Tensor,
}

impl Linear {
    /// A new layer with seeded uniform init.
    pub fn new(d_in: usize, d_out: usize, seed: u64, name: &str) -> Self {
        let scale = (1.0 / d_in as f32).sqrt();
        Linear {
            w: Param::new(Tensor::randn(d_in, d_out, scale, seed), format!("{name}.w")),
            b: Param::new(Tensor::zeros(1, d_out), format!("{name}.b")),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LinearCache) {
        let mut y = matmul(x, &self.w.w);
        add_bias(&mut y, &self.b.w.data);
        (y, LinearCache { x: x.clone() })
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dx`.
    pub fn backward(&mut self, cache: &LinearCache, dy: &Tensor) -> Tensor {
        self.w.g.add_assign(&matmul_tn(&cache.x, dy));
        let bg = bias_grad(dy);
        for (g, v) in self.b.g.data.iter_mut().zip(bg) {
            *g += v;
        }
        matmul_nt(dy, &self.w.w)
    }

    /// The layer's parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

/// Layer normalization with learnable gain/bias.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Gain row.
    pub gain: Param,
    /// Bias row.
    pub bias: Param,
}

/// Cache for [`LayerNorm::forward`].
pub struct LayerNormCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized layer norm of width `dim`.
    pub fn new(dim: usize, name: &str) -> Self {
        LayerNorm {
            gain: Param::new(
                Tensor::from_vec(1, dim, vec![1.0; dim]),
                format!("{name}.gain"),
            ),
            bias: Param::new(Tensor::zeros(1, dim), format!("{name}.bias")),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, LayerNormCache) {
        let (y, xhat, inv_std) = layernorm(x, &self.gain.w.data, &self.bias.w.data, 1e-5);
        (y, LayerNormCache { xhat, inv_std })
    }

    /// Backward pass.
    pub fn backward(&mut self, cache: &LayerNormCache, dy: &Tensor) -> Tensor {
        let (dx, dg, db) = layernorm_backward(dy, &cache.xhat, &cache.inv_std, &self.gain.w.data);
        for (g, v) in self.gain.g.data.iter_mut().zip(dg) {
            *g += v;
        }
        for (g, v) in self.bias.g.data.iter_mut().zip(db) {
            *g += v;
        }
        dx
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gain, &mut self.bias]
    }
}

/// Multi-head causal self-attention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attention {
    /// Number of heads.
    pub n_head: usize,
    /// Fused QKV projection `[c × 3c]`.
    pub qkv: Linear,
    /// Output projection `[c × c]`.
    pub proj: Linear,
}

/// Cache for [`Attention::forward`].
pub struct AttentionCache {
    qkv_cache: LinearCache,
    qkv_out: Tensor,
    /// Per (sequence, head) attention probability matrices `[T × T]`.
    att: Vec<Tensor>,
    proj_cache: LinearCache,
    batch: usize,
    seq: usize,
}

impl Attention {
    /// A new attention layer over `dim` channels.
    pub fn new(dim: usize, n_head: usize, seed: u64, name: &str) -> Self {
        assert!(dim.is_multiple_of(n_head), "dim must divide by heads");
        Attention {
            n_head,
            qkv: Linear::new(dim, 3 * dim, seed, &format!("{name}.qkv")),
            proj: Linear::new(dim, dim, seed + 1, &format!("{name}.proj")),
        }
    }

    /// Forward over `x` of shape `[batch*seq, dim]`.
    pub fn forward(&self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, AttentionCache) {
        let c = x.cols;
        let dh = c / self.n_head;
        let scale = 1.0 / (dh as f32).sqrt();
        let (qkv_out, qkv_cache) = self.qkv.forward(x);
        let mut attn_out = Tensor::zeros(x.rows, c);
        let mut att_all = Vec::with_capacity(batch * self.n_head);
        for b in 0..batch {
            for h in 0..self.n_head {
                let off = h * dh;
                // Scores [T × T], causal.
                let mut att = Tensor::zeros(seq, seq);
                for i in 0..seq {
                    let qrow = &qkv_out.row(b * seq + i)[off..off + dh];
                    for j in 0..=i {
                        let krow = &qkv_out.row(b * seq + j)[c + off..c + off + dh];
                        let mut s = 0.0f32;
                        for (qv, kv) in qrow.iter().zip(krow) {
                            s += qv * kv;
                        }
                        *att.at_mut(i, j) = s * scale;
                    }
                    for j in i + 1..seq {
                        *att.at_mut(i, j) = f32::NEG_INFINITY;
                    }
                }
                softmax_rows(&mut att);
                // Out = A V.
                for i in 0..seq {
                    for j in 0..=i {
                        let a = att.at(i, j);
                        if a == 0.0 {
                            continue;
                        }
                        let vrow_idx = b * seq + j;
                        for k in 0..dh {
                            let vv = qkv_out.at(vrow_idx, 2 * c + off + k);
                            *attn_out.at_mut(b * seq + i, off + k) += a * vv;
                        }
                    }
                }
                att_all.push(att);
            }
        }
        let (y, proj_cache) = self.proj.forward(&attn_out);
        (
            y,
            AttentionCache {
                qkv_cache,
                qkv_out,
                att: att_all,
                proj_cache,
                batch,
                seq,
            },
        )
    }

    /// Backward pass.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(&mut self, cache: &AttentionCache, dy: &Tensor) -> Tensor {
        let c = dy.cols;
        let dh = c / self.n_head;
        let scale = 1.0 / (dh as f32).sqrt();
        let (batch, seq) = (cache.batch, cache.seq);
        let d_attn_out = self.proj.backward(&cache.proj_cache, dy);
        let mut d_qkv = Tensor::zeros(cache.qkv_out.rows, cache.qkv_out.cols);
        for b in 0..batch {
            for h in 0..self.n_head {
                let off = h * dh;
                let att = &cache.att[b * self.n_head + h];
                // dV[j] += sum_i A[i,j] dOut[i]; dA[i,j] = dOut[i] · V[j].
                let mut datt = Tensor::zeros(seq, seq);
                for i in 0..seq {
                    for j in 0..=i {
                        let a = att.at(i, j);
                        let dout = &d_attn_out.row(b * seq + i)[off..off + dh];
                        let mut da = 0.0f32;
                        for k in 0..dh {
                            let vv = cache.qkv_out.at(b * seq + j, 2 * c + off + k);
                            da += dout[k] * vv;
                            *d_qkv.at_mut(b * seq + j, 2 * c + off + k) += a * dout[k];
                        }
                        *datt.at_mut(i, j) = da;
                    }
                }
                // Softmax backward per row: dS = A ∘ (dA - sum(dA ∘ A)).
                for i in 0..seq {
                    let mut dot = 0.0f32;
                    for j in 0..=i {
                        dot += datt.at(i, j) * att.at(i, j);
                    }
                    for j in 0..=i {
                        let ds = att.at(i, j) * (datt.at(i, j) - dot) * scale;
                        // dQ[i] += dS K[j]; dK[j] += dS Q[i].
                        for k in 0..dh {
                            let kv = cache.qkv_out.at(b * seq + j, c + off + k);
                            let qv = cache.qkv_out.at(b * seq + i, off + k);
                            *d_qkv.at_mut(b * seq + i, off + k) += ds * kv;
                            *d_qkv.at_mut(b * seq + j, c + off + k) += ds * qv;
                        }
                    }
                }
            }
        }
        self.qkv.backward(&cache.qkv_cache, &d_qkv)
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.qkv.params_mut();
        p.extend(self.proj.params_mut());
        p
    }
}

/// The two-layer GELU MLP of a transformer block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Up projection `[c × 4c]`.
    pub fc1: Linear,
    /// Down projection `[4c × c]`.
    pub fc2: Linear,
}

/// Cache for [`Mlp::forward`].
pub struct MlpCache {
    c1: LinearCache,
    h_pre: Tensor,
    c2: LinearCache,
}

impl Mlp {
    /// A new MLP over `dim` channels.
    pub fn new(dim: usize, seed: u64, name: &str) -> Self {
        Mlp {
            fc1: Linear::new(dim, 4 * dim, seed, &format!("{name}.fc1")),
            fc2: Linear::new(4 * dim, dim, seed + 1, &format!("{name}.fc2")),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, MlpCache) {
        let (h_pre, c1) = self.fc1.forward(x);
        let h = gelu(&h_pre);
        let (y, c2) = self.fc2.forward(&h);
        (y, MlpCache { c1, h_pre, c2 })
    }

    /// Backward pass.
    pub fn backward(&mut self, cache: &MlpCache, dy: &Tensor) -> Tensor {
        let dh = self.fc2.backward(&cache.c2, dy);
        let dh_pre = gelu_backward(&cache.h_pre, &dh);
        self.fc1.backward(&cache.c1, &dh_pre)
    }

    /// The layer's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.fc1.params_mut();
        p.extend(self.fc2.params_mut());
        p
    }
}

/// One pre-norm transformer block: `x + attn(ln1 x)`, then `x + mlp(ln2 x)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Pre-attention norm.
    pub ln1: LayerNorm,
    /// Self-attention.
    pub attn: Attention,
    /// Pre-MLP norm.
    pub ln2: LayerNorm,
    /// Feed-forward.
    pub mlp: Mlp,
}

/// Cache for [`Block::forward`].
pub struct BlockCache {
    ln1: LayerNormCache,
    attn: AttentionCache,
    ln2: LayerNormCache,
    mlp: MlpCache,
}

impl Block {
    /// A new block over `dim` channels with `n_head` heads.
    pub fn new(dim: usize, n_head: usize, seed: u64, name: &str) -> Self {
        Block {
            ln1: LayerNorm::new(dim, &format!("{name}.ln1")),
            attn: Attention::new(dim, n_head, seed, &format!("{name}.attn")),
            ln2: LayerNorm::new(dim, &format!("{name}.ln2")),
            mlp: Mlp::new(dim, seed + 100, &format!("{name}.mlp")),
        }
    }

    /// Forward over `x` of shape `[batch*seq, dim]`.
    pub fn forward(&self, x: &Tensor, batch: usize, seq: usize) -> (Tensor, BlockCache) {
        let (n1, ln1) = self.ln1.forward(x);
        let (a, attn) = self.attn.forward(&n1, batch, seq);
        let mut x1 = x.clone();
        x1.add_assign(&a);
        let (n2, ln2) = self.ln2.forward(&x1);
        let (m, mlp) = self.mlp.forward(&n2);
        let mut y = x1;
        y.add_assign(&m);
        (
            y,
            BlockCache {
                ln1,
                attn,
                ln2,
                mlp,
            },
        )
    }

    /// Backward pass.
    pub fn backward(&mut self, cache: &BlockCache, dy: &Tensor) -> Tensor {
        // y = x1 + mlp(ln2(x1)).
        let dm = self.mlp.backward(&cache.mlp, dy);
        let dn2 = self.ln2.backward(&cache.ln2, &dm);
        let mut dx1 = dy.clone();
        dx1.add_assign(&dn2);
        // x1 = x + attn(ln1(x)).
        let da = self.attn.backward(&cache.attn, &dx1);
        let dn1 = self.ln1.backward(&cache.ln1, &da);
        let mut dx = dx1;
        dx.add_assign(&dn1);
        dx
    }

    /// The block's parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.ln2.params_mut());
        p.extend(self.mlp.params_mut());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loss_of(y: &Tensor) -> f32 {
        // Asymmetric scalar objective.
        y.data
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((i % 5) as f32 - 2.0))
            .sum()
    }

    fn dy_of(y: &Tensor) -> Tensor {
        let mut d = Tensor::zeros(y.rows, y.cols);
        for i in 0..d.data.len() {
            d.data[i] = (i % 5) as f32 - 2.0;
        }
        d
    }

    fn finite_diff_block(block: &Block, x: &Tensor, batch: usize, seq: usize) -> Tensor {
        let h = 1e-2f32;
        let mut g = Tensor::zeros(x.rows, x.cols);
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += h;
            let mut xm = x.clone();
            xm.data[i] -= h;
            let (yp, _) = block.forward(&xp, batch, seq);
            let (ym, _) = block.forward(&xm, batch, seq);
            g.data[i] = (loss_of(&yp) - loss_of(&ym)) / (2.0 * h);
        }
        g
    }

    #[test]
    fn attention_is_causal() {
        // Changing a later token must not change earlier outputs.
        let attn = Attention::new(8, 2, 5, "a");
        let x = Tensor::randn(6, 8, 0.5, 6);
        let (y1, _) = attn.forward(&x, 1, 6);
        let mut x2 = x.clone();
        for v in x2.row_mut(5) {
            *v += 1.0;
        }
        let (y2, _) = attn.forward(&x2, 1, 6);
        for i in 0..5 {
            assert_eq!(y1.row(i), y2.row(i), "token {i} saw the future");
        }
        assert_ne!(y1.row(5), y2.row(5));
    }

    #[test]
    fn attention_backward_matches_finite_difference() {
        let mut attn = Attention::new(8, 2, 7, "a");
        let x = Tensor::randn(4, 8, 0.5, 8);
        let (y, cache) = attn.forward(&x, 1, 4);
        let dx = attn.backward(&cache, &dy_of(&y));
        // Finite differences on the input.
        let h = 1e-2f32;
        let mut fd = Tensor::zeros(x.rows, x.cols);
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += h;
            let mut xm = x.clone();
            xm.data[i] -= h;
            let (yp, _) = attn.forward(&xp, 1, 4);
            let (ym, _) = attn.forward(&xm, 1, 4);
            fd.data[i] = (loss_of(&yp) - loss_of(&ym)) / (2.0 * h);
        }
        assert!(
            dx.max_abs_diff(&fd) < 3e-2,
            "attention dx error {}",
            dx.max_abs_diff(&fd)
        );
    }

    #[test]
    fn block_backward_matches_finite_difference() {
        let mut block = Block::new(8, 2, 11, "b");
        let x = Tensor::randn(6, 8, 0.4, 12);
        let (y, cache) = block.forward(&x, 2, 3);
        let dx = block.backward(&cache, &dy_of(&y));
        let fd = finite_diff_block(&block, &x, 2, 3);
        assert!(
            dx.max_abs_diff(&fd) < 5e-2,
            "block dx error {}",
            dx.max_abs_diff(&fd)
        );
    }

    #[test]
    fn forward_is_deterministic_and_cache_free_of_side_effects() {
        let block = Block::new(8, 2, 21, "b");
        let x = Tensor::randn(4, 8, 0.4, 22);
        let (y1, _) = block.forward(&x, 1, 4);
        let (y2, _) = block.forward(&x, 1, 4);
        assert_eq!(y1, y2, "recompute must reproduce the forward exactly");
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut lin = Linear::new(3, 2, 31, "l");
        let x = Tensor::randn(2, 3, 1.0, 32);
        let (y, c) = lin.forward(&x);
        let dy = dy_of(&y);
        lin.backward(&c, &dy);
        let g1 = lin.w.g.clone();
        let (_, c) = lin.forward(&x);
        lin.backward(&c, &dy);
        let mut doubled = g1.clone();
        doubled.add_assign(&g1);
        assert!(lin.w.g.max_abs_diff(&doubled) < 1e-5);
    }

    #[test]
    fn param_names_are_distinct() {
        let mut block = Block::new(8, 2, 41, "blk0");
        let mut names: Vec<String> = block.params_mut().iter().map(|p| p.name.clone()).collect();
        let total = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate parameter names");
    }
}
