//! Matrix and nonlinearity operations with manual backward passes.
//!
//! Every forward has a matching backward derived by hand; the property
//! tests at the bottom verify each against finite differences, so the whole
//! engine's gradients are trustworthy by induction.

use crate::tensor::Tensor;

/// `a [r×k] @ b [k×c] -> [r×c]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul inner dimension mismatch");
    let mut out = Tensor::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let av = a.at(i, k);
            if av == 0.0 {
                continue;
            }
            let brow = b.row(k);
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `a^T [k×r]^T @ b [k×c] -> [r×c]` — used for weight gradients
/// (`dW = X^T dY`).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows, b.rows, "matmul_tn leading dimension mismatch");
    let mut out = Tensor::zeros(a.cols, b.cols);
    for k in 0..a.rows {
        let arow = a.row(k);
        let brow = b.row(k);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = out.row_mut(i);
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    out
}

/// `a [r×k] @ b^T [c×k]^T -> [r×c]` — used for input gradients
/// (`dX = dY W^T`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_nt trailing dimension mismatch");
    let mut out = Tensor::zeros(a.rows, b.rows);
    for i in 0..a.rows {
        let arow = a.row(i);
        for j in 0..b.rows {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (av, bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *out.at_mut(i, j) = acc;
        }
    }
    out
}

/// Adds a bias row to every row of `x` in place.
pub fn add_bias(x: &mut Tensor, bias: &[f32]) {
    assert_eq!(x.cols, bias.len(), "bias width mismatch");
    for r in 0..x.rows {
        for (v, b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Column sums of `dy` — the bias gradient.
pub fn bias_grad(dy: &Tensor) -> Vec<f32> {
    let mut g = vec![0.0f32; dy.cols];
    for r in 0..dy.rows {
        for (gv, v) in g.iter_mut().zip(dy.row(r)) {
            *gv += v;
        }
    }
    g
}

/// GELU (tanh approximation), element-wise.
pub fn gelu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    for v in &mut out.data {
        *v = gelu_scalar(*v);
    }
    out
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

/// Backward of [`gelu`]: `dx = dy ∘ gelu'(x)`.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.data.len(), dy.data.len(), "gelu backward shape mismatch");
    let mut out = dy.clone();
    for (g, &xv) in out.data.iter_mut().zip(&x.data) {
        *g *= gelu_grad_scalar(xv);
    }
    out
}

/// Per-row layer normalization: `y = (x - mean) / sqrt(var + eps) * g + b`.
///
/// Returns `(y, xhat)` where `xhat` is the normalized input cached for the
/// backward pass; `inv_std` per row is returned as the third element.
pub fn layernorm(x: &Tensor, gain: &[f32], bias: &[f32], eps: f32) -> (Tensor, Tensor, Vec<f32>) {
    assert_eq!(x.cols, gain.len());
    assert_eq!(x.cols, bias.len());
    let n = x.cols as f32;
    let mut y = Tensor::zeros(x.rows, x.cols);
    let mut xhat = Tensor::zeros(x.rows, x.cols);
    let mut inv_std = Vec::with_capacity(x.rows);
    for r in 0..x.rows {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let is = 1.0 / (var + eps).sqrt();
        inv_std.push(is);
        for c in 0..x.cols {
            let xh = (row[c] - mean) * is;
            *xhat.at_mut(r, c) = xh;
            *y.at_mut(r, c) = xh * gain[c] + bias[c];
        }
    }
    (y, xhat, inv_std)
}

/// Backward of [`layernorm`]. Returns `(dx, dgain, dbias)`.
#[allow(clippy::needless_range_loop)]
pub fn layernorm_backward(
    dy: &Tensor,
    xhat: &Tensor,
    inv_std: &[f32],
    gain: &[f32],
) -> (Tensor, Vec<f32>, Vec<f32>) {
    let n = dy.cols as f32;
    let mut dx = Tensor::zeros(dy.rows, dy.cols);
    let mut dgain = vec![0.0f32; dy.cols];
    let mut dbias = vec![0.0f32; dy.cols];
    for r in 0..dy.rows {
        let dyr = dy.row(r);
        let xhr = xhat.row(r);
        let mut sum_dyg = 0.0f32;
        let mut sum_dyg_xh = 0.0f32;
        for c in 0..dy.cols {
            let dyg = dyr[c] * gain[c];
            sum_dyg += dyg;
            sum_dyg_xh += dyg * xhr[c];
            dgain[c] += dyr[c] * xhr[c];
            dbias[c] += dyr[c];
        }
        for c in 0..dy.cols {
            let dyg = dyr[c] * gain[c];
            *dx.at_mut(r, c) = inv_std[r] * (dyg - sum_dyg / n - xhr[c] * sum_dyg_xh / n);
        }
    }
    (dx, dgain, dbias)
}

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows(x: &mut Tensor) {
    for r in 0..x.rows {
        let row = x.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Mean cross-entropy of `logits` rows against integer `targets`.
///
/// Returns `(loss, dlogits)` where `dlogits` is the gradient of the *mean*
/// loss (already divided by the row count).
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rows, targets.len(), "one target per row");
    let mut probs = logits.clone();
    softmax_rows(&mut probs);
    let n = logits.rows as f32;
    let mut loss = 0.0f32;
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < logits.cols, "target out of vocabulary");
        loss -= probs.at(r, t).max(1e-12).ln();
    }
    let mut dlogits = probs;
    for (r, &t) in targets.iter().enumerate() {
        *dlogits.at_mut(r, t) -= 1.0;
    }
    dlogits.scale(1.0 / n);
    (loss / n, dlogits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn finite_diff<F: Fn(&Tensor) -> f32>(x: &Tensor, f: F) -> Tensor {
        let mut g = Tensor::zeros(x.rows, x.cols);
        let h = 1e-2f32;
        for i in 0..x.data.len() {
            let mut xp = x.clone();
            xp.data[i] += h;
            let mut xm = x.clone();
            xm.data[i] -= h;
            g.data[i] = (f(&xp) - f(&xm)) / (2.0 * h);
        }
        g
    }

    #[test]
    fn matmul_matches_hand_example() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 2, vec![5., 6., 7., 8.]);
        assert_eq!(matmul(&a, &b).data, vec![19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_variants_agree_with_explicit_transposes() {
        let a = Tensor::randn(3, 4, 1.0, 1);
        let b = Tensor::randn(3, 5, 1.0, 2);
        // a^T b via matmul_tn vs manual transpose.
        let mut at = Tensor::zeros(4, 3);
        for i in 0..3 {
            for j in 0..4 {
                *at.at_mut(j, i) = a.at(i, j);
            }
        }
        let want = matmul(&at, &b);
        let got = matmul_tn(&a, &b);
        assert!(want.max_abs_diff(&got) < 1e-5);

        let c = Tensor::randn(5, 4, 1.0, 3);
        let mut ct = Tensor::zeros(4, 5);
        for i in 0..5 {
            for j in 0..4 {
                *ct.at_mut(j, i) = c.at(i, j);
            }
        }
        let want = matmul(&a, &ct);
        let got = matmul_nt(&a, &c);
        assert!(want.max_abs_diff(&got) < 1e-5);
    }

    #[test]
    fn linear_backward_matches_finite_difference() {
        let x = Tensor::randn(4, 3, 0.8, 10);
        let w = Tensor::randn(3, 2, 0.8, 11);
        // Scalar objective: sum(x @ w).
        let f = |x: &Tensor| matmul(x, &w).data.iter().sum::<f32>();
        let dy = Tensor::from_vec(4, 2, vec![1.0; 8]);
        let dx = matmul_nt(&dy, &w);
        let fd = finite_diff(&x, f);
        assert!(
            dx.max_abs_diff(&fd) < 1e-2,
            "dx error {}",
            dx.max_abs_diff(&fd)
        );
        // And dW = x^T dy.
        let fw = |w: &Tensor| matmul(&x, w).data.iter().sum::<f32>();
        let dw = matmul_tn(&x, &dy);
        let fdw = finite_diff(&w, fw);
        assert!(dw.max_abs_diff(&fdw) < 1e-2);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let x = Tensor::randn(3, 3, 2.0, 20);
        let f = |x: &Tensor| gelu(x).data.iter().sum::<f32>();
        let dy = Tensor::from_vec(3, 3, vec![1.0; 9]);
        let dx = gelu_backward(&x, &dy);
        let fd = finite_diff(&x, f);
        assert!(
            dx.max_abs_diff(&fd) < 2e-2,
            "error {}",
            dx.max_abs_diff(&fd)
        );
    }

    #[test]
    fn layernorm_backward_matches_finite_difference() {
        let x = Tensor::randn(3, 6, 1.0, 30);
        let gain = vec![1.2f32; 6];
        let bias = vec![0.1f32; 6];
        let f = |x: &Tensor| {
            let (y, _, _) = layernorm(x, &gain, &bias, 1e-5);
            // A non-symmetric objective to exercise cross terms.
            y.data
                .iter()
                .enumerate()
                .map(|(i, v)| v * (i % 3) as f32)
                .sum::<f32>()
        };
        let (_, xhat, inv) = layernorm(&x, &gain, &bias, 1e-5);
        let mut dy = Tensor::zeros(3, 6);
        for i in 0..dy.data.len() {
            dy.data[i] = (i % 3) as f32;
        }
        let (dx, _, _) = layernorm_backward(&dy, &xhat, &inv, &gain);
        let fd = finite_diff(&x, f);
        assert!(
            dx.max_abs_diff(&fd) < 3e-2,
            "error {}",
            dx.max_abs_diff(&fd)
        );
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::randn(4, 5, 1.0, 40);
        let targets = vec![0usize, 2, 4, 1];
        let f = |l: &Tensor| cross_entropy(l, &targets).0;
        let (_, d) = cross_entropy(&logits, &targets);
        let fd = finite_diff(&logits, f);
        assert!(d.max_abs_diff(&fd) < 1e-2, "error {}", d.max_abs_diff(&fd));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Tensor::randn(5, 7, 3.0, 50);
        softmax_rows(&mut x);
        for r in 0..5 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(x.row(r).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn bias_roundtrip() {
        let mut x = Tensor::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(x.data, vec![1., -2., 1., -2., 1., -2.]);
        assert_eq!(bias_grad(&x), vec![3.0, -6.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn matmul_is_linear_in_first_argument(seed in 0u64..1000) {
            let a = Tensor::randn(3, 4, 1.0, seed);
            let b = Tensor::randn(3, 4, 1.0, seed + 1);
            let w = Tensor::randn(4, 2, 1.0, seed + 2);
            let mut sum = a.clone();
            sum.add_assign(&b);
            let lhs = matmul(&sum, &w);
            let mut rhs = matmul(&a, &w);
            rhs.add_assign(&matmul(&b, &w));
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
        }

        #[test]
        fn cross_entropy_is_nonnegative(seed in 0u64..1000) {
            let logits = Tensor::randn(3, 6, 2.0, seed);
            let targets = vec![seed as usize % 6, (seed as usize + 1) % 6, 0];
            let (loss, _) = cross_entropy(&logits, &targets);
            prop_assert!(loss >= 0.0);
        }
    }
}
