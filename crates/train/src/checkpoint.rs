//! Per-layer checkpointing and depth-changing resume (paper Section 4.5).
//!
//! Varuna checkpoints each layer independently so a resumed job can map
//! layers onto a *different* number of pipeline stages. We write one JSON
//! file per component (`wte`, `wpe`, `block_<i>`, `ln_f`, `head`) plus a
//! manifest, and support sharding the write across data-parallel replicas —
//! "since data-parallel replicas have the same model state, we shard the
//! checkpointing across replicas for performance".

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::layers::{Block, LayerNorm, Param};
use crate::model::{MiniGpt, ModelConfig};

/// The checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Mini-batches completed when the checkpoint was taken.
    pub step: u64,
    /// Number of block files.
    pub layers: usize,
}

/// Saves `model` at training `step` into directory `dir` (created if
/// needed), one file per layer.
pub fn save(model: &MiniGpt, step: u64, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let write = |name: &str, json: String| fs::write(dir.join(name), json);
    write(
        "manifest.json",
        serde_json::to_string(&Manifest {
            cfg: model.cfg,
            step,
            layers: model.blocks.len(),
        })?,
    )?;
    write("wte.json", serde_json::to_string(&model.wte)?)?;
    write("wpe.json", serde_json::to_string(&model.wpe)?)?;
    for (i, b) in model.blocks.iter().enumerate() {
        write(&format!("block_{i}.json"), serde_json::to_string(b)?)?;
    }
    write("ln_f.json", serde_json::to_string(&model.ln_f)?)?;
    if let Some(h) = &model.head {
        write("head.json", serde_json::to_string(h)?)?;
    }
    Ok(())
}

/// Saves only the layers assigned to shard `shard` of `num_shards` —
/// replica `r` of `D` writes every D-th layer. The union of all shards is
/// a complete checkpoint; embeddings and the final norm belong to shard 0
/// and the last shard respectively.
pub fn save_sharded(
    model: &MiniGpt,
    step: u64,
    dir: &Path,
    shard: usize,
    num_shards: usize,
) -> io::Result<()> {
    assert!(shard < num_shards, "shard index out of range");
    fs::create_dir_all(dir)?;
    let write = |name: &str, json: String| fs::write(dir.join(name), json);
    if shard == 0 {
        write(
            "manifest.json",
            serde_json::to_string(&Manifest {
                cfg: model.cfg,
                step,
                layers: model.blocks.len(),
            })?,
        )?;
        write("wte.json", serde_json::to_string(&model.wte)?)?;
        write("wpe.json", serde_json::to_string(&model.wpe)?)?;
    }
    if shard == num_shards - 1 {
        write("ln_f.json", serde_json::to_string(&model.ln_f)?)?;
        if let Some(h) = &model.head {
            write("head.json", serde_json::to_string(h)?)?;
        }
    }
    for (i, b) in model.blocks.iter().enumerate() {
        if i % num_shards == shard {
            write(&format!("block_{i}.json"), serde_json::to_string(b)?)?;
        }
    }
    Ok(())
}

/// Loads a checkpoint, returning the model and its training step.
///
/// # Errors
///
/// Returns an error if any per-layer file is missing or malformed — which
/// is how an incomplete (partially sharded) checkpoint is detected.
pub fn load(dir: &Path) -> io::Result<(MiniGpt, u64)> {
    let read = |name: &str| fs::read_to_string(dir.join(name));
    let manifest: Manifest = serde_json::from_str(&read("manifest.json")?)?;
    let wte: Param = serde_json::from_str(&read("wte.json")?)?;
    let wpe: Param = serde_json::from_str(&read("wpe.json")?)?;
    let mut blocks = Vec::with_capacity(manifest.layers);
    for i in 0..manifest.layers {
        let b: Block = serde_json::from_str(&read(&format!("block_{i}.json"))?)?;
        blocks.push(b);
    }
    let ln_f: LayerNorm = serde_json::from_str(&read("ln_f.json")?)?;
    let head = if manifest.cfg.tied {
        None
    } else {
        Some(serde_json::from_str(&read("head.json")?)?)
    };
    Ok((
        MiniGpt {
            cfg: manifest.cfg,
            wte,
            wpe,
            blocks,
            ln_f,
            head,
        },
        manifest.step,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Corpus, VOCAB};
    use crate::pipeline::PipelineTrainer;
    use crate::single::Trainer;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 8,
            dim: 16,
            heads: 2,
            layers: 4,
            tied: true,
            seed: 5,
        }
    }

    fn tempdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("varuna-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("roundtrip");
        save(&m, 17, &dir).unwrap();
        let (back, step) = load(&dir).unwrap();
        assert_eq!(step, 17);
        let mut a = m.clone();
        let mut b = back.clone();
        for (x, y) in a.params_mut().iter().zip(b.params_mut().iter()) {
            assert_eq!(x.w, y.w, "{} changed", x.name);
        }
    }

    #[test]
    fn sharded_writes_compose_into_a_full_checkpoint() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("sharded");
        for shard in 0..3 {
            save_sharded(&m, 9, &dir, shard, 3).unwrap();
        }
        let (back, step) = load(&dir).unwrap();
        assert_eq!(step, 9);
        assert_eq!(back.blocks.len(), 4);
        assert_eq!(m.wte.w, back.wte.w);
    }

    #[test]
    fn incomplete_shard_set_fails_loudly() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("partial");
        // Only shard 0 of 3 written: blocks 1 and 2 are missing.
        save_sharded(&m, 1, &dir, 0, 3).unwrap();
        assert!(load(&dir).is_err(), "partial checkpoint must not load");
    }

    #[test]
    fn resume_with_different_pipeline_depth_preserves_trajectory() {
        // The Section 4.5 claim: per-layer checkpoints let the morphing
        // framework remap layers to a different number of stages.
        let corpus = Corpus::synthetic(3000, 21);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus.clone(), 0.1, 8, 4, 1, 2);
        for _ in 0..2 {
            reference.train_minibatch(2);
            pipe.train_minibatch();
        }
        // Checkpoint from the 4-stage run...
        let dir = tempdir("resume");
        save(&pipe.reassemble(), pipe.step, &dir).unwrap();
        // ...resume as a 2-stage, 2-replica job.
        let (model, step) = load(&dir).unwrap();
        let mut resumed = PipelineTrainer::from_model(model, corpus, 0.1, 8, 2, 2, 1);
        resumed.step = step;
        for _ in 0..2 {
            reference.train_minibatch(2);
            resumed.train_minibatch();
        }
        let mut a = reference.model.clone();
        let mut b = resumed.reassemble();
        let diff = a
            .params_mut()
            .iter()
            .zip(b.params_mut().iter())
            .map(|(x, y)| x.w.max_abs_diff(&y.w))
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "depth-changing resume diverged by {diff}");
    }
}
