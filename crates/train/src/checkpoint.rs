//! Per-layer checkpointing and depth-changing resume (paper Section 4.5).
//!
//! Varuna checkpoints each layer independently so a resumed job can map
//! layers onto a *different* number of pipeline stages. We write one JSON
//! file per component (`wte`, `wpe`, `block_<i>`, `ln_f`, `head`) plus a
//! manifest, and support sharding the write across data-parallel replicas —
//! "since data-parallel replicas have the same model state, we shard the
//! checkpointing across replicas for performance".
//!
//! **Delta checkpoints** ([`save_delta`] / [`load_delta_chain`]) store a
//! frame of XOR bit patterns against an anchoring *full* checkpoint: each
//! `f32` of every parameter (weights and gradient accumulators alike) is
//! XORed bit-for-bit with the base, so applying the delta to the base
//! reconstructs the later state *exactly* — restore-from-(full + delta)
//! is bit-identical to restore-from-full, the property the differential
//! suite in `tests/delta_restore_equivalence.rs` pins. Every delta
//! anchors directly at its full (no delta-of-delta), matching the
//! manager's chain model, and the manifest records the payload's exact
//! byte length so a torn (partially written) frame is detected before it
//! can be silently restored.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::layers::{Block, LayerNorm, Param};
use crate::model::{MiniGpt, ModelConfig};

/// The checkpoint manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Mini-batches completed when the checkpoint was taken.
    pub step: u64,
    /// Number of block files.
    pub layers: usize,
}

/// Saves `model` at training `step` into directory `dir` (created if
/// needed), one file per layer.
pub fn save(model: &MiniGpt, step: u64, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let write = |name: &str, json: String| fs::write(dir.join(name), json);
    write(
        "manifest.json",
        serde_json::to_string(&Manifest {
            cfg: model.cfg,
            step,
            layers: model.blocks.len(),
        })?,
    )?;
    write("wte.json", serde_json::to_string(&model.wte)?)?;
    write("wpe.json", serde_json::to_string(&model.wpe)?)?;
    for (i, b) in model.blocks.iter().enumerate() {
        write(&format!("block_{i}.json"), serde_json::to_string(b)?)?;
    }
    write("ln_f.json", serde_json::to_string(&model.ln_f)?)?;
    if let Some(h) = &model.head {
        write("head.json", serde_json::to_string(h)?)?;
    }
    Ok(())
}

/// Saves only the layers assigned to shard `shard` of `num_shards` —
/// replica `r` of `D` writes every D-th layer. The union of all shards is
/// a complete checkpoint; embeddings and the final norm belong to shard 0
/// and the last shard respectively.
pub fn save_sharded(
    model: &MiniGpt,
    step: u64,
    dir: &Path,
    shard: usize,
    num_shards: usize,
) -> io::Result<()> {
    assert!(shard < num_shards, "shard index out of range");
    fs::create_dir_all(dir)?;
    let write = |name: &str, json: String| fs::write(dir.join(name), json);
    if shard == 0 {
        write(
            "manifest.json",
            serde_json::to_string(&Manifest {
                cfg: model.cfg,
                step,
                layers: model.blocks.len(),
            })?,
        )?;
        write("wte.json", serde_json::to_string(&model.wte)?)?;
        write("wpe.json", serde_json::to_string(&model.wpe)?)?;
    }
    if shard == num_shards - 1 {
        write("ln_f.json", serde_json::to_string(&model.ln_f)?)?;
        if let Some(h) = &model.head {
            write("head.json", serde_json::to_string(h)?)?;
        }
    }
    for (i, b) in model.blocks.iter().enumerate() {
        if i % num_shards == shard {
            write(&format!("block_{i}.json"), serde_json::to_string(b)?)?;
        }
    }
    Ok(())
}

/// Loads a checkpoint, returning the model and its training step.
///
/// # Errors
///
/// Returns an error if any per-layer file is missing or malformed — which
/// is how an incomplete (partially sharded) checkpoint is detected.
pub fn load(dir: &Path) -> io::Result<(MiniGpt, u64)> {
    let read = |name: &str| fs::read_to_string(dir.join(name));
    let manifest: Manifest = serde_json::from_str(&read("manifest.json")?)?;
    let wte: Param = serde_json::from_str(&read("wte.json")?)?;
    let wpe: Param = serde_json::from_str(&read("wpe.json")?)?;
    let mut blocks = Vec::with_capacity(manifest.layers);
    for i in 0..manifest.layers {
        let b: Block = serde_json::from_str(&read(&format!("block_{i}.json"))?)?;
        blocks.push(b);
    }
    let ln_f: LayerNorm = serde_json::from_str(&read("ln_f.json")?)?;
    let head = if manifest.cfg.tied {
        None
    } else {
        Some(serde_json::from_str(&read("head.json")?)?)
    };
    Ok((
        MiniGpt {
            cfg: manifest.cfg,
            wte,
            wpe,
            blocks,
            ln_f,
            head,
        },
        manifest.step,
    ))
}

/// Manifest of one delta frame: the step it captures, the full
/// checkpoint it anchors at, and the exact size of the payload file (the
/// torn-write detector).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaManifest {
    /// Model configuration (must match the anchoring full's).
    pub cfg: ModelConfig,
    /// Mini-batches completed when the delta was taken.
    pub step: u64,
    /// Step of the full checkpoint this delta is XORed against.
    pub base_step: u64,
    /// `u32` XOR words in the payload.
    pub words: usize,
    /// Exact byte length of `delta_payload.json` when fully written; a
    /// shorter file on disk is a torn frame.
    pub payload_bytes: u64,
}

/// Flattens every parameter of `model` (weights then gradient
/// accumulators, in the optimizer's stable order) to raw `f32` bit
/// patterns.
fn flat_bits(model: &MiniGpt) -> Vec<u32> {
    let mut m = model.clone();
    let mut out = Vec::new();
    for p in m.params_mut() {
        out.extend(p.w.data.iter().map(|v| v.to_bits()));
        out.extend(p.g.data.iter().map(|v| v.to_bits()));
    }
    out
}

/// Applies `words` as XOR bit patterns onto `model` in the same stable
/// order [`flat_bits`] uses.
///
/// # Errors
///
/// `InvalidData` if the word count does not match the model's parameter
/// count.
fn apply_bits(model: &mut MiniGpt, words: &[u32]) -> io::Result<()> {
    let mut it = words.iter();
    for p in model.params_mut() {
        for v in p.w.data.iter_mut().chain(p.g.data.iter_mut()) {
            let x = it.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "delta payload too short for model",
                )
            })?;
            *v = f32::from_bits(v.to_bits() ^ x);
        }
    }
    if it.next().is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "delta payload longer than model",
        ));
    }
    Ok(())
}

/// Saves a delta frame for `model` at training `step` into `dir`,
/// anchored at `(base, base_step)` — the state a [`load`] of the full
/// checkpoint reproduces. The payload is written before the manifest, so
/// a frame whose manifest exists but whose payload is short is
/// detectably torn rather than silently wrong.
///
/// # Panics
///
/// Panics if `base` has a different configuration than `model` (a delta
/// across shapes is meaningless).
pub fn save_delta(
    model: &MiniGpt,
    step: u64,
    base: &MiniGpt,
    base_step: u64,
    dir: &Path,
) -> io::Result<()> {
    assert_eq!(model.cfg, base.cfg, "delta across model shapes");
    fs::create_dir_all(dir)?;
    let new = flat_bits(model);
    let old = flat_bits(base);
    assert_eq!(new.len(), old.len(), "same cfg must mean same param count");
    let words: Vec<u32> = new.iter().zip(&old).map(|(a, b)| a ^ b).collect();
    let payload = serde_json::to_string(&words)?;
    fs::write(dir.join("delta_payload.json"), &payload)?;
    fs::write(
        dir.join("delta_manifest.json"),
        serde_json::to_string(&DeltaManifest {
            cfg: model.cfg,
            step,
            base_step,
            words: words.len(),
            payload_bytes: payload.len() as u64,
        })?,
    )?;
    Ok(())
}

/// Reads and validates one delta frame without applying it.
///
/// # Errors
///
/// `InvalidData` with a "torn delta frame" message when the payload file
/// is shorter (or longer) than the manifest promised, and parse errors
/// for malformed JSON.
fn read_delta(dir: &Path) -> io::Result<(DeltaManifest, Vec<u32>)> {
    let manifest: DeltaManifest =
        serde_json::from_str(&fs::read_to_string(dir.join("delta_manifest.json"))?)?;
    let payload = fs::read_to_string(dir.join("delta_payload.json"))?;
    if payload.len() as u64 != manifest.payload_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "torn delta frame in {}: {} of {} payload bytes on disk",
                dir.display(),
                payload.len(),
                manifest.payload_bytes
            ),
        ));
    }
    let words: Vec<u32> = serde_json::from_str(&payload)?;
    if words.len() != manifest.words {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "torn delta frame in {}: {} of {} words decoded",
                dir.display(),
                words.len(),
                manifest.words
            ),
        ));
    }
    Ok((manifest, words))
}

/// Restores from a full checkpoint plus a chain of delta frames, all
/// anchored at that full, returning the model and step of the *latest*
/// frame. An empty chain degenerates to [`load`].
///
/// Every frame is validated — ascending steps, matching configuration,
/// `base_step` equal to the full's step, payload exactly as long as its
/// manifest promises — before anything is applied, so a chain truncated
/// mid-write (a torn frame anywhere in it) is an error, never a silent
/// restore of stale or garbled state.
///
/// # Errors
///
/// `InvalidData` for torn frames, broken anchoring, out-of-order steps,
/// or a payload that does not match the model's parameter count; plus
/// any I/O error loading the full checkpoint.
pub fn load_delta_chain(base_dir: &Path, deltas: &[&Path]) -> io::Result<(MiniGpt, u64)> {
    let (mut model, base_step) = load(base_dir)?;
    let mut frames = Vec::with_capacity(deltas.len());
    let mut prev_step = base_step;
    for dir in deltas {
        let (manifest, words) = read_delta(dir)?;
        if manifest.base_step != base_step {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "broken delta chain: frame at step {} anchors at {} but the full is at {}",
                    manifest.step, manifest.base_step, base_step
                ),
            ));
        }
        if manifest.cfg != model.cfg {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "broken delta chain: configuration mismatch",
            ));
        }
        if manifest.step <= prev_step {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "broken delta chain: step {} does not advance past {}",
                    manifest.step, prev_step
                ),
            ));
        }
        prev_step = manifest.step;
        frames.push((manifest, words));
    }
    // Each delta is XORed directly against the full, so only the newest
    // valid frame needs applying — but only after the whole chain
    // validated above.
    if let Some((manifest, words)) = frames.pop() {
        apply_bits(&mut model, &words)?;
        return Ok((model, manifest.step));
    }
    Ok((model, base_step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Corpus, VOCAB};
    use crate::pipeline::PipelineTrainer;
    use crate::single::Trainer;

    fn cfg() -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 8,
            dim: 16,
            heads: 2,
            layers: 4,
            tied: true,
            seed: 5,
        }
    }

    fn tempdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("varuna-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("roundtrip");
        save(&m, 17, &dir).unwrap();
        let (back, step) = load(&dir).unwrap();
        assert_eq!(step, 17);
        let mut a = m.clone();
        let mut b = back.clone();
        for (x, y) in a.params_mut().iter().zip(b.params_mut().iter()) {
            assert_eq!(x.w, y.w, "{} changed", x.name);
        }
    }

    #[test]
    fn sharded_writes_compose_into_a_full_checkpoint() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("sharded");
        for shard in 0..3 {
            save_sharded(&m, 9, &dir, shard, 3).unwrap();
        }
        let (back, step) = load(&dir).unwrap();
        assert_eq!(step, 9);
        assert_eq!(back.blocks.len(), 4);
        assert_eq!(m.wte.w, back.wte.w);
    }

    #[test]
    fn incomplete_shard_set_fails_loudly() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("partial");
        // Only shard 0 of 3 written: blocks 1 and 2 are missing.
        save_sharded(&m, 1, &dir, 0, 3).unwrap();
        assert!(load(&dir).is_err(), "partial checkpoint must not load");
    }

    #[test]
    fn delta_round_trip_is_bit_exact() {
        let base = MiniGpt::new(cfg());
        let mut later = base.clone();
        // Perturb a few weights, including to values a lossy encoding
        // would mangle.
        later.wte.w.data[0] = f32::MIN_POSITIVE;
        later.wte.w.data[1] = -0.0;
        later.blocks[2].ln1.gain.w.data[3] = 1.000_000_1;
        let full_dir = tempdir("delta-full");
        let delta_dir = tempdir("delta-frame");
        save(&base, 10, &full_dir).unwrap();
        save_delta(&later, 12, &base, 10, &delta_dir).unwrap();
        let (back, step) = load_delta_chain(&full_dir, &[&delta_dir]).unwrap();
        assert_eq!(step, 12);
        let mut a = later.clone();
        let mut b = back.clone();
        for (x, y) in a.params_mut().iter().zip(b.params_mut().iter()) {
            for (u, v) in x.w.data.iter().zip(y.w.data.iter()) {
                assert_eq!(u.to_bits(), v.to_bits(), "{}: weight bits differ", x.name);
            }
            for (u, v) in x.g.data.iter().zip(y.g.data.iter()) {
                assert_eq!(u.to_bits(), v.to_bits(), "{}: grad bits differ", x.name);
            }
        }
    }

    #[test]
    fn empty_delta_chain_degenerates_to_the_full() {
        let m = MiniGpt::new(cfg());
        let dir = tempdir("delta-empty");
        save(&m, 7, &dir).unwrap();
        let (_, step) = load_delta_chain(&dir, &[]).unwrap();
        assert_eq!(step, 7);
    }

    #[test]
    fn torn_delta_payload_is_detected_not_restored() {
        let base = MiniGpt::new(cfg());
        let mut later = base.clone();
        later.wpe.w.data[0] += 1.0;
        let full_dir = tempdir("delta-torn-full");
        let delta_dir = tempdir("delta-torn-frame");
        save(&base, 10, &full_dir).unwrap();
        save_delta(&later, 12, &base, 10, &delta_dir).unwrap();
        let payload = delta_dir.join("delta_payload.json");
        let bytes = fs::read(&payload).unwrap();
        fs::write(&payload, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_delta_chain(&full_dir, &[&delta_dir]).unwrap_err();
        assert!(
            err.to_string().contains("torn delta frame"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn delta_anchored_at_the_wrong_full_is_rejected() {
        let base = MiniGpt::new(cfg());
        let mut later = base.clone();
        later.wpe.w.data[0] += 1.0;
        let full_dir = tempdir("delta-anchor-full");
        let delta_dir = tempdir("delta-anchor-frame");
        save(&base, 20, &full_dir).unwrap();
        // The delta claims to anchor at step 10, but the full is at 20.
        save_delta(&later, 22, &base, 10, &delta_dir).unwrap();
        let err = load_delta_chain(&full_dir, &[&delta_dir]).unwrap_err();
        assert!(
            err.to_string().contains("broken delta chain"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn resume_with_different_pipeline_depth_preserves_trajectory() {
        // The Section 4.5 claim: per-layer checkpoints let the morphing
        // framework remap layers to a different number of stages.
        let corpus = Corpus::synthetic(3000, 21);
        let mut reference = Trainer::new(cfg(), corpus.clone(), 0.1, 8);
        let mut pipe = PipelineTrainer::new(cfg(), corpus.clone(), 0.1, 8, 4, 1, 2);
        for _ in 0..2 {
            reference.train_minibatch(2);
            pipe.train_minibatch();
        }
        // Checkpoint from the 4-stage run...
        let dir = tempdir("resume");
        save(&pipe.reassemble(), pipe.step, &dir).unwrap();
        // ...resume as a 2-stage, 2-replica job.
        let (model, step) = load(&dir).unwrap();
        let mut resumed = PipelineTrainer::from_model(model, corpus, 0.1, 8, 2, 2, 1);
        resumed.step = step;
        for _ in 0..2 {
            reference.train_minibatch(2);
            resumed.train_minibatch();
        }
        let mut a = reference.model.clone();
        let mut b = resumed.reassemble();
        let diff = a
            .params_mut()
            .iter()
            .zip(b.params_mut().iter())
            .map(|(x, y)| x.w.max_abs_diff(&y.w))
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-3, "depth-changing resume diverged by {diff}");
    }
}
