//! Cross-partition dependency detection (paper Section 5.2).
//!
//! Inter-layer partitioning silently breaks models whose state spans
//! partitions: tied embedding weights, APEX-style global loss scaling, and
//! NVLAMB-style global gradient norms. Varuna's tracer dry-runs the
//! partitioned model in one process, marks every tensor with the cut-point
//! it belongs to, and flags anything referenced from more than one
//! partition. This module reproduces that: parameter identity (`Param::uid`)
//! survives the clone that materializes a tied weight on two stages, so a
//! dry run over the stage partitions reveals exactly which logical tensors
//! are shared — plus which optimizer-level operations read global state.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::model::MiniGpt;
use crate::pipeline::StagePart;

/// A tensor referenced by more than one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedFinding {
    /// Identity of the shared tensor.
    pub uid: u64,
    /// Names under which each partition sees it.
    pub names: Vec<String>,
    /// The partitions (stages) that reference it.
    pub stages: Vec<usize>,
}

/// An operation that reads state across all partitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalOpFinding {
    /// What the operation is.
    pub what: String,
    /// Why it must be synchronized.
    pub why: String,
}

/// The tracer's report: everything the user must mark as "shared".
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceReport {
    /// Tensors referenced from multiple partitions.
    pub shared_params: Vec<SharedFinding>,
    /// Optimizer/runtime operations over global state.
    pub global_ops: Vec<GlobalOpFinding>,
}

impl TraceReport {
    /// Whether the dry run found anything that needs synchronization.
    pub fn is_clean(&self) -> bool {
        self.shared_params.is_empty() && self.global_ops.is_empty()
    }
}

/// Dry-runs a `p`-way partitioning of `model` and reports every
/// cross-partition dependency.
///
/// `uses_loss_scaling` and `uses_global_norm` describe the training recipe
/// (APEX fp16 scaling, NVLAMB optimizer); when enabled they are reported as
/// global operations requiring a cross-partition allreduce.
pub fn trace_partitioning(
    model: &MiniGpt,
    p: usize,
    uses_loss_scaling: bool,
    uses_global_norm: bool,
) -> TraceReport {
    let mut parts = StagePart::split(model, p);
    // Which stages touch which tensor identity.
    let mut seen: BTreeMap<u64, (BTreeSet<usize>, BTreeSet<String>)> = BTreeMap::new();
    for part in &mut parts {
        let stage = part.stage;
        for prm in part.params_mut() {
            let e = seen.entry(prm.uid).or_default();
            e.0.insert(stage);
            e.1.insert(prm.name.clone());
        }
    }
    let shared_params = seen
        .into_iter()
        .filter(|(_, (stages, _))| stages.len() > 1)
        .map(|(uid, (stages, names))| SharedFinding {
            uid,
            names: names.into_iter().collect(),
            stages: stages.into_iter().collect(),
        })
        .collect();

    let mut global_ops = Vec::new();
    if uses_loss_scaling && p > 1 {
        global_ops.push(GlobalOpFinding {
            what: "dynamic loss scaling (APEX)".to_string(),
            why: "overflow in any one partition must rescale every partition; \
                  the overflow flag needs an allreduce each mini-batch"
                .to_string(),
        });
    }
    if uses_global_norm && p > 1 {
        global_ops.push(GlobalOpFinding {
            what: "global gradient norm (NVLAMB)".to_string(),
            why: "the norm is computed across all layers, which live on \
                  different partitions; partial norms need an allreduce"
                .to_string(),
        });
    }
    TraceReport {
        shared_params,
        global_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::VOCAB;
    use crate::model::ModelConfig;

    fn cfg(tied: bool) -> ModelConfig {
        ModelConfig {
            vocab: VOCAB,
            seq: 8,
            dim: 16,
            heads: 2,
            layers: 4,
            tied,
            seed: 1,
        }
    }

    #[test]
    fn tracer_catches_tied_embeddings() {
        let m = MiniGpt::new(cfg(true));
        let report = trace_partitioning(&m, 4, false, false);
        assert_eq!(report.shared_params.len(), 1, "exactly the tied embedding");
        let f = &report.shared_params[0];
        assert_eq!(f.stages, vec![0, 3], "shared between first and last stage");
        assert!(f.names.iter().any(|n| n == "wte"));
    }

    #[test]
    fn untied_model_is_clean() {
        let m = MiniGpt::new(cfg(false));
        let report = trace_partitioning(&m, 4, false, false);
        assert!(
            report.is_clean(),
            "untied model has no cross-partition state: {report:?}"
        );
    }

    #[test]
    fn loss_scaling_and_global_norm_are_flagged() {
        let m = MiniGpt::new(cfg(false));
        let report = trace_partitioning(&m, 4, true, true);
        assert_eq!(report.global_ops.len(), 2);
        assert!(report
            .global_ops
            .iter()
            .any(|g| g.what.contains("loss scaling")));
        assert!(report
            .global_ops
            .iter()
            .any(|g| g.what.contains("global gradient norm")));
    }

    #[test]
    fn single_partition_needs_no_sync() {
        // With P=1 nothing crosses a partition boundary: even the tied
        // model's two references live on the same stage, and global ops
        // are local.
        let m = MiniGpt::new(cfg(true));
        let report = trace_partitioning(&m, 1, true, true);
        assert!(report.global_ops.is_empty());
        assert!(report.shared_params.is_empty());
    }

    #[test]
    fn report_serializes_for_user_review() {
        // The paper: violations are "provided as a list ... to the user".
        let m = MiniGpt::new(cfg(true));
        let report = trace_partitioning(&m, 2, true, false);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
