#![warn(missing_docs)]
//! A real, miniature deep-learning training engine in pure Rust.
//!
//! The paper's correctness claims — synchronous-SGD semantics preserved by
//! the pipeline schedule, gradient-accumulation-based morphing that leaves
//! the optimization trajectory untouched, tied weights synchronized across
//! partitions, the tracer catching implicit cross-partition state, and
//! large-batch training converging like small-batch (Figures 9 and 10) —
//! are *semantic* claims about training code. This crate exercises them for
//! real at laptop scale: a GPT-style decoder with manual backward passes,
//! cut-points between blocks, a multi-threaded pipeline runtime with
//! activation recompute and ring-allreduce data parallelism, per-layer
//! checkpointing, and a PipeDream-2BW-style stale-update mode.
//!
//! Modules:
//!
//! - [`tensor`]: dense row-major f32 matrices.
//! - [`ops`]: matmul / layernorm / GELU / softmax / cross-entropy with
//!   manual backward.
//! - [`layers`]: Linear, LayerNorm, causal self-attention, MLP, block.
//! - [`model`]: the `MiniGpt` decoder with cut-points and tied embeddings.
//! - [`data`]: a deterministic synthetic corpus.
//! - [`optim`]: SGD-with-momentum and Adam.
//! - [`single`]: the single-process reference trainer (gradient
//!   accumulation included).
//! - [`pipeline`]: multi-threaded pipeline + data-parallel trainer.
//! - [`tracer`]: cross-partition dependency detection (paper Section 5.2).
//! - [`checkpoint`]: per-layer checkpoints and depth-changing resume.
//! - [`mixed`]: loss scaling and global-norm state synchronized across
//!   partitions (the tracer-mandated allreduces).
//! - [`stale`]: PipeDream-2BW-style delayed updates (paper Figure 10).

pub mod checkpoint;
pub mod data;
pub mod layers;
pub mod mixed;
pub mod model;
pub mod ops;
pub mod optim;
pub mod pipeline;
pub mod single;
pub mod stale;
pub mod tensor;
pub mod tracer;

pub use model::{MiniGpt, ModelConfig};
pub use single::Trainer;
pub use tensor::Tensor;
