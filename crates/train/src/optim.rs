//! Optimizers, loss scaling, and global-norm utilities.
//!
//! Besides plain SGD-with-momentum and Adam, this module carries the two
//! pieces of *implicit global state* the paper's tracer is designed to
//! catch (Section 5.2): dynamic loss scaling (APEX-style — an overflow in
//! any one partition must rescale every partition) and the global gradient
//! norm (NVLAMB-style — computed across all layers, i.e. all partitions).

use serde::{Deserialize, Serialize};

use crate::layers::Param;

/// SGD with momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// A new optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update to `params` from their accumulated gradients.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.w.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), vel) in p.w.data.iter_mut().zip(&p.g.data).zip(v.iter_mut()) {
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.w.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.w.len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mi), vi) in
                p.w.data
                    .iter_mut()
                    .zip(&p.g.data)
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// A unified optimizer choice for trainers that support both.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Optimizer {
    /// SGD with momentum.
    Sgd(Sgd),
    /// Adam with bias correction.
    Adam(Adam),
}

impl Optimizer {
    /// SGD with the given learning rate and no momentum.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd(Sgd::new(lr, 0.0))
    }

    /// Adam with the given learning rate and default betas.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam(Adam::new(lr))
    }

    /// Applies one update.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        match self {
            Optimizer::Sgd(o) => o.step(params),
            Optimizer::Adam(o) => o.step(params),
        }
    }
}

/// Global L2 norm of all gradients — NVLAMB-style cross-layer state
/// (spans every partition in a pipelined run).
pub fn global_grad_norm(params: &[&mut Param]) -> f64 {
    params.iter().map(|p| p.g.sq_sum()).sum::<f64>().sqrt()
}

/// APEX-style dynamic loss scaler.
///
/// In fp16 training the loss is multiplied by `scale` before backward; if
/// any gradient overflows, the step is skipped and the scale halves. The
/// overflow decision is *global*: with a partitioned model one stage may
/// overflow while others do not, so the flag must be allreduced across
/// partitions every mini-batch — the paper's motivating tracer example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossScaler {
    /// Current scale.
    pub scale: f32,
    /// Steps of no overflow before the scale doubles.
    pub growth_interval: u32,
    good_steps: u32,
}

impl LossScaler {
    /// A scaler starting at `scale`.
    pub fn new(scale: f32) -> Self {
        LossScaler {
            scale,
            growth_interval: 200,
            good_steps: 0,
        }
    }

    /// Whether any gradient in `params` is non-finite or implausibly large.
    pub fn has_overflow(params: &[&mut Param]) -> bool {
        params
            .iter()
            .any(|p| p.g.data.iter().any(|v| !v.is_finite() || v.abs() > 1e20))
    }

    /// Updates the scale from the *global* overflow decision; returns true
    /// if the step should be applied.
    pub fn update(&mut self, global_overflow: bool) -> bool {
        if global_overflow {
            self.scale = (self.scale * 0.5).max(1.0);
            self.good_steps = 0;
            false
        } else {
            self.good_steps += 1;
            if self.good_steps >= self.growth_interval {
                self.scale *= 2.0;
                self.good_steps = 0;
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn param(data: Vec<f32>, grad: Vec<f32>) -> Param {
        let n = data.len();
        let mut p = Param::new(Tensor::from_vec(1, n, data), "p");
        p.g = Tensor::from_vec(1, n, grad);
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param(vec![1.0, 2.0], vec![0.5, -0.5]);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.w.data, vec![0.95, 2.05]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = param(vec![0.0], vec![1.0]);
        let mut opt = Sgd::new(1.0, 0.9);
        opt.step(&mut [&mut p]);
        assert_eq!(p.w.data, vec![-1.0]);
        p.g = Tensor::from_vec(1, 1, vec![1.0]);
        opt.step(&mut [&mut p]);
        // Velocity: 0.9*1 + 1 = 1.9; weight: -1 - 1.9 = -2.9.
        assert!((p.w.data[0] + 2.9).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize (w-3)^2 by feeding grad = 2(w-3).
        let mut p = param(vec![0.0], vec![0.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = 2.0 * (p.w.data[0] - 3.0);
            p.g = Tensor::from_vec(1, 1, vec![g]);
            opt.step(&mut [&mut p]);
        }
        assert!((p.w.data[0] - 3.0).abs() < 0.05, "w = {}", p.w.data[0]);
    }

    #[test]
    fn global_norm_spans_all_params() {
        let mut a = param(vec![0.0], vec![3.0]);
        let mut b = param(vec![0.0], vec![4.0]);
        let norm = global_grad_norm(&[&mut a, &mut b]);
        assert!((norm - 5.0).abs() < 1e-9);
    }

    #[test]
    fn loss_scaler_halves_on_overflow_and_grows_back() {
        let mut s = LossScaler::new(1024.0);
        assert!(!s.update(true));
        assert_eq!(s.scale, 512.0);
        for _ in 0..s.growth_interval {
            assert!(s.update(false));
        }
        assert_eq!(s.scale, 1024.0);
    }

    #[test]
    fn overflow_detection_sees_nan_and_inf() {
        let mut ok = param(vec![0.0], vec![1.0]);
        assert!(!LossScaler::has_overflow(&[&mut ok]));
        let mut bad = param(vec![0.0], vec![f32::NAN]);
        assert!(LossScaler::has_overflow(&[&mut bad]));
        let mut inf = param(vec![0.0], vec![f32::INFINITY]);
        assert!(LossScaler::has_overflow(&[&mut inf]));
    }
}
