//! `chrome://tracing` (Trace Event Format) export of the event stream.
//!
//! The output is the JSON object form (`{"traceEvents": [...]}`) with
//! complete (`"ph": "X"`) slices for ops, transfers, and allreduces, and
//! instant (`"ph": "i"`) markers for control-plane events. It loads
//! directly in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//! each data-parallel replica renders as a process, each pipeline stage as
//! a thread, transfers on a separate per-replica track.

use serde::Value;

use crate::event::{Event, EventKind};

/// Timestamps are microseconds in the trace event format.
const US: f64 = 1e6;

/// Thread-id offset separating the network track from stage tracks.
const NET_TID_BASE: u64 = 10_000;

fn complete(
    name: String,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Value)>,
) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name)),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("dur".to_string(), Value::Float(dur_us)),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("args".to_string(), Value::Map(args)),
    ])
}

fn instant(name: String, cat: &str, ts_us: f64, args: Vec<(String, Value)>) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name)),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("i".to_string())),
        ("s".to_string(), Value::Str("g".to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(0)),
        ("args".to_string(), Value::Map(args)),
    ])
}

fn op_category(code: char) -> &'static str {
    match code {
        'F' => "forward",
        'R' => "recompute",
        'B' => "backward",
        _ => "op",
    }
}

fn to_trace_event(e: &Event) -> Option<Value> {
    match &e.kind {
        // OpStart is intentionally skipped: the matching OpEnd carries the
        // full interval, and duplicated slices would double-draw.
        EventKind::OpStart { .. } => None,
        EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            start,
        } => Some(complete(
            format!("{op}{micro}"),
            op_category(*op),
            *replica as u64,
            *stage as u64,
            start * US,
            (e.t_sim - start) * US,
            vec![("micro".to_string(), Value::UInt(*micro as u64))],
        )),
        EventKind::Transfer {
            from_stage,
            to_stage,
            replica,
            micro,
            bytes,
            seconds,
        } => Some(complete(
            format!("xfer {from_stage}->{to_stage}"),
            "transfer",
            *replica as u64,
            NET_TID_BASE + *from_stage as u64,
            e.t_sim * US,
            seconds * US,
            vec![
                ("micro".to_string(), Value::UInt(*micro as u64)),
                ("bytes".to_string(), Value::Float(*bytes)),
            ],
        )),
        EventKind::Allreduce {
            stage,
            bytes,
            ring,
            seconds,
        } => Some(complete(
            "allreduce".to_string(),
            "allreduce",
            0,
            *stage as u64,
            (e.t_sim - seconds) * US,
            seconds * US,
            vec![
                ("bytes".to_string(), Value::Float(*bytes)),
                ("ring".to_string(), Value::UInt(*ring as u64)),
            ],
        )),
        EventKind::Preemption { vm } => Some(instant(
            format!("preempt vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::HeartbeatMiss { vm } => Some(instant(
            format!("heartbeat-miss vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::Morph {
            p, d, reconfigured, ..
        } => Some(instant(
            if *reconfigured {
                format!("morph {p}x{d}")
            } else {
                "replacement".to_string()
            },
            "manager",
            e.t_sim * US,
            vec![
                ("p".to_string(), Value::UInt(*p as u64)),
                ("d".to_string(), Value::UInt(*d as u64)),
            ],
        )),
        EventKind::Checkpoint { step, .. } => Some(instant(
            format!("checkpoint @{step}"),
            "manager",
            e.t_sim * US,
            vec![("step".to_string(), Value::UInt(*step))],
        )),
        EventKind::OomKill { what, .. } => Some(instant(
            "oom-kill".to_string(),
            "manager",
            e.t_sim * US,
            vec![("what".to_string(), Value::Str(what.clone()))],
        )),
        EventKind::EpochLoss { step, loss, .. } => Some(instant(
            format!("loss @{step}"),
            "train",
            e.t_sim * US,
            vec![("loss".to_string(), Value::Float(*loss))],
        )),
        EventKind::EvictionNotice { vm, lead_seconds } => Some(instant(
            format!("eviction-notice vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![
                ("vm".to_string(), Value::UInt(*vm)),
                ("lead_seconds".to_string(), Value::Float(*lead_seconds)),
            ],
        )),
        EventKind::SilenceStart { vm } => Some(instant(
            format!("silence-start vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::SilenceEnd { vm } => Some(instant(
            format!("silence-end vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::CheckpointWriteFailed { step } => Some(instant(
            format!("checkpoint-failed @{step}"),
            "manager",
            e.t_sim * US,
            vec![("step".to_string(), Value::UInt(*step))],
        )),
        EventKind::CheckpointFallback { from_step, to_step } => Some(instant(
            format!("checkpoint-fallback {from_step}->{to_step}"),
            "manager",
            e.t_sim * US,
            vec![
                ("from_step".to_string(), Value::UInt(*from_step)),
                ("to_step".to_string(), Value::UInt(*to_step)),
            ],
        )),
        EventKind::VmExcluded {
            vm,
            consecutive_misses,
        } => Some(instant(
            format!("vm-excluded vm{vm}"),
            "manager",
            e.t_sim * US,
            vec![
                ("vm".to_string(), Value::UInt(*vm)),
                (
                    "consecutive_misses".to_string(),
                    Value::UInt(*consecutive_misses as u64),
                ),
            ],
        )),
        EventKind::VmReadmitted { vm } => Some(instant(
            format!("vm-readmitted vm{vm}"),
            "manager",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::MorphRetry {
            attempt,
            backoff_seconds,
            gpus,
        } => Some(instant(
            format!("morph-retry #{attempt}"),
            "manager",
            e.t_sim * US,
            vec![
                ("attempt".to_string(), Value::UInt(*attempt as u64)),
                (
                    "backoff_seconds".to_string(),
                    Value::Float(*backoff_seconds),
                ),
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
            ],
        )),
        EventKind::DegradedEnter { gpus, reason } => Some(instant(
            "degraded-enter".to_string(),
            "manager",
            e.t_sim * US,
            vec![
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
                ("reason".to_string(), Value::Str(reason.clone())),
            ],
        )),
        EventKind::DegradedExit {
            gpus,
            paused_seconds,
        } => Some(instant(
            "degraded-exit".to_string(),
            "manager",
            e.t_sim * US,
            vec![
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
                ("paused_seconds".to_string(), Value::Float(*paused_seconds)),
            ],
        )),
        EventKind::LostWork {
            minibatches,
            seconds,
        } => Some(instant(
            format!("lost-work {minibatches}mb"),
            "manager",
            e.t_sim * US,
            vec![
                ("minibatches".to_string(), Value::UInt(*minibatches)),
                ("seconds".to_string(), Value::Float(*seconds)),
            ],
        )),
        EventKind::PlanSearch {
            candidates,
            simulated,
            memo_hits,
            analytic_fallbacks,
        } => Some(instant(
            format!("plan-search {candidates}c"),
            "manager",
            e.t_sim * US,
            vec![
                ("candidates".to_string(), Value::UInt(*candidates)),
                ("simulated".to_string(), Value::UInt(*simulated)),
                ("memo_hits".to_string(), Value::UInt(*memo_hits)),
                (
                    "analytic_fallbacks".to_string(),
                    Value::UInt(*analytic_fallbacks),
                ),
            ],
        )),
        EventKind::FaultInjected { fault, vm } => Some(instant(
            format!("fault {fault}"),
            "chaos",
            e.t_sim * US,
            vec![
                ("fault".to_string(), Value::Str(fault.clone())),
                ("vm".to_string(), Value::UInt(*vm)),
            ],
        )),
    }
}

/// Renders events as one Perfetto-loadable JSON document.
///
/// The output is a pure function of the input slice: the same events in
/// the same order always produce byte-identical JSON, which the golden
/// test in `varuna-exec` relies on.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let trace_events: Vec<Value> = events.iter().filter_map(to_trace_event).collect();
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace documents always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn op_pair(stage: usize, micro: usize, start: f64, end: f64) -> Vec<Event> {
        vec![
            Event::exec(
                start,
                EventKind::OpStart {
                    stage,
                    replica: 0,
                    op: 'F',
                    micro,
                },
            ),
            Event::exec(
                end,
                EventKind::OpEnd {
                    stage,
                    replica: 0,
                    op: 'F',
                    micro,
                    start,
                },
            ),
        ]
    }

    #[test]
    fn op_end_becomes_a_complete_slice_and_start_is_skipped() {
        let events = op_pair(2, 5, 1.0, 1.5);
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices.len(), 1, "OpStart must not double-draw");
        let s = &slices[0];
        assert_eq!(s.get("name"), Some(&Value::Str("F5".to_string())));
        assert_eq!(s.get("ph"), Some(&Value::Str("X".to_string())));
        assert_eq!(s.get("ts"), Some(&Value::Float(1.0e6)));
        assert_eq!(s.get("dur"), Some(&Value::Float(0.5e6)));
        assert_eq!(s.get("tid"), Some(&Value::UInt(2)));
    }

    #[test]
    fn control_plane_events_become_instants() {
        let events = vec![
            Event::manager(
                7200.0,
                EventKind::Morph {
                    p: 9,
                    d: 8,
                    gpus_held: 80,
                    gpus_used: 72,
                    examples_per_sec: 100.0,
                    examples_per_sec_per_gpu: 1.4,
                    reconfigured: true,
                },
            ),
            Event::cluster(7300.0, EventKind::Preemption { vm: 3 }),
        ];
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices.len(), 2);
        assert!(slices
            .iter()
            .all(|s| s.get("ph") == Some(&Value::Str("i".to_string()))));
        assert_eq!(
            slices[0].get("name"),
            Some(&Value::Str("morph 9x8".to_string()))
        );
    }

    #[test]
    fn output_is_deterministic() {
        let mut events = op_pair(0, 0, 0.0, 0.25);
        events.extend(op_pair(1, 0, 0.3, 0.6));
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn source_does_not_change_rendering() {
        // The exporter keys on kind; a Bench-sourced op renders the same.
        let mut e = op_pair(0, 1, 0.0, 1.0).pop().unwrap();
        e.source = Source::Bench;
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"F1\""));
    }
}
