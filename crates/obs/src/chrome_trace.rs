//! `chrome://tracing` (Trace Event Format) export of the event stream.
//!
//! The output is the JSON object form (`{"traceEvents": [...]}`) with
//! complete (`"ph": "X"`) slices for ops, transfers, and allreduces, and
//! instant (`"ph": "i"`) markers for control-plane events. It loads
//! directly in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`:
//! each data-parallel replica renders as a process, each pipeline stage as
//! a thread, transfers on a separate per-replica track.

use serde::Value;

use crate::event::{Event, EventKind};

/// Timestamps are microseconds in the trace event format.
const US: f64 = 1e6;

/// Thread-id offset separating the network track from stage tracks.
const NET_TID_BASE: u64 = 10_000;

fn complete(
    name: String,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Value)>,
) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name)),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("dur".to_string(), Value::Float(dur_us)),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("args".to_string(), Value::Map(args)),
    ])
}

fn instant(name: String, cat: &str, ts_us: f64, args: Vec<(String, Value)>) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name)),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("i".to_string())),
        ("s".to_string(), Value::Str("g".to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(0)),
        ("args".to_string(), Value::Map(args)),
    ])
}

fn op_category(code: char) -> &'static str {
    match code {
        'F' => "forward",
        'R' => "recompute",
        'B' => "backward",
        _ => "op",
    }
}

fn op_rank(code: char) -> u8 {
    match code {
        'F' => 0,
        'R' => 1,
        'B' => 2,
        _ => 3,
    }
}

/// Deterministic ordering key for events sharing a `t_sim`: data-plane
/// events sort by (stage, replica, micro, op); control-plane events sort
/// after them, keeping their arrival order (the sort is stable).
fn tie_key(e: &Event) -> (u8, u64, u64, u64, u8) {
    match &e.kind {
        EventKind::OpStart {
            stage,
            replica,
            op,
            micro,
        }
        | EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            ..
        } => (
            0,
            *stage as u64,
            *replica as u64,
            *micro as u64,
            op_rank(*op),
        ),
        EventKind::SendBusy {
            stage,
            replica,
            micro,
            ..
        } => (0, *stage as u64, *replica as u64, *micro as u64, 4),
        EventKind::Transfer {
            from_stage,
            replica,
            micro,
            ..
        } => (0, *from_stage as u64, *replica as u64, *micro as u64, 5),
        EventKind::Allreduce { stage, .. } => (0, *stage as u64, 0, 0, 6),
        _ => (1, 0, 0, 0, 0),
    }
}

fn to_trace_event(e: &Event) -> Option<Value> {
    match &e.kind {
        // OpStart is intentionally skipped: the matching OpEnd carries the
        // full interval, and duplicated slices would double-draw.
        EventKind::OpStart { .. } => None,
        EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            start,
        } => Some(complete(
            format!("{op}{micro}"),
            op_category(*op),
            *replica as u64,
            *stage as u64,
            start * US,
            (e.t_sim - start) * US,
            vec![("micro".to_string(), Value::UInt(*micro as u64))],
        )),
        EventKind::Transfer {
            from_stage,
            to_stage,
            replica,
            micro,
            bytes,
            seconds,
        } => Some(complete(
            format!("xfer {from_stage}->{to_stage}"),
            "transfer",
            *replica as u64,
            NET_TID_BASE + *from_stage as u64,
            e.t_sim * US,
            seconds * US,
            vec![
                ("micro".to_string(), Value::UInt(*micro as u64)),
                ("bytes".to_string(), Value::Float(*bytes)),
            ],
        )),
        EventKind::Allreduce {
            stage,
            bytes,
            ring,
            seconds,
        } => Some(complete(
            "allreduce".to_string(),
            "allreduce",
            0,
            *stage as u64,
            (e.t_sim - seconds) * US,
            seconds * US,
            vec![
                ("bytes".to_string(), Value::Float(*bytes)),
                ("ring".to_string(), Value::UInt(*ring as u64)),
            ],
        )),
        EventKind::SendBusy {
            stage,
            replica,
            micro,
            seconds,
        } => Some(complete(
            format!("send m{micro}"),
            "send",
            *replica as u64,
            *stage as u64,
            e.t_sim * US,
            seconds * US,
            vec![("micro".to_string(), Value::UInt(*micro as u64))],
        )),
        EventKind::Preemption { vm } => Some(instant(
            format!("preempt vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::HeartbeatMiss { vm } => Some(instant(
            format!("heartbeat-miss vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::Morph {
            p,
            d,
            gpus_held,
            gpus_used,
            examples_per_sec,
            examples_per_sec_per_gpu,
            reconfigured,
            restart_seconds,
            migration_seconds,
        } => Some(instant(
            if *reconfigured {
                format!("morph {p}x{d}")
            } else {
                "replacement".to_string()
            },
            "manager",
            e.t_sim * US,
            vec![
                ("p".to_string(), Value::UInt(*p as u64)),
                ("d".to_string(), Value::UInt(*d as u64)),
                ("gpus_held".to_string(), Value::UInt(*gpus_held as u64)),
                ("gpus_used".to_string(), Value::UInt(*gpus_used as u64)),
                (
                    "examples_per_sec".to_string(),
                    Value::Float(*examples_per_sec),
                ),
                (
                    "examples_per_sec_per_gpu".to_string(),
                    Value::Float(*examples_per_sec_per_gpu),
                ),
                ("reconfigured".to_string(), Value::Bool(*reconfigured)),
                (
                    "restart_seconds".to_string(),
                    Value::Float(*restart_seconds),
                ),
                (
                    "migration_seconds".to_string(),
                    Value::Float(*migration_seconds),
                ),
            ],
        )),
        EventKind::Checkpoint {
            step,
            gpus_held,
            gpus_used,
            p,
            d,
            examples_per_sec,
            examples_per_sec_per_gpu,
            write_seconds,
            overlapped_seconds,
            full,
        } => Some(instant(
            format!("checkpoint @{step}"),
            "manager",
            e.t_sim * US,
            vec![
                ("step".to_string(), Value::UInt(*step)),
                ("gpus_held".to_string(), Value::UInt(*gpus_held as u64)),
                ("gpus_used".to_string(), Value::UInt(*gpus_used as u64)),
                ("p".to_string(), Value::UInt(*p as u64)),
                ("d".to_string(), Value::UInt(*d as u64)),
                (
                    "examples_per_sec".to_string(),
                    Value::Float(*examples_per_sec),
                ),
                (
                    "examples_per_sec_per_gpu".to_string(),
                    Value::Float(*examples_per_sec_per_gpu),
                ),
                ("write_seconds".to_string(), Value::Float(*write_seconds)),
                (
                    "overlapped_seconds".to_string(),
                    Value::Float(*overlapped_seconds),
                ),
                ("full".to_string(), Value::Bool(*full)),
            ],
        )),
        EventKind::OomKill {
            stage,
            needed_bytes,
            capacity_bytes,
            what,
        } => Some(instant(
            "oom-kill".to_string(),
            "manager",
            e.t_sim * US,
            vec![
                ("stage".to_string(), Value::UInt(*stage as u64)),
                ("needed_bytes".to_string(), Value::Float(*needed_bytes)),
                ("capacity_bytes".to_string(), Value::Float(*capacity_bytes)),
                ("what".to_string(), Value::Str(what.clone())),
            ],
        )),
        EventKind::EpochLoss {
            step,
            loss,
            examples_per_sec,
        } => Some(instant(
            format!("loss @{step}"),
            "train",
            e.t_sim * US,
            vec![
                ("step".to_string(), Value::UInt(*step)),
                ("loss".to_string(), Value::Float(*loss)),
                (
                    "examples_per_sec".to_string(),
                    Value::Float(*examples_per_sec),
                ),
            ],
        )),
        EventKind::EvictionNotice { vm, lead_seconds } => Some(instant(
            format!("eviction-notice vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![
                ("vm".to_string(), Value::UInt(*vm)),
                ("lead_seconds".to_string(), Value::Float(*lead_seconds)),
            ],
        )),
        EventKind::SilenceStart { vm } => Some(instant(
            format!("silence-start vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::SilenceEnd { vm } => Some(instant(
            format!("silence-end vm{vm}"),
            "cluster",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::CheckpointWriteFailed { step } => Some(instant(
            format!("checkpoint-failed @{step}"),
            "manager",
            e.t_sim * US,
            vec![("step".to_string(), Value::UInt(*step))],
        )),
        EventKind::CheckpointFallback { from_step, to_step } => Some(instant(
            format!("checkpoint-fallback {from_step}->{to_step}"),
            "manager",
            e.t_sim * US,
            vec![
                ("from_step".to_string(), Value::UInt(*from_step)),
                ("to_step".to_string(), Value::UInt(*to_step)),
            ],
        )),
        EventKind::VmExcluded {
            vm,
            consecutive_misses,
        } => Some(instant(
            format!("vm-excluded vm{vm}"),
            "manager",
            e.t_sim * US,
            vec![
                ("vm".to_string(), Value::UInt(*vm)),
                (
                    "consecutive_misses".to_string(),
                    Value::UInt(*consecutive_misses as u64),
                ),
            ],
        )),
        EventKind::VmReadmitted { vm } => Some(instant(
            format!("vm-readmitted vm{vm}"),
            "manager",
            e.t_sim * US,
            vec![("vm".to_string(), Value::UInt(*vm))],
        )),
        EventKind::MorphRetry {
            attempt,
            backoff_seconds,
            gpus,
        } => Some(instant(
            format!("morph-retry #{attempt}"),
            "manager",
            e.t_sim * US,
            vec![
                ("attempt".to_string(), Value::UInt(*attempt as u64)),
                (
                    "backoff_seconds".to_string(),
                    Value::Float(*backoff_seconds),
                ),
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
            ],
        )),
        EventKind::DegradedEnter { gpus, reason } => Some(instant(
            "degraded-enter".to_string(),
            "manager",
            e.t_sim * US,
            vec![
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
                ("reason".to_string(), Value::Str(reason.clone())),
            ],
        )),
        EventKind::DegradedExit {
            gpus,
            paused_seconds,
        } => Some(instant(
            "degraded-exit".to_string(),
            "manager",
            e.t_sim * US,
            vec![
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
                ("paused_seconds".to_string(), Value::Float(*paused_seconds)),
            ],
        )),
        EventKind::LostWork {
            minibatches,
            seconds,
        } => Some(instant(
            format!("lost-work {minibatches}mb"),
            "manager",
            e.t_sim * US,
            vec![
                ("minibatches".to_string(), Value::UInt(*minibatches)),
                ("seconds".to_string(), Value::Float(*seconds)),
            ],
        )),
        EventKind::PlanSearch {
            candidates,
            simulated,
            memo_hits,
            analytic_fallbacks,
        } => Some(instant(
            format!("plan-search {candidates}c"),
            "manager",
            e.t_sim * US,
            vec![
                ("candidates".to_string(), Value::UInt(*candidates)),
                ("simulated".to_string(), Value::UInt(*simulated)),
                ("memo_hits".to_string(), Value::UInt(*memo_hits)),
                (
                    "analytic_fallbacks".to_string(),
                    Value::UInt(*analytic_fallbacks),
                ),
            ],
        )),
        EventKind::CheckpointTorn {
            step,
            bytes_written,
            bytes_expected,
        } => Some(instant(
            format!("checkpoint-torn @{step}"),
            "manager",
            e.t_sim * US,
            vec![
                ("step".to_string(), Value::UInt(*step)),
                ("bytes_written".to_string(), Value::UInt(*bytes_written)),
                ("bytes_expected".to_string(), Value::UInt(*bytes_expected)),
            ],
        )),
        EventKind::RecoveryReplay {
            wal_records,
            torn,
            dropped_bytes,
            replay_seconds,
        } => Some(instant(
            format!("recovery-replay {wal_records}rec"),
            "recovery",
            e.t_sim * US,
            vec![
                ("wal_records".to_string(), Value::UInt(*wal_records)),
                ("torn".to_string(), Value::Bool(*torn)),
                ("dropped_bytes".to_string(), Value::UInt(*dropped_bytes)),
                ("replay_seconds".to_string(), Value::Float(*replay_seconds)),
            ],
        )),
        EventKind::FaultInjected { fault, vm } => Some(instant(
            format!("fault {fault}"),
            "chaos",
            e.t_sim * US,
            vec![
                ("fault".to_string(), Value::Str(fault.clone())),
                ("vm".to_string(), Value::UInt(*vm)),
            ],
        )),
        EventKind::FleetAllocation {
            job,
            spot_gpus,
            on_demand_gpus,
            market_gpus,
        } => Some(instant(
            format!("alloc job{job}"),
            "fleet",
            e.t_sim * US,
            vec![
                ("job".to_string(), Value::UInt(*job)),
                ("spot_gpus".to_string(), Value::UInt(*spot_gpus as u64)),
                (
                    "on_demand_gpus".to_string(),
                    Value::UInt(*on_demand_gpus as u64),
                ),
                ("market_gpus".to_string(), Value::UInt(*market_gpus as u64)),
            ],
        )),
        EventKind::JobPreempted {
            job,
            gpus_revoked,
            reason,
        } => Some(instant(
            format!("job-preempt job{job}"),
            "fleet",
            e.t_sim * US,
            vec![
                ("job".to_string(), Value::UInt(*job)),
                (
                    "gpus_revoked".to_string(),
                    Value::UInt(*gpus_revoked as u64),
                ),
                ("reason".to_string(), Value::Str(reason.clone())),
            ],
        )),
        EventKind::FallbackProvisioned {
            job,
            gpus,
            total_on_demand,
        } => Some(instant(
            format!("fallback job{job}"),
            "fleet",
            e.t_sim * US,
            vec![
                ("job".to_string(), Value::UInt(*job)),
                ("gpus".to_string(), Value::UInt(*gpus as u64)),
                (
                    "total_on_demand".to_string(),
                    Value::UInt(*total_on_demand as u64),
                ),
            ],
        )),
    }
}

/// Renders events as one Perfetto-loadable JSON document.
///
/// Events are serialized in `t_sim` order with a deterministic tie-break
/// keyed on (stage, replica, micro, op) for data-plane events —
/// control-plane instants at the same timestamp come after them, in
/// arrival order. Data-plane output is therefore byte-stable across any
/// reordering of simultaneous events, which the golden test in
/// `varuna-exec` relies on.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by(|&a, &b| {
        events[a]
            .t_sim
            .total_cmp(&events[b].t_sim)
            .then_with(|| tie_key(&events[a]).cmp(&tie_key(&events[b])))
    });
    let trace_events: Vec<Value> = order
        .into_iter()
        .filter_map(|i| to_trace_event(&events[i]))
        .collect();
    let doc = Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace documents always serialize")
}

fn num_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        Value::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn num_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn slice_field_f64(s: &Value, key: &str) -> Result<f64, String> {
    s.get(key)
        .and_then(num_f64)
        .ok_or_else(|| format!("trace slice missing numeric `{key}`"))
}

/// Rebuilds a control-plane instant marker into its original event.
/// Dispatches on the marker name (each exporter name is distinctive);
/// every field the exporter serializes into `args` is recovered, and the
/// category names the emitting [`Source`](crate::Source).
fn instant_to_event(name: &str, cat: &str, ts: f64, s: &Value) -> Option<Event> {
    let arg_u64 = |key: &str| {
        s.get("args")
            .and_then(|a| a.get(key))
            .and_then(num_u64)
            .unwrap_or(0)
    };
    let arg_f64 = |key: &str| {
        s.get("args")
            .and_then(|a| a.get(key))
            .and_then(num_f64)
            .unwrap_or(0.0)
    };
    let arg_str = |key: &str| match s.get("args").and_then(|a| a.get(key)) {
        Some(Value::Str(v)) => v.clone(),
        _ => String::new(),
    };
    let arg_bool = |key: &str| {
        matches!(
            s.get("args").and_then(|a| a.get(key)),
            Some(Value::Bool(true))
        )
    };

    // Longer prefixes first where names share a stem ("morph-retry" vs
    // "morph 4x2", the four "checkpoint*" markers).
    let kind = if name.starts_with("morph-retry") {
        EventKind::MorphRetry {
            attempt: arg_u64("attempt") as u32,
            backoff_seconds: arg_f64("backoff_seconds"),
            gpus: arg_u64("gpus") as usize,
        }
    } else if name.starts_with("morph ") || name == "replacement" {
        EventKind::Morph {
            p: arg_u64("p") as usize,
            d: arg_u64("d") as usize,
            gpus_held: arg_u64("gpus_held") as usize,
            gpus_used: arg_u64("gpus_used") as usize,
            examples_per_sec: arg_f64("examples_per_sec"),
            examples_per_sec_per_gpu: arg_f64("examples_per_sec_per_gpu"),
            reconfigured: arg_bool("reconfigured"),
            restart_seconds: arg_f64("restart_seconds"),
            migration_seconds: arg_f64("migration_seconds"),
        }
    } else if name.starts_with("checkpoint-failed") {
        EventKind::CheckpointWriteFailed {
            step: arg_u64("step"),
        }
    } else if name.starts_with("checkpoint-fallback") {
        EventKind::CheckpointFallback {
            from_step: arg_u64("from_step"),
            to_step: arg_u64("to_step"),
        }
    } else if name.starts_with("checkpoint-torn") {
        EventKind::CheckpointTorn {
            step: arg_u64("step"),
            bytes_written: arg_u64("bytes_written"),
            bytes_expected: arg_u64("bytes_expected"),
        }
    } else if name.starts_with("checkpoint @") {
        EventKind::Checkpoint {
            step: arg_u64("step"),
            gpus_held: arg_u64("gpus_held") as usize,
            gpus_used: arg_u64("gpus_used") as usize,
            p: arg_u64("p") as usize,
            d: arg_u64("d") as usize,
            examples_per_sec: arg_f64("examples_per_sec"),
            examples_per_sec_per_gpu: arg_f64("examples_per_sec_per_gpu"),
            write_seconds: arg_f64("write_seconds"),
            overlapped_seconds: arg_f64("overlapped_seconds"),
            full: arg_bool("full"),
        }
    } else if name == "oom-kill" {
        EventKind::OomKill {
            stage: arg_u64("stage") as usize,
            needed_bytes: arg_f64("needed_bytes"),
            capacity_bytes: arg_f64("capacity_bytes"),
            what: arg_str("what"),
        }
    } else if name.starts_with("loss @") {
        EventKind::EpochLoss {
            step: arg_u64("step"),
            loss: arg_f64("loss"),
            examples_per_sec: arg_f64("examples_per_sec"),
        }
    } else if name.starts_with("preempt vm") {
        EventKind::Preemption { vm: arg_u64("vm") }
    } else if name.starts_with("heartbeat-miss") {
        EventKind::HeartbeatMiss { vm: arg_u64("vm") }
    } else if name.starts_with("eviction-notice") {
        EventKind::EvictionNotice {
            vm: arg_u64("vm"),
            lead_seconds: arg_f64("lead_seconds"),
        }
    } else if name.starts_with("silence-start") {
        EventKind::SilenceStart { vm: arg_u64("vm") }
    } else if name.starts_with("silence-end") {
        EventKind::SilenceEnd { vm: arg_u64("vm") }
    } else if name.starts_with("vm-excluded") {
        EventKind::VmExcluded {
            vm: arg_u64("vm"),
            consecutive_misses: arg_u64("consecutive_misses") as u32,
        }
    } else if name.starts_with("vm-readmitted") {
        EventKind::VmReadmitted { vm: arg_u64("vm") }
    } else if name == "degraded-enter" {
        EventKind::DegradedEnter {
            gpus: arg_u64("gpus") as usize,
            reason: arg_str("reason"),
        }
    } else if name == "degraded-exit" {
        EventKind::DegradedExit {
            gpus: arg_u64("gpus") as usize,
            paused_seconds: arg_f64("paused_seconds"),
        }
    } else if name.starts_with("lost-work") {
        EventKind::LostWork {
            minibatches: arg_u64("minibatches"),
            seconds: arg_f64("seconds"),
        }
    } else if name.starts_with("plan-search") {
        EventKind::PlanSearch {
            candidates: arg_u64("candidates"),
            simulated: arg_u64("simulated"),
            memo_hits: arg_u64("memo_hits"),
            analytic_fallbacks: arg_u64("analytic_fallbacks"),
        }
    } else if name.starts_with("recovery-replay") {
        EventKind::RecoveryReplay {
            wal_records: arg_u64("wal_records"),
            torn: arg_bool("torn"),
            dropped_bytes: arg_u64("dropped_bytes"),
            replay_seconds: arg_f64("replay_seconds"),
        }
    } else if name.starts_with("fault ") {
        EventKind::FaultInjected {
            fault: arg_str("fault"),
            vm: arg_u64("vm"),
        }
    } else if name.starts_with("alloc job") {
        EventKind::FleetAllocation {
            job: arg_u64("job"),
            spot_gpus: arg_u64("spot_gpus") as usize,
            on_demand_gpus: arg_u64("on_demand_gpus") as usize,
            market_gpus: arg_u64("market_gpus") as usize,
        }
    } else if name.starts_with("job-preempt") {
        EventKind::JobPreempted {
            job: arg_u64("job"),
            gpus_revoked: arg_u64("gpus_revoked") as usize,
            reason: arg_str("reason"),
        }
    } else if name.starts_with("fallback job") {
        EventKind::FallbackProvisioned {
            job: arg_u64("job"),
            gpus: arg_u64("gpus") as usize,
            total_on_demand: arg_u64("total_on_demand") as usize,
        }
    } else {
        return None;
    };
    Some(match cat {
        "cluster" => Event::cluster(ts, kind),
        "train" => Event::train(ts, kind),
        "chaos" => Event::chaos(ts, kind),
        "fleet" => Event::fleet(ts, kind),
        "recovery" => Event::recovery(ts, kind),
        _ => Event::manager(ts, kind),
    })
}

/// Recovers the [`Event`]s from a chrome trace document (the inverse of
/// [`chrome_trace_json`]): `"ph": "X"` slices become the data-plane
/// events, `"ph": "i"` markers the control-plane ones, so a trace
/// round-tripped through this importer profiles identically — downtime
/// pricing included. `OpStart` events are not emitted (the exporter
/// collapses each op into its `OpEnd` slice) and data-plane sources
/// normalize to `Exec`; neither affects profiling or re-export.
pub fn events_from_chrome_trace(text: &str) -> Result<Vec<Event>, String> {
    let doc = serde_json::parse_value(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let slices = doc
        .get("traceEvents")
        .ok_or_else(|| "missing `traceEvents` array".to_string())?
        .as_seq_for("traceEvents")
        .map_err(|e| e.to_string())?;
    let mut events = Vec::new();
    for s in slices {
        if s.get("ph") == Some(&Value::Str("i".to_string())) {
            let name = match s.get("name") {
                Some(Value::Str(n)) => n.clone(),
                _ => continue,
            };
            let cat = match s.get("cat") {
                Some(Value::Str(c)) => c.clone(),
                _ => continue,
            };
            let ts = slice_field_f64(s, "ts")? / US;
            if let Some(e) = instant_to_event(&name, &cat, ts, s) {
                events.push(e);
            }
            continue;
        }
        if s.get("ph") != Some(&Value::Str("X".to_string())) {
            continue;
        }
        let cat = match s.get("cat") {
            Some(Value::Str(c)) => c.clone(),
            _ => continue,
        };
        let ts = slice_field_f64(s, "ts")? / US;
        let dur = slice_field_f64(s, "dur")? / US;
        let pid = s.get("pid").and_then(num_u64).unwrap_or(0) as usize;
        let tid = s.get("tid").and_then(num_u64).unwrap_or(0) as usize;
        let arg_u64 = |key: &str| {
            s.get("args")
                .and_then(|a| a.get(key))
                .and_then(num_u64)
                .unwrap_or(0)
        };
        let arg_f64 = |key: &str| {
            s.get("args")
                .and_then(|a| a.get(key))
                .and_then(num_f64)
                .unwrap_or(0.0)
        };
        match cat.as_str() {
            "forward" | "recompute" | "backward" => {
                let op = match cat.as_str() {
                    "forward" => 'F',
                    "recompute" => 'R',
                    _ => 'B',
                };
                events.push(Event::exec(
                    ts + dur,
                    EventKind::OpEnd {
                        stage: tid,
                        replica: pid,
                        op,
                        micro: arg_u64("micro") as usize,
                        start: ts,
                    },
                ));
            }
            "send" => {
                events.push(Event::exec(
                    ts,
                    EventKind::SendBusy {
                        stage: tid,
                        replica: pid,
                        micro: arg_u64("micro") as usize,
                        seconds: dur,
                    },
                ));
            }
            "transfer" => {
                let from_stage = tid.saturating_sub(NET_TID_BASE as usize);
                // The destination only lives in the slice name
                // ("xfer a->b"); fall back to the downstream neighbour.
                let to_stage = match s.get("name") {
                    Some(Value::Str(name)) => name
                        .rsplit("->")
                        .next()
                        .and_then(|t| t.trim().parse::<usize>().ok())
                        .unwrap_or(from_stage + 1),
                    _ => from_stage + 1,
                };
                events.push(Event::exec(
                    ts,
                    EventKind::Transfer {
                        from_stage,
                        to_stage,
                        replica: pid,
                        micro: arg_u64("micro") as usize,
                        bytes: arg_f64("bytes"),
                        seconds: dur,
                    },
                ));
            }
            "allreduce" => {
                events.push(Event::exec(
                    ts + dur,
                    EventKind::Allreduce {
                        stage: tid,
                        bytes: arg_f64("bytes"),
                        ring: arg_u64("ring") as usize,
                        seconds: dur,
                    },
                ));
            }
            _ => {}
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    fn op_pair(stage: usize, micro: usize, start: f64, end: f64) -> Vec<Event> {
        vec![
            Event::exec(
                start,
                EventKind::OpStart {
                    stage,
                    replica: 0,
                    op: 'F',
                    micro,
                },
            ),
            Event::exec(
                end,
                EventKind::OpEnd {
                    stage,
                    replica: 0,
                    op: 'F',
                    micro,
                    start,
                },
            ),
        ]
    }

    #[test]
    fn op_end_becomes_a_complete_slice_and_start_is_skipped() {
        let events = op_pair(2, 5, 1.0, 1.5);
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices.len(), 1, "OpStart must not double-draw");
        let s = &slices[0];
        assert_eq!(s.get("name"), Some(&Value::Str("F5".to_string())));
        assert_eq!(s.get("ph"), Some(&Value::Str("X".to_string())));
        assert_eq!(s.get("ts"), Some(&Value::Float(1.0e6)));
        assert_eq!(s.get("dur"), Some(&Value::Float(0.5e6)));
        assert_eq!(s.get("tid"), Some(&Value::UInt(2)));
    }

    #[test]
    fn control_plane_events_become_instants() {
        let events = vec![
            Event::manager(
                7200.0,
                EventKind::Morph {
                    p: 9,
                    d: 8,
                    gpus_held: 80,
                    gpus_used: 72,
                    examples_per_sec: 100.0,
                    examples_per_sec_per_gpu: 1.4,
                    reconfigured: true,
                    restart_seconds: 60.0,
                    migration_seconds: 0.0,
                },
            ),
            Event::cluster(7300.0, EventKind::Preemption { vm: 3 }),
        ];
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices.len(), 2);
        assert!(slices
            .iter()
            .all(|s| s.get("ph") == Some(&Value::Str("i".to_string()))));
        assert_eq!(
            slices[0].get("name"),
            Some(&Value::Str("morph 9x8".to_string()))
        );
    }

    #[test]
    fn output_is_deterministic() {
        let mut events = op_pair(0, 0, 0.0, 0.25);
        events.extend(op_pair(1, 0, 0.3, 0.6));
        assert_eq!(chrome_trace_json(&events), chrome_trace_json(&events));
    }

    #[test]
    fn source_does_not_change_rendering() {
        // The exporter keys on kind; a Bench-sourced op renders the same.
        let mut e = op_pair(0, 1, 0.0, 1.0).pop().unwrap();
        e.source = Source::Bench;
        let json = chrome_trace_json(&[e]);
        assert!(json.contains("\"F1\""));
    }

    #[test]
    fn send_busy_renders_as_a_send_slice() {
        let events = vec![Event::exec(
            2.0,
            EventKind::SendBusy {
                stage: 1,
                replica: 3,
                micro: 4,
                seconds: 0.5,
            },
        )];
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices.len(), 1);
        let s = &slices[0];
        assert_eq!(s.get("name"), Some(&Value::Str("send m4".to_string())));
        assert_eq!(s.get("cat"), Some(&Value::Str("send".to_string())));
        assert_eq!(s.get("ph"), Some(&Value::Str("X".to_string())));
        assert_eq!(s.get("ts"), Some(&Value::Float(2.0e6)));
        assert_eq!(s.get("dur"), Some(&Value::Float(0.5e6)));
        assert_eq!(s.get("pid"), Some(&Value::UInt(3)));
        assert_eq!(s.get("tid"), Some(&Value::UInt(1)));
    }

    #[test]
    fn colliding_timestamps_serialize_in_canonical_order() {
        // Four data-plane events all ending at t=1.0, presented in two
        // different arrival orders, must render byte-identically with
        // slices keyed on (stage, replica, micro, op).
        let end = |stage: usize, replica: usize, op: char, micro: usize| {
            Event::exec(
                1.0,
                EventKind::OpEnd {
                    stage,
                    replica,
                    op,
                    micro,
                    start: 0.5,
                },
            )
        };
        let a = vec![
            end(1, 0, 'B', 0),
            end(0, 1, 'F', 2),
            end(0, 1, 'F', 1),
            end(0, 0, 'F', 0),
        ];
        let mut b = a.clone();
        b.reverse();
        let json_a = chrome_trace_json(&a);
        assert_eq!(json_a, chrome_trace_json(&b), "order must not leak");
        let doc = serde_json::parse_value(&json_a).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        let names: Vec<_> = slices
            .iter()
            .map(|s| match s.get("name") {
                Some(Value::Str(n)) => n.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["F0", "F1", "F2", "B0"]);
    }

    #[test]
    fn control_plane_instants_sort_after_data_plane_slices() {
        let events = vec![
            Event::cluster(1.0, EventKind::Preemption { vm: 7 }),
            op_pair(0, 0, 0.5, 1.0).pop().unwrap(),
        ];
        let json = chrome_trace_json(&events);
        let doc = serde_json::parse_value(&json).unwrap();
        let slices = doc.get("traceEvents").unwrap().as_seq_for("t").unwrap();
        assert_eq!(slices[0].get("ph"), Some(&Value::Str("X".to_string())));
        assert_eq!(slices[1].get("ph"), Some(&Value::Str("i".to_string())));
    }

    #[test]
    fn importer_recovers_data_plane_events() {
        let events = vec![
            Event::exec(
                1.0,
                EventKind::OpEnd {
                    stage: 2,
                    replica: 1,
                    op: 'R',
                    micro: 3,
                    start: 0.25,
                },
            ),
            Event::exec(
                1.0,
                EventKind::Transfer {
                    from_stage: 2,
                    to_stage: 1,
                    replica: 1,
                    micro: 3,
                    bytes: 4096.0,
                    seconds: 0.125,
                },
            ),
            Event::exec(
                2.0,
                EventKind::SendBusy {
                    stage: 2,
                    replica: 1,
                    micro: 3,
                    seconds: 0.5,
                },
            ),
            Event::exec(
                3.0,
                EventKind::Allreduce {
                    stage: 0,
                    bytes: 1.5e9,
                    ring: 4,
                    seconds: 0.75,
                },
            ),
            // Instants round-trip too, source included.
            Event::cluster(4.0, EventKind::Preemption { vm: 0 }),
        ];
        let back = events_from_chrome_trace(&chrome_trace_json(&events)).unwrap();
        assert_eq!(back.len(), 5);
        assert_eq!(back[0].kind, events[0].kind);
        assert_eq!(back[0].t_sim, 1.0);
        assert_eq!(back[1].kind, events[1].kind);
        assert_eq!(back[2].kind, events[2].kind);
        assert_eq!(back[3].kind, events[3].kind);
        assert_eq!(back[3].t_sim, 3.0);
        assert_eq!(back[4], events[4], "instant keeps kind, time, and source");
    }

    /// Every control-plane kind grown in PRs 6–8 (fleet arbitration,
    /// zero-downtime morphing, crash recovery) must survive
    /// export → import → export byte-for-byte, and import back to the
    /// original events — fields, timestamp, and source included.
    /// Timestamps are dyadic (multiples of 1/64 s) so the µs scaling in
    /// the trace format is float-exact.
    #[test]
    fn fleet_and_zero_downtime_trace_round_trips_byte_for_byte() {
        let dy = |k: u64| k as f64 / 64.0;
        let events = vec![
            Event::exec(
                dy(64),
                EventKind::OpEnd {
                    stage: 0,
                    replica: 0,
                    op: 'F',
                    micro: 0,
                    start: dy(32),
                },
            ),
            Event::fleet(
                dy(128),
                EventKind::FleetAllocation {
                    job: 1,
                    spot_gpus: 48,
                    on_demand_gpus: 4,
                    market_gpus: 96,
                },
            ),
            Event::fleet(
                dy(160),
                EventKind::JobPreempted {
                    job: 2,
                    gpus_revoked: 8,
                    reason: "fair_share".to_string(),
                },
            ),
            Event::fleet(
                dy(192),
                EventKind::FallbackProvisioned {
                    job: 2,
                    gpus: 8,
                    total_on_demand: 12,
                },
            ),
            Event::manager(
                dy(256),
                EventKind::Morph {
                    p: 4,
                    d: 12,
                    gpus_held: 50,
                    gpus_used: 48,
                    examples_per_sec: 125.5,
                    examples_per_sec_per_gpu: 2.615,
                    reconfigured: false,
                    restart_seconds: 0.0,
                    migration_seconds: 11.25,
                },
            ),
            Event::manager(
                dy(320),
                EventKind::Checkpoint {
                    step: 700,
                    gpus_held: 50,
                    gpus_used: 48,
                    p: 4,
                    d: 12,
                    examples_per_sec: 125.5,
                    examples_per_sec_per_gpu: 2.615,
                    write_seconds: 1.5,
                    overlapped_seconds: 38.5,
                    full: false,
                },
            ),
            Event::manager(
                dy(352),
                EventKind::CheckpointTorn {
                    step: 700,
                    bytes_written: 1024,
                    bytes_expected: 4096,
                },
            ),
            Event::recovery(
                dy(384),
                EventKind::RecoveryReplay {
                    wal_records: 512,
                    torn: true,
                    dropped_bytes: 96,
                    replay_seconds: 0.75,
                },
            ),
            Event::manager(
                dy(416),
                EventKind::DegradedEnter {
                    gpus: 3,
                    reason: "below min config".to_string(),
                },
            ),
            Event::manager(
                dy(448),
                EventKind::DegradedExit {
                    gpus: 16,
                    paused_seconds: 0.5,
                },
            ),
            Event::manager(
                dy(480),
                EventKind::LostWork {
                    minibatches: 3,
                    seconds: 2.25,
                },
            ),
            Event::chaos(
                dy(512),
                EventKind::FaultInjected {
                    fault: "preemption_burst".to_string(),
                    vm: 7,
                },
            ),
        ];
        let t1 = chrome_trace_json(&events);
        let back = events_from_chrome_trace(&t1).unwrap();
        assert_eq!(back, events, "import must invert export exactly");
        let t2 = chrome_trace_json(&back);
        assert_eq!(t1, t2, "export -> import -> export must be byte-stable");
    }

    /// The remaining manager/cluster/train instants (pre-PR-6 schema)
    /// also import back to their original events.
    #[test]
    fn remaining_instants_import_back_exactly() {
        let dy = |k: u64| k as f64 / 64.0;
        let events = vec![
            Event::cluster(dy(64), EventKind::HeartbeatMiss { vm: 9 }),
            Event::cluster(
                dy(96),
                EventKind::EvictionNotice {
                    vm: 9,
                    lead_seconds: 30.0,
                },
            ),
            Event::cluster(dy(128), EventKind::SilenceStart { vm: 9 }),
            Event::cluster(dy(160), EventKind::SilenceEnd { vm: 9 }),
            Event::manager(dy(192), EventKind::CheckpointWriteFailed { step: 41 }),
            Event::manager(
                dy(224),
                EventKind::CheckpointFallback {
                    from_step: 41,
                    to_step: 40,
                },
            ),
            Event::manager(
                dy(256),
                EventKind::VmExcluded {
                    vm: 9,
                    consecutive_misses: 3,
                },
            ),
            Event::manager(dy(288), EventKind::VmReadmitted { vm: 9 }),
            Event::manager(
                dy(320),
                EventKind::MorphRetry {
                    attempt: 2,
                    backoff_seconds: 4.0,
                    gpus: 14,
                },
            ),
            Event::manager(
                dy(352),
                EventKind::OomKill {
                    stage: 5,
                    needed_bytes: 17.5e9,
                    capacity_bytes: 16.0e9,
                    what: "stage 5 of 4x12".to_string(),
                },
            ),
            Event::manager(
                dy(384),
                EventKind::PlanSearch {
                    candidates: 24,
                    simulated: 10,
                    memo_hits: 12,
                    analytic_fallbacks: 2,
                },
            ),
            Event::train(
                dy(416),
                EventKind::EpochLoss {
                    step: 12,
                    loss: 2.125,
                    examples_per_sec: 96.0,
                },
            ),
        ];
        let back = events_from_chrome_trace(&chrome_trace_json(&events)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn importer_rejects_garbage() {
        assert!(events_from_chrome_trace("not json").is_err());
        assert!(events_from_chrome_trace("{\"nope\": 1}").is_err());
    }
}
