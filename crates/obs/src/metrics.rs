//! Counters, gauges, and fixed-bucket histograms, snapshot-able to one
//! JSON document.

use std::collections::BTreeMap;

use serde::Value;

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`, with one implicit overflow bucket at the end.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram with the given (strictly increasing) upper edges.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            sum: 0.0,
            count: 0,
        }
    }

    /// Ten exponentially-spaced buckets from `lo` upward (each edge 4x
    /// the previous) — a reasonable default for latencies in seconds.
    pub fn exponential(lo: f64) -> Self {
        assert!(lo > 0.0);
        Histogram::new((0..10).map(|i| lo * 4f64.powi(i)).collect())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts, including the trailing overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "bounds".to_string(),
                Value::Seq(self.bounds.iter().map(|&b| Value::Float(b)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Seq(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            ("sum".to_string(), Value::Float(self.sum)),
            ("count".to_string(), Value::UInt(self.count)),
        ])
    }
}

/// A registry of named metrics. Names are free-form dotted strings
/// (`"exec.bubble_seconds.stage3"`); maps are sorted, so snapshots are
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments a counter by 1 (creating it at 0).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `by` to a counter (creating it at 0).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets a gauge to `v`.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Registers (or replaces) a histogram with explicit bucket bounds.
    pub fn register_histogram(&mut self, name: &str, bounds: Vec<f64>) {
        self.histograms
            .insert(name.to_string(), Histogram::new(bounds));
    }

    /// Records an observation, auto-registering an exponential histogram
    /// anchored at 1 ms when the name is new.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::exponential(1e-3))
            .observe(v);
    }

    /// A counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The whole registry as one JSON value tree.
    pub fn snapshot_value(&self) -> Value {
        Value::Map(vec![
            (
                "counters".to_string(),
                Value::Map(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::UInt(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Map(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Float(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Map(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// The whole registry as one pretty-printed JSON document.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot_value())
            .expect("metric snapshots always serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.inc("morphs");
        m.add("morphs", 2);
        assert_eq!(m.counter("morphs"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge("examples_per_sec", 10.0);
        m.gauge("examples_per_sec", 12.5);
        assert_eq!(m.gauge_value("examples_per_sec"), Some(12.5));
    }

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.9, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 106.9 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn observe_auto_registers() {
        let mut m = MetricsRegistry::new();
        m.observe("allreduce_seconds", 0.25);
        m.observe("allreduce_seconds", 0.5);
        assert_eq!(m.histogram("allreduce_seconds").unwrap().count(), 2);
    }

    #[test]
    fn snapshot_is_one_valid_json_document() {
        let mut m = MetricsRegistry::new();
        m.add("preemptions", 4);
        m.gauge("gpus_held", 80.0);
        m.register_histogram("bubble_seconds", vec![0.1, 1.0, 10.0]);
        m.observe("bubble_seconds", 0.4);
        let json = m.snapshot_json();
        let v = serde_json::parse_value(&json).expect("snapshot must be valid JSON");
        assert_eq!(v.get("counters").and_then(|c| c.get("preemptions")), {
            Some(&Value::UInt(4))
        });
        let hist = v
            .get("histograms")
            .and_then(|h| h.get("bubble_seconds"))
            .expect("histogram present");
        assert_eq!(hist.get("count"), Some(&Value::UInt(1)));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let build = || {
            let mut m = MetricsRegistry::new();
            m.add("b", 1);
            m.add("a", 2);
            m.gauge("z", 1.0);
            m.gauge("y", 2.0);
            m
        };
        assert_eq!(build().snapshot_json(), build().snapshot_json());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        Histogram::new(vec![2.0, 1.0]);
    }
}
