//! Streaming (incremental, bounded-memory) time attribution.
//!
//! The post-hoc [`profile`](crate::profile()) pass needs every event in
//! memory before it can attribute anything. A week-long fleet sweep at
//! emulator speeds emits tens of millions of events — this module is the
//! third consumption mode (after post-hoc capture and the chaos flight
//! recorder): a [`StreamingProfiler`] that folds events as they arrive,
//! holding `O(stages × replicas)` lane state plus a bounded reorder
//! window instead of `O(events)`, and a mergeable [`PartialReport`] so
//! per-shard streams folded in *any* grouping reproduce the post-hoc
//! [`ProfileReport`] **byte-for-byte**.
//!
//! # Why byte-identity is possible at all
//!
//! Three observations carry the whole design:
//!
//! 1. **Makespan clipping is a no-op on well-formed streams.** The
//!    post-hoc lane sweep clips every busy interval to the (globally
//!    known) makespan — but every interval's end is itself a makespan
//!    candidate, so `end.min(makespan) == end` bit-for-bit. The
//!    streaming fold therefore clips to `f64::INFINITY` and never needs
//!    the makespan until `finish`, after all shards merged.
//! 2. **Every critical-path dependency is replica-local.** An op's
//!    candidate predecessors are the previous op on its own `(stage,
//!    replica)` lane, the same-micro forward one stage upstream (same
//!    replica), and the same-micro backward one stage downstream (same
//!    replica). Sharding by replica keeps the whole dependency walk
//!    shard-local.
//! 3. **Order-sensitive `f64` sums route to one shard.** Control-plane
//!    events and transfers accumulate on shard 0 in arrival order (see
//!    [`shard_route`](crate::shard_route)); merging adds exact zeros
//!    from every other shard, and `x + 0.0 == x` bytewise for the
//!    non-negative sums involved.
//!
//! Everything the stream cannot prove incrementally is *counted, never
//! silent*: late arrivals, duplicate op keys, lane collisions, split
//! degraded episodes, irregular intervals ([`StreamCounters`]). The
//! proptests pin that when [`StreamCounters::violations`] is zero the
//! merged report is byte-identical to the post-hoc one.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use serde::Serialize;

use crate::attrib::{finish_critical_path, ChainSummary, DowntimeAcc};
use crate::bus::{allreduce_owner, EventSink};
use crate::event::{Event, EventKind};
use crate::profile::{assemble_report, BusyKind, LaneFold, LaneProfile, ProfileReport};

const EPS: f64 = 1e-9;

/// Tuning knobs for the streaming profiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Reorder window, seconds of stream time. A pending interval folds
    /// once its start falls `window_seconds` behind the high-water mark.
    /// The default (`f64::INFINITY`) folds everything at seal time —
    /// exact for *any* input order, at `O(events)` pending cost; any
    /// finite window larger than the stream's worst-case interval length
    /// plus reordering is exact for time-ordered streams and bounds the
    /// pending buffer.
    pub window_seconds: f64,
    /// Hard cap on the pending buffer; the oldest entries are force-
    /// folded (and counted) past it. `usize::MAX` disables.
    pub max_pending: usize,
    /// Horizon, seconds, after which unconsumed critical-path
    /// predecessor summaries are pruned (and counted). Bounds the
    /// dependency table on endless streams; `f64::INFINITY` disables.
    pub prune_inflight_after: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_seconds: f64::INFINITY,
            max_pending: usize::MAX,
            prune_inflight_after: f64::INFINITY,
        }
    }
}

impl StreamConfig {
    /// A bounded-memory configuration: reorder window of
    /// `window_seconds`, pending cap scaled to it, and an inflight prune
    /// horizon of four windows.
    pub fn windowed(window_seconds: f64, max_pending: usize) -> Self {
        StreamConfig {
            window_seconds,
            max_pending,
            prune_inflight_after: window_seconds * 4.0,
        }
    }
}

/// Accounting the streaming pass keeps about itself.
///
/// `violations()` totals the conditions under which byte-identity with
/// the post-hoc profiler is no longer guaranteed — the CI smoke gate
/// pins it at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct StreamCounters {
    /// Events this shard owns (ghost broadcast copies excluded); merged
    /// reports sum to the post-hoc `events` field.
    pub events: usize,
    /// Intervals that arrived after their window had already folded.
    pub late_events: usize,
    /// Lanes first seen after one of their stage's allreduces folded.
    pub late_allreduce_lanes: usize,
    /// Duplicate `(stage, replica, op, micro)` op keys observed.
    pub dup_op_keys: usize,
    /// Lane keys present on both sides of a merge (impossible under
    /// canonical replica routing).
    pub lane_collisions: usize,
    /// Degraded episodes left open on both sides of a merge (control
    /// events split across shards).
    pub split_control: usize,
    /// Intervals with non-finite or negative-start bounds.
    pub irregular_intervals: usize,
    /// Pending entries folded early by the `max_pending` cap.
    pub force_folded: usize,
    /// Unconsumed predecessor summaries dropped by the prune horizon
    /// (memory bound; identity still holds unless a pruned entry would
    /// have been referenced).
    pub pruned_inflight: usize,
    /// Peak pending-buffer size.
    pub peak_pending: usize,
    /// Peak dependency-table size.
    pub peak_inflight: usize,
    /// Peak total resident state ([`StreamingProfiler::resident`]).
    pub peak_resident: usize,
}

impl StreamCounters {
    /// Conditions under which byte-identity with the post-hoc profiler
    /// is no longer guaranteed.
    pub fn violations(&self) -> usize {
        self.late_events
            + self.late_allreduce_lanes
            + self.dup_op_keys
            + self.lane_collisions
            + self.split_control
            + self.irregular_intervals
            + self.force_folded
    }

    fn absorb(&mut self, o: &StreamCounters) {
        self.events += o.events;
        self.late_events += o.late_events;
        self.late_allreduce_lanes += o.late_allreduce_lanes;
        self.dup_op_keys += o.dup_op_keys;
        self.lane_collisions += o.lane_collisions;
        self.split_control += o.split_control;
        self.irregular_intervals += o.irregular_intervals;
        self.force_folded += o.force_folded;
        self.pruned_inflight += o.pruned_inflight;
        self.peak_pending = self.peak_pending.max(o.peak_pending);
        self.peak_inflight = self.peak_inflight.max(o.peak_inflight);
        self.peak_resident = self.peak_resident.max(o.peak_resident);
    }
}

/// `f64` with a total order, usable as a `BTreeMap` key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Tf64(f64);

impl Eq for Tf64 {}

impl PartialOrd for Tf64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tf64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Pending-buffer key. The ordering — `(start, end, class, seq)` with
/// data intervals (`class` 0) before allreduces (`class` 1) and `seq`
/// preserving arrival order — reproduces exactly the post-hoc per-lane
/// stable sort: intervals pushed in arrival order, allreduces appended
/// after, stably sorted by `(start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PendKey {
    start: Tf64,
    end: Tf64,
    class: u8,
    seq: u64,
}

#[derive(Debug, Clone)]
enum Pend {
    /// An op interval (`OpEnd`): lane fold + critical-path walk. `start`
    /// in the key is clamped to 0 (lane-sweep semantics); `raw_start`
    /// keeps the unclamped value the critical path charges.
    Op {
        stage: usize,
        replica: usize,
        kind: BusyKind,
        raw_start: f64,
        op: char,
        micro: usize,
    },
    /// A blocked-send interval: lane fold only.
    Send { stage: usize, replica: usize },
    /// A per-stage allreduce: folds into every known lane of the stage
    /// plus the stage's synthetic-lane candidate.
    Allreduce { stage: usize },
}

/// Per-lane streaming state: the shared cursor sweep plus the last op's
/// chain summary (the lane-predecessor candidate for the next op).
#[derive(Debug, Clone, PartialEq)]
struct LaneState {
    fold: LaneFold,
    ops: usize,
    last_op: Option<ChainSummary>,
}

impl LaneState {
    fn new() -> Self {
        LaneState {
            fold: LaneFold::default(),
            ops: 0,
            last_op: None,
        }
    }
}

/// The stage's synthetic replica-0 lane candidate, used at finish only
/// if the stage ended up with no real lanes (matching the post-hoc
/// behavior for allreduce-only stages).
#[derive(Debug, Clone, PartialEq)]
struct SynthLane {
    fold: LaneFold,
}

/// The terminal candidate for the critical path: the last op to finish,
/// ties broken toward the lowest `(stage, replica, micro)` — the same
/// total order the post-hoc pass uses, hence order- and merge-invariant.
#[derive(Debug, Clone, PartialEq)]
struct Terminal {
    end: f64,
    stage: usize,
    replica: usize,
    micro: usize,
    chain: ChainSummary,
}

/// A mergeable shard of streaming profiler state.
///
/// `merge` is associative: folding any grouping of per-shard partials
/// produces the same final [`ProfileReport`]. `report`/`into_report`
/// close the stream at the current makespan, so every intermediate
/// partial satisfies the same sum-to-makespan and downtime identities
/// the post-hoc report does.
#[derive(Debug, Clone)]
pub struct PartialReport {
    cfg: StreamConfig,
    makespan: f64,
    pipeline_end: f64,
    high_water: f64,
    max_op_stage: usize,
    seq: u64,
    frontier: Option<PendKey>,
    pending: BTreeMap<PendKey, Pend>,
    lanes: BTreeMap<(usize, usize), LaneState>,
    synth: BTreeMap<usize, SynthLane>,
    folded_ars: BTreeMap<usize, usize>,
    inflight: BTreeMap<(usize, usize, char, usize), ChainSummary>,
    prune_watermark: usize,
    terminal: Option<Terminal>,
    transfer_seconds: f64,
    transfer_out: BTreeMap<usize, f64>,
    downtime: DowntimeAcc,
    counters: StreamCounters,
}

impl PartialReport {
    fn new(cfg: StreamConfig) -> Self {
        PartialReport {
            cfg,
            makespan: 0.0,
            pipeline_end: 0.0,
            high_water: 0.0,
            max_op_stage: 0,
            seq: 0,
            frontier: None,
            pending: BTreeMap::new(),
            lanes: BTreeMap::new(),
            synth: BTreeMap::new(),
            folded_ars: BTreeMap::new(),
            inflight: BTreeMap::new(),
            prune_watermark: 64,
            terminal: None,
            transfer_seconds: 0.0,
            transfer_out: BTreeMap::new(),
            downtime: DowntimeAcc::default(),
            counters: StreamCounters::default(),
        }
    }

    /// The streaming counters accumulated so far.
    pub fn counters(&self) -> &StreamCounters {
        &self.counters
    }

    /// The stream's makespan so far.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Owned events consumed so far.
    pub fn events(&self) -> usize {
        self.counters.events
    }

    /// Resident state entries (pending + dependency table + lanes +
    /// synthetic lanes) — the quantity that stays bounded.
    pub fn resident(&self) -> usize {
        self.pending.len() + self.inflight.len() + self.lanes.len() + self.synth.len()
    }

    fn touch_lane(&mut self, stage: usize, replica: usize) -> &mut LaneState {
        if !self.lanes.contains_key(&(stage, replica))
            && self.folded_ars.get(&stage).copied().unwrap_or(0) > 0
        {
            self.counters.late_allreduce_lanes += 1;
        }
        self.lanes
            .entry((stage, replica))
            .or_insert_with(LaneState::new)
    }

    fn push_pend(&mut self, start: f64, end: f64, class: u8, pend: Pend) {
        let key = PendKey {
            start: Tf64(start),
            end: Tf64(end),
            class,
            seq: self.seq,
        };
        self.seq += 1;
        if let Some(f) = &self.frontier {
            if key < *f {
                self.counters.late_events += 1;
            }
        }
        self.pending.insert(key, pend);
    }

    fn ingest_allreduce(&mut self, e: &Event) {
        let EventKind::Allreduce { stage, seconds, .. } = &e.kind else {
            return;
        };
        if e.t_sim.is_finite() {
            self.makespan = self.makespan.max(e.t_sim);
            self.high_water = self.high_water.max(e.t_sim);
        }
        let start = (e.t_sim - seconds).max(0.0);
        let end = e.t_sim;
        if !(start.is_finite() && end.is_finite()) {
            self.counters.irregular_intervals += 1;
            return;
        }
        self.push_pend(start, end, 1, Pend::Allreduce { stage: *stage });
    }

    fn observe(&mut self, e: &Event) {
        self.counters.events += 1;
        match &e.kind {
            EventKind::OpEnd {
                stage,
                replica,
                op,
                micro,
                start,
            } => {
                let end = e.t_sim;
                if end.is_finite() {
                    self.makespan = self.makespan.max(end);
                    self.high_water = self.high_water.max(end);
                    self.pipeline_end = self.pipeline_end.max(end);
                }
                self.max_op_stage = self.max_op_stage.max(*stage);
                if !(start.is_finite() && end.is_finite()) {
                    self.counters.irregular_intervals += 1;
                } else {
                    if *start < 0.0 {
                        self.counters.irregular_intervals += 1;
                    }
                    let kind = match op {
                        'F' => BusyKind::Forward,
                        'R' => BusyKind::Recompute,
                        _ => BusyKind::Backward,
                    };
                    self.touch_lane(*stage, *replica).ops += 1;
                    self.push_pend(
                        start.max(0.0),
                        end,
                        0,
                        Pend::Op {
                            stage: *stage,
                            replica: *replica,
                            kind,
                            raw_start: *start,
                            op: *op,
                            micro: *micro,
                        },
                    );
                }
            }
            EventKind::SendBusy {
                stage,
                replica,
                seconds,
                ..
            } => {
                let start = e.t_sim.max(0.0);
                let end = e.t_sim + seconds;
                if e.t_sim.is_finite() {
                    self.high_water = self.high_water.max(e.t_sim);
                }
                if end.is_finite() {
                    self.makespan = self.makespan.max(end);
                }
                if !(start.is_finite() && end.is_finite()) {
                    self.counters.irregular_intervals += 1;
                } else {
                    if e.t_sim < 0.0 {
                        self.counters.irregular_intervals += 1;
                    }
                    self.touch_lane(*stage, *replica);
                    self.push_pend(
                        start,
                        end,
                        0,
                        Pend::Send {
                            stage: *stage,
                            replica: *replica,
                        },
                    );
                }
            }
            EventKind::Allreduce { .. } => {
                self.ingest_allreduce(e);
            }
            EventKind::Transfer {
                from_stage,
                seconds,
                ..
            } => {
                if e.t_sim.is_finite() {
                    self.high_water = self.high_water.max(e.t_sim);
                }
                let end = e.t_sim + seconds;
                if end.is_finite() {
                    self.makespan = self.makespan.max(end);
                }
                self.transfer_seconds += seconds;
                *self.transfer_out.entry(*from_stage).or_default() += seconds;
            }
            _ => {
                if e.t_sim.is_finite() {
                    self.makespan = self.makespan.max(e.t_sim);
                    self.high_water = self.high_water.max(e.t_sim);
                }
                self.downtime.observe(e);
            }
        }
        self.advance();
    }

    fn observe_ghost(&mut self, e: &Event) {
        if matches!(e.kind, EventKind::Allreduce { .. }) {
            self.ingest_allreduce(e);
            self.advance();
        }
    }

    /// Folds pending intervals whose window has passed and enforces the
    /// pending cap, then updates peaks.
    fn advance(&mut self) {
        if self.cfg.window_seconds.is_finite() {
            let cut = self.high_water - self.cfg.window_seconds;
            while self
                .pending
                .first_key_value()
                .is_some_and(|(k, _)| k.start.0 <= cut)
            {
                let (k, p) = self.pending.pop_first().expect("checked non-empty");
                self.fold_pend(k, p);
            }
        }
        while self.pending.len() > self.cfg.max_pending {
            let (k, p) = self.pending.pop_first().expect("len > cap >= 0");
            self.counters.force_folded += 1;
            self.fold_pend(k, p);
        }
        self.counters.peak_pending = self.counters.peak_pending.max(self.pending.len());
        self.counters.peak_inflight = self.counters.peak_inflight.max(self.inflight.len());
        self.counters.peak_resident = self.counters.peak_resident.max(self.resident());
    }

    /// Folds every pending interval (stream end / pre-merge barrier).
    fn seal(&mut self) {
        while let Some((k, p)) = self.pending.pop_first() {
            self.fold_pend(k, p);
        }
        self.counters.peak_inflight = self.counters.peak_inflight.max(self.inflight.len());
        self.counters.peak_resident = self.counters.peak_resident.max(self.resident());
    }

    fn fold_pend(&mut self, key: PendKey, pend: Pend) {
        self.frontier = Some(key);
        match pend {
            Pend::Op {
                stage,
                replica,
                kind,
                raw_start,
                op,
                micro,
            } => {
                let lane = self
                    .lanes
                    .get_mut(&(stage, replica))
                    .expect("lane created at pend time");
                lane.fold
                    .push_clipped(key.start.0, key.end.0, kind, f64::INFINITY);
                self.walk_op(crate::profile::ProfileSpan {
                    stage,
                    replica,
                    op,
                    micro,
                    start: raw_start,
                    end: key.end.0,
                });
            }
            Pend::Send { stage, replica } => {
                let lane = self
                    .lanes
                    .get_mut(&(stage, replica))
                    .expect("lane created at pend time");
                lane.fold
                    .push_clipped(key.start.0, key.end.0, BusyKind::Send, f64::INFINITY);
            }
            Pend::Allreduce { stage } => {
                let keys: Vec<(usize, usize)> = self
                    .lanes
                    .range((stage, 0)..(stage + 1, 0))
                    .map(|(k, _)| *k)
                    .collect();
                for k in keys {
                    self.lanes
                        .get_mut(&k)
                        .expect("ranged key exists")
                        .fold
                        .push_clipped(key.start.0, key.end.0, BusyKind::Allreduce, f64::INFINITY);
                }
                self.synth
                    .entry(stage)
                    .or_insert_with(|| SynthLane {
                        fold: LaneFold::default(),
                    })
                    .fold
                    .push_clipped(key.start.0, key.end.0, BusyKind::Allreduce, f64::INFINITY);
                *self.folded_ars.entry(stage).or_default() += 1;
            }
        }
    }

    /// One step of the incremental critical-path walk: bind the op to
    /// its latest-finishing eligible predecessor (same candidate set,
    /// filter, and tie-break as the post-hoc backward walk) and extend
    /// that predecessor's chain summary.
    fn walk_op(&mut self, s: crate::profile::ProfileSpan) {
        // Consume-on-lookup: each F/B key has exactly one possible
        // dependent (this op), so the entry is dead after this lookup
        // whether or not it wins.
        let fpred = if s.op == 'F' && s.stage > 0 {
            self.inflight
                .remove(&(s.stage - 1, s.replica, 'F', s.micro))
        } else {
            None
        };
        let bpred = if s.op == 'B' {
            self.inflight
                .remove(&(s.stage + 1, s.replica, 'B', s.micro))
        } else {
            None
        };
        let lane_pred = self
            .lanes
            .get(&(s.stage, s.replica))
            .and_then(|l| l.last_op.as_ref());

        let mut best: Option<(f64, (usize, usize), &ChainSummary)> = None;
        let candidates = [
            (lane_pred, (s.stage, s.replica)),
            (fpred.as_ref(), (s.stage.wrapping_sub(1), s.replica)),
            (bpred.as_ref(), (s.stage + 1, s.replica)),
        ];
        for (cand, sr) in candidates {
            let Some(c) = cand else { continue };
            if c.end <= s.start + EPS {
                let better = match &best {
                    None => true,
                    Some((be, bsr, _)) => c.end > *be || (c.end == *be && sr < *bsr),
                };
                if better {
                    best = Some((c.end, sr, c));
                }
            }
        }
        let chain = match best {
            Some((_, _, c)) => c.extend(&s),
            None => ChainSummary::leaf(&s),
        };

        if (s.op == 'F' || (s.op == 'B' && s.stage > 0))
            && self
                .inflight
                .insert((s.stage, s.replica, s.op, s.micro), chain.clone())
                .is_some()
        {
            self.counters.dup_op_keys += 1;
        }
        self.lanes
            .get_mut(&(s.stage, s.replica))
            .expect("lane created at pend time")
            .last_op = Some(chain.clone());

        let better = match &self.terminal {
            None => true,
            Some(t) => {
                s.end > t.end
                    || (s.end == t.end
                        && (s.stage, s.replica, s.micro) < (t.stage, t.replica, t.micro))
            }
        };
        if better {
            self.terminal = Some(Terminal {
                end: s.end,
                stage: s.stage,
                replica: s.replica,
                micro: s.micro,
                chain,
            });
        }

        // Amortized prune of never-consumed predecessors (last-stage
        // forwards, truncated streams) — the dependency table's memory
        // bound on endless streams.
        if self.cfg.prune_inflight_after.is_finite() && self.inflight.len() >= self.prune_watermark
        {
            let cutoff = s.start - self.cfg.prune_inflight_after;
            let before = self.inflight.len();
            self.inflight.retain(|_, c| c.end >= cutoff);
            self.counters.pruned_inflight += before - self.inflight.len();
            self.prune_watermark = (self.inflight.len() * 2).max(64);
        }
    }

    /// Merges two shards. Associative: any fold order over a set of
    /// shards yields the same finished report. Both sides' pending
    /// buffers are sealed first (safe because every lane's intervals
    /// live entirely on one shard, so each side folds its own lanes in
    /// their full sorted order).
    pub fn merge(mut self, mut other: PartialReport) -> PartialReport {
        self.seal();
        other.seal();

        self.makespan = self.makespan.max(other.makespan);
        self.pipeline_end = self.pipeline_end.max(other.pipeline_end);
        self.high_water = self.high_water.max(other.high_water);
        self.max_op_stage = self.max_op_stage.max(other.max_op_stage);
        self.seq += other.seq;
        self.frontier = match (self.frontier, other.frontier) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.transfer_seconds += other.transfer_seconds;
        for (k, v) in other.transfer_out {
            *self.transfer_out.entry(k).or_default() += v;
        }

        for (k, ls) in other.lanes {
            match self.lanes.entry(k) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(ls);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // Impossible under canonical routing; counted and
                    // merged numerically so nothing is silently lost.
                    self.counters.lane_collisions += 1;
                    let mine = e.get_mut();
                    mine.ops += ls.ops;
                    mine.fold.forward += ls.fold.forward;
                    mine.fold.recompute += ls.fold.recompute;
                    mine.fold.backward += ls.fold.backward;
                    mine.fold.send += ls.fold.send;
                    mine.fold.allreduce += ls.fold.allreduce;
                    mine.fold.warmup += ls.fold.warmup;
                    mine.fold.stall += ls.fold.stall;
                    mine.fold.cursor = mine.fold.cursor.max(ls.fold.cursor);
                    mine.fold.pushes += ls.fold.pushes;
                    mine.fold.first = mine.fold.first && ls.fold.first;
                    if match (&mine.last_op, &ls.last_op) {
                        (None, Some(_)) => true,
                        (Some(a), Some(b)) => b.end > a.end,
                        _ => false,
                    } {
                        mine.last_op = ls.last_op;
                    }
                }
            }
        }

        // Every shard that saw a stage's allreduces built the same
        // synthetic candidate; keep the more complete one (left-biased),
        // which is associative because equal push-counts are identical.
        for (stage, sy) in other.synth {
            match self.synth.entry(stage) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(sy);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if sy.fold.pushes > e.get().fold.pushes {
                        *e.get_mut() = sy;
                    }
                }
            }
        }
        for (stage, n) in other.folded_ars {
            let mine = self.folded_ars.entry(stage).or_default();
            *mine = (*mine).max(n);
        }

        for (k, c) in other.inflight {
            if self.inflight.insert(k, c).is_some() {
                self.counters.dup_op_keys += 1;
            }
        }

        self.terminal = match (self.terminal.take(), other.terminal) {
            (None, t) => t,
            (t, None) => t,
            (Some(a), Some(b)) => Some(
                if b.end > a.end
                    || (b.end == a.end
                        && (b.stage, b.replica, b.micro) < (a.stage, a.replica, a.micro))
                {
                    b
                } else {
                    a
                },
            ),
        };

        // Downtime: field-wise add (non-owning shards contribute exact
        // zeros under canonical routing).
        {
            let d = &mut self.downtime.d;
            let o = other.downtime.d;
            d.morphs += o.morphs;
            d.reconfigurations += o.reconfigurations;
            d.migrations += o.migrations;
            d.checkpoints += o.checkpoints;
            d.delta_checkpoints += o.delta_checkpoints;
            d.checkpoint_write_failures += o.checkpoint_write_failures;
            d.checkpoints_torn += o.checkpoints_torn;
            d.recovery_replays += o.recovery_replays;
            d.preemptions += o.preemptions;
            d.degraded_episodes += o.degraded_episodes;
            d.faults_injected += o.faults_injected;
            d.lost_minibatches += o.lost_minibatches;
            d.degraded_seconds += o.degraded_seconds;
            d.morph_restart_seconds += o.morph_restart_seconds;
            d.migration_seconds += o.migration_seconds;
            d.checkpoint_write_seconds += o.checkpoint_write_seconds;
            d.checkpoint_overlapped_seconds += o.checkpoint_overlapped_seconds;
            d.lost_work_seconds += o.lost_work_seconds;
            d.recovery_replay_seconds += o.recovery_replay_seconds;
            self.downtime.open_degraded =
                match (self.downtime.open_degraded, other.downtime.open_degraded) {
                    (Some(x), Some(y)) => {
                        self.counters.split_control += 1;
                        Some(x.max(y))
                    }
                    (x, y) => x.or(y),
                };
        }

        self.counters.absorb(&other.counters);
        self
    }

    /// Closes the stream at the current makespan and produces the full
    /// report. Byte-identical to `profile(&events)` over the same events
    /// whenever [`StreamCounters::violations`] is zero.
    pub fn into_report(mut self) -> ProfileReport {
        self.seal();
        let makespan = self.makespan;

        // Real lanes, plus each allreduce-only stage's synthetic
        // replica-0 lane (post-hoc parity).
        let mut all: BTreeMap<(usize, usize), (LaneFold, usize)> = self
            .lanes
            .into_iter()
            .map(|(k, ls)| (k, (ls.fold, ls.ops)))
            .collect();
        for (stage, sy) in self.synth {
            if all.range((stage, 0)..(stage + 1, 0)).next().is_none() {
                all.insert((stage, 0), (sy.fold, 0));
            }
        }
        let lanes: Vec<LaneProfile> = all
            .into_iter()
            .map(|((stage, replica), (fold, ops))| fold.finish(stage, replica, ops, makespan))
            .collect();

        let critical_path = self
            .terminal
            .map(|t| finish_critical_path(t.chain, t.end, self.max_op_stage));

        assemble_report(
            self.counters.events,
            makespan,
            self.pipeline_end,
            lanes,
            self.transfer_seconds,
            &self.transfer_out,
            critical_path,
            self.downtime.finish(makespan),
        )
    }

    /// Non-destructive [`PartialReport::into_report`] (clones the state;
    /// the live `--follow` surface calls this per poll).
    pub fn report(&self) -> ProfileReport {
        self.clone().into_report()
    }
}

/// Incremental profiler over one event stream (one shard).
///
/// Feed events with [`observe`](StreamingProfiler::observe) (or
/// [`observe_ghost`](StreamingProfiler::observe_ghost) for broadcast
/// copies this shard does not own), then take the [`PartialReport`] and
/// merge it with the other shards'. A single profiler observing the full
/// stream reproduces the post-hoc report exactly.
#[derive(Debug, Clone)]
pub struct StreamingProfiler {
    part: PartialReport,
}

impl Default for StreamingProfiler {
    fn default() -> Self {
        StreamingProfiler::new(StreamConfig::default())
    }
}

impl StreamingProfiler {
    /// A profiler with the given window/bounds configuration.
    pub fn new(cfg: StreamConfig) -> Self {
        StreamingProfiler {
            part: PartialReport::new(cfg),
        }
    }

    /// Consumes one owned event.
    pub fn observe(&mut self, e: &Event) {
        self.part.observe(e);
    }

    /// Consumes a broadcast (allreduce) event this shard does *not* own:
    /// the interval still attributes to this shard's lanes, but the
    /// event is not counted (the owning shard counts it once).
    pub fn observe_ghost(&mut self, e: &Event) {
        self.part.observe_ghost(e);
    }

    /// Resident state entries — bounded by the window, not the stream.
    pub fn resident(&self) -> usize {
        self.part.resident()
    }

    /// The streaming counters accumulated so far.
    pub fn counters(&self) -> &StreamCounters {
        self.part.counters()
    }

    /// Clones the current state as a mergeable partial.
    pub fn snapshot(&self) -> PartialReport {
        self.part.clone()
    }

    /// Consumes the profiler, yielding its partial.
    pub fn into_partial(self) -> PartialReport {
        self.part
    }

    /// The report as of now (non-destructive).
    pub fn report(&self) -> ProfileReport {
        self.part.report()
    }
}

/// An [`EventSink`] wrapping a shared [`StreamingProfiler`] — clone it
/// before boxing into a bus (or a [`ShardedSink`](crate::ShardedSink)
/// shard), then read the partial back through the clone.
///
/// Constructed with [`StreamSink::for_shard`], it resolves broadcast
/// ownership itself: allreduces whose [`allreduce_owner`] is another
/// shard are observed as ghosts.
#[derive(Debug, Clone)]
pub struct StreamSink {
    inner: Arc<Mutex<StreamingProfiler>>,
    cfg: StreamConfig,
    shard: usize,
    shards: usize,
}

impl StreamSink {
    /// A single-shard (full-stream) streaming sink.
    pub fn new(cfg: StreamConfig) -> Self {
        StreamSink::for_shard(0, 1, cfg)
    }

    /// The sink for shard `shard` of `shards`.
    pub fn for_shard(shard: usize, shards: usize, cfg: StreamConfig) -> Self {
        assert!(shard < shards, "shard index out of range");
        StreamSink {
            inner: Arc::new(Mutex::new(StreamingProfiler::new(cfg))),
            cfg,
            shard,
            shards,
        }
    }

    /// Takes the accumulated partial, leaving a fresh profiler behind.
    pub fn take_partial(&self) -> PartialReport {
        std::mem::replace(
            &mut *self.inner.lock().expect("stream sink lock"),
            StreamingProfiler::new(self.cfg),
        )
        .into_partial()
    }

    /// Clones the current partial without draining.
    pub fn snapshot(&self) -> PartialReport {
        self.inner.lock().expect("stream sink lock").snapshot()
    }

    /// Current resident-state entries.
    pub fn resident(&self) -> usize {
        self.inner.lock().expect("stream sink lock").resident()
    }
}

impl Default for StreamSink {
    fn default() -> Self {
        StreamSink::new(StreamConfig::default())
    }
}

impl EventSink for StreamSink {
    fn record(&mut self, event: &Event) {
        let mut p = self.inner.lock().expect("stream sink lock");
        match &event.kind {
            EventKind::Allreduce { stage, .. } => {
                if allreduce_owner(*stage, self.shards) == self.shard {
                    p.observe(event);
                } else {
                    p.observe_ghost(event);
                }
            }
            _ => p.observe(event),
        }
    }
}

/// Merges per-shard partials in shard order (a convenience left fold —
/// any grouping gives the same report).
pub fn merge_partials(parts: Vec<PartialReport>) -> Option<PartialReport> {
    let mut it = parts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, PartialReport::merge))
}

/// Spawns the live HTTP surface: a std-only `TcpListener` serving the
/// shared partial's current state as JSON. Routes:
///
/// - `/report` — the full [`ProfileReport`]
/// - `/downtime` — just the downtime profile
/// - `/counters` — the [`StreamCounters`]
/// - `/healthz` — liveness
///
/// Returns the bound address (bind to port 0 for an ephemeral port). The
/// accept loop runs on a detached thread for the life of the process.
///
/// # Errors
///
/// Propagates bind failures.
pub fn spawn_http(addr: &str, state: Arc<Mutex<PartialReport>>) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let _ = serve_one(stream, &state);
            });
        }
    });
    Ok(local)
}

fn serve_one(stream: TcpStream, state: &Mutex<PartialReport>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the client can reuse well-formed HTTP.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = match path {
        "/report" => {
            let body = state.lock().expect("http state lock").report().to_json();
            ("200 OK", body)
        }
        "/downtime" => {
            let report = state.lock().expect("http state lock").report();
            let mut body =
                serde_json::to_string_pretty(&report.downtime).expect("downtime serializes");
            body.push('\n');
            ("200 OK", body)
        }
        "/counters" => {
            let mut body =
                serde_json::to_string_pretty(state.lock().expect("http state lock").counters())
                    .expect("counters serialize");
            body.push('\n');
            ("200 OK", body)
        }
        "/healthz" => ("200 OK", "{\"ok\": true}\n".to_string()),
        _ => ("404 Not Found", "{\"error\": \"not found\"}\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;

    fn op(stage: usize, replica: usize, op: char, micro: usize, start: f64, end: f64) -> Event {
        Event::exec(
            end,
            EventKind::OpEnd {
                stage,
                replica,
                op,
                micro,
                start,
            },
        )
    }

    fn stream_all(events: &[Event]) -> ProfileReport {
        let mut p = StreamingProfiler::default();
        for e in events {
            p.observe(e);
        }
        p.into_partial().into_report()
    }

    #[test]
    fn empty_stream_matches_posthoc() {
        assert_eq!(stream_all(&[]).to_json(), profile(&[]).to_json());
    }

    #[test]
    fn simple_pipeline_matches_posthoc_bytes() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            op(0, 0, 'F', 1, 1.0, 2.0),
            op(1, 0, 'F', 0, 1.5, 2.5),
            op(1, 0, 'B', 0, 2.5, 4.5),
            op(0, 0, 'B', 0, 5.0, 7.0),
        ];
        assert_eq!(stream_all(&events).to_json(), profile(&events).to_json());
    }

    #[test]
    fn sends_allreduces_and_control_match_posthoc_bytes() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            Event::exec(
                1.0,
                EventKind::SendBusy {
                    stage: 0,
                    replica: 0,
                    micro: 0,
                    seconds: 0.5,
                },
            ),
            Event::exec(
                1.2,
                EventKind::Transfer {
                    from_stage: 0,
                    to_stage: 1,
                    replica: 0,
                    micro: 0,
                    bytes: 1e6,
                    seconds: 0.125,
                },
            ),
            op(1, 0, 'F', 0, 1.625, 2.625),
            op(1, 0, 'B', 0, 2.625, 3.625),
            op(0, 0, 'B', 0, 4.0, 5.0),
            Event::exec(
                5.5,
                EventKind::Allreduce {
                    stage: 0,
                    bytes: 1e9,
                    ring: 2,
                    seconds: 0.5,
                },
            ),
            Event::exec(
                5.75,
                EventKind::Allreduce {
                    stage: 1,
                    bytes: 1e9,
                    ring: 2,
                    seconds: 0.25,
                },
            ),
            Event::manager(
                6.0,
                EventKind::LostWork {
                    minibatches: 1,
                    seconds: 0.5,
                },
            ),
        ];
        let streamed = stream_all(&events);
        assert_eq!(streamed.to_json(), profile(&events).to_json());
    }

    #[test]
    fn allreduce_only_stage_gets_a_synthetic_lane() {
        let events = vec![Event::exec(
            2.0,
            EventKind::Allreduce {
                stage: 3,
                bytes: 1e9,
                ring: 4,
                seconds: 0.5,
            },
        )];
        let streamed = stream_all(&events);
        assert_eq!(streamed.to_json(), profile(&events).to_json());
        assert_eq!(streamed.lanes.len(), 1);
        assert_eq!((streamed.lanes[0].stage, streamed.lanes[0].replica), (3, 0));
    }

    #[test]
    fn sharded_merge_matches_posthoc_bytes() {
        let mut events = Vec::new();
        for r in 0..3usize {
            for m in 0..4usize {
                let t0 = m as f64 + r as f64 * 0.125;
                events.push(op(0, r, 'F', m, t0, t0 + 0.5));
                events.push(op(1, r, 'F', m, t0 + 0.5, t0 + 1.0));
                events.push(op(1, r, 'B', m, t0 + 1.0, t0 + 1.5));
                events.push(op(0, r, 'B', m, t0 + 1.5, t0 + 2.0));
            }
        }
        events.push(Event::exec(
            8.0,
            EventKind::Allreduce {
                stage: 0,
                bytes: 1e9,
                ring: 3,
                seconds: 0.5,
            },
        ));
        events.push(Event::exec(
            8.25,
            EventKind::Allreduce {
                stage: 1,
                bytes: 1e9,
                ring: 3,
                seconds: 0.25,
            },
        ));
        events.push(Event::manager(
            9.0,
            EventKind::DegradedEnter {
                gpus: 0,
                reason: "spot crunch".into(),
            },
        ));

        for shards in [1usize, 2, 3, 5] {
            let mut sinks: Vec<StreamSink> = (0..shards)
                .map(|k| StreamSink::for_shard(k, shards, StreamConfig::default()))
                .collect();
            for e in &events {
                match crate::bus::shard_route(e, shards) {
                    crate::bus::ShardRoute::One(k) => sinks[k].record(e),
                    crate::bus::ShardRoute::Broadcast => {
                        for s in &mut sinks {
                            s.record(e);
                        }
                    }
                }
            }
            let parts: Vec<PartialReport> = sinks.iter().map(|s| s.take_partial()).collect();
            let merged = merge_partials(parts).unwrap();
            assert_eq!(merged.counters().violations(), 0, "shards={shards}");
            assert_eq!(
                merged.into_report().to_json(),
                profile(&events).to_json(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn merge_is_associative_on_the_report() {
        let mk = |r: usize| {
            let mut p = StreamingProfiler::default();
            for m in 0..3usize {
                let t0 = m as f64;
                p.observe(&op(0, r, 'F', m, t0, t0 + 0.5));
                p.observe(&op(0, r, 'B', m, t0 + 0.5, t0 + 1.0));
            }
            p.into_partial()
        };
        let (a, b, c) = (mk(0), mk(1), mk(2));
        let left = a.clone().merge(b.clone()).merge(c.clone());
        let right = a.merge(b.merge(c));
        assert_eq!(left.into_report().to_json(), right.into_report().to_json());
    }

    #[test]
    fn finite_window_bounds_pending_and_stays_exact_on_ordered_streams() {
        let mut events = Vec::new();
        for m in 0..200usize {
            let t0 = m as f64 * 0.5;
            events.push(op(0, 0, 'F', m, t0, t0 + 0.25));
        }
        let mut p = StreamingProfiler::new(StreamConfig::windowed(2.0, usize::MAX));
        for e in &events {
            p.observe(e);
        }
        let peak = p.counters().peak_pending;
        assert!(peak <= 8, "window must bound pending, got {peak}");
        assert_eq!(p.counters().violations(), 0);
        assert_eq!(
            p.into_partial().into_report().to_json(),
            profile(&events).to_json()
        );
    }

    #[test]
    fn intermediate_partials_keep_the_identities() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            op(1, 0, 'F', 0, 1.0, 2.0),
            op(1, 0, 'B', 0, 2.0, 3.0),
            op(0, 0, 'B', 0, 3.0, 4.0),
        ];
        let mut p = StreamingProfiler::default();
        for e in &events {
            p.observe(e);
            let r = p.report();
            for lane in &r.lanes {
                assert!(
                    (lane.total() - r.makespan).abs() <= 1e-9 * r.makespan.max(1.0),
                    "intermediate lane identity"
                );
            }
            let dt = &r.downtime;
            assert!(
                (dt.useful_seconds + dt.downtime_seconds() - r.makespan).abs()
                    <= 1e-9 * r.makespan.max(1.0),
                "intermediate downtime identity"
            );
        }
    }

    #[test]
    fn late_events_are_counted_not_silent() {
        let mut p = StreamingProfiler::new(StreamConfig::windowed(1.0, usize::MAX));
        p.observe(&op(0, 0, 'F', 0, 0.0, 0.5));
        p.observe(&op(0, 0, 'F', 1, 5.0, 5.5)); // folds the first
        p.observe(&op(0, 0, 'F', 2, 10.0, 10.5)); // folds the second
        p.observe(&op(0, 0, 'F', 3, 1.0, 1.5)); // behind the frontier
        assert_eq!(p.counters().late_events, 1);
        assert!(p.counters().violations() > 0);
    }

    #[test]
    fn http_surface_serves_report_and_downtime() {
        let mut p = StreamingProfiler::default();
        p.observe(&op(0, 0, 'F', 0, 0.0, 1.0));
        let state = Arc::new(Mutex::new(p.snapshot()));
        let addr = spawn_http("127.0.0.1:0", Arc::clone(&state)).unwrap();

        let get = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut buf = String::new();
            use std::io::Read;
            s.read_to_string(&mut buf).unwrap();
            let (head, body) = buf.split_once("\r\n\r\n").unwrap();
            (head.to_string(), body.to_string())
        };

        let (head, body) = get("/report");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let report: ProfileReport = serde_json::from_str(&body).unwrap();
        assert_eq!(report.events, 1);
        let (head, _) = get("/downtime");
        assert!(head.starts_with("HTTP/1.1 200"));
        let (head, body) = get("/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("ok"));
        let (head, _) = get("/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
    }
}
