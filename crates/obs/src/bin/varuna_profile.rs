//! `varuna-profile` — turn a captured event stream into a time-attribution
//! report.
//!
//! Accepts either a `JsonlSink` capture (one `Event` per line) or a chrome
//! trace document written by `chrome_trace_json` (auto-detected by the
//! `traceEvents` key), prints a headline decomposition plus the per-stage
//! utilization table, and optionally writes the full `ProfileReport` JSON:
//!
//! ```text
//! varuna-profile <capture.{jsonl,json}> [--out report.json]
//! ```

use std::process::ExitCode;

use varuna_obs::{events_from_chrome_trace, events_from_jsonl, profile};

fn usage() -> ExitCode {
    eprintln!("usage: varuna-profile <capture.{{jsonl,json}}> [--out report.json]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                if i + 1 >= argv.len() {
                    return usage();
                }
                out = Some(argv[i + 1].clone());
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: varuna-profile <capture.{{jsonl,json}}> [--out report.json]");
                return ExitCode::SUCCESS;
            }
            arg if arg.starts_with("--") => return usage(),
            arg => {
                if input.is_some() {
                    return usage();
                }
                input = Some(arg.to_string());
                i += 1;
            }
        }
    }
    let Some(path) = input else { return usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("varuna-profile: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // A chrome trace is one JSON document with a `traceEvents` array; a
    // JSonlSink capture is one event object per line.
    let parsed = if text.contains("\"traceEvents\"") {
        events_from_chrome_trace(&text)
    } else {
        events_from_jsonl(&text)
    };
    let events = match parsed {
        Ok(events) => events,
        Err(e) => {
            eprintln!("varuna-profile: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = profile(&events);
    println!(
        "{} events, makespan {:.3}s, bubble fraction {:.4}",
        report.events, report.makespan, report.bubble_fraction
    );
    if let Some(cp) = &report.critical_path {
        println!(
            "critical path: {:.3}s over {} ops ({:.3}s compute, {:.3}s wait), bottleneck stage {}",
            cp.length, cp.ops, cp.compute_seconds, cp.wait_seconds, cp.bottleneck_stage
        );
    }
    let dt = &report.downtime;
    if dt.downtime_seconds() > 0.0 {
        println!(
            "downtime: {:.1}s degraded, {:.1}s morph restarts ({} morphs / {} reconfigs), \
             {:.1}s checkpoint writes ({}), {:.1}s lost work ({} minibatches)",
            dt.degraded_seconds,
            dt.morph_restart_seconds,
            dt.morphs,
            dt.reconfigurations,
            dt.checkpoint_write_seconds,
            dt.checkpoints,
            dt.lost_work_seconds,
            dt.lost_minibatches
        );
        if dt.migrations > 0 {
            println!(
                "          {:.1}s live stage migration ({} migrations)",
                dt.migration_seconds, dt.migrations
            );
        }
        if dt.checkpoint_overlapped_seconds > 0.0 || dt.delta_checkpoints > 0 {
            println!(
                "          {:.1}s checkpoint writes hidden behind compute \
                 ({} delta checkpoints) — not priced",
                dt.checkpoint_overlapped_seconds, dt.delta_checkpoints
            );
        }
        if dt.recovery_replays > 0 {
            println!(
                "          {:.3}s control-plane recovery ({} WAL replays)",
                dt.recovery_replay_seconds, dt.recovery_replays
            );
        }
    }
    println!();
    print!("{}", report.stage_table());

    if let Some(out_path) = out {
        if let Err(e) = std::fs::write(&out_path, report.to_json()) {
            eprintln!("varuna-profile: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nreport written to {out_path}");
    }
    ExitCode::SUCCESS
}
