//! `varuna-profile` — turn a captured event stream into a time-attribution
//! report.
//!
//! Accepts either a `JsonlSink` capture (one `Event` per line) or a chrome
//! trace document written by `chrome_trace_json` (auto-detected by the
//! `traceEvents` key), prints a headline decomposition plus the per-stage
//! utilization table, and optionally writes the full `ProfileReport` JSON:
//!
//! ```text
//! varuna-profile <capture.{jsonl,json} | -> [--out report.json] [--top N]
//! ```
//!
//! With `--follow` the input is a *growing* JSONL capture: the file is
//! tailed incrementally through the streaming profiler (bounded memory,
//! byte-identical attribution), a one-line status is printed as the
//! stream grows, and `--serve ADDR` exposes the live report over HTTP
//! (`/report`, `/downtime`, `/counters`, `/healthz`):
//!
//! ```text
//! varuna-profile events.jsonl --follow --serve 127.0.0.1:7777
//! ```

use std::io::{BufRead, Read, Seek, SeekFrom};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use varuna_obs::{
    events_from_chrome_trace, events_from_jsonl, profile, spawn_http, Event, PartialReport,
    ProfileReport, StreamConfig, StreamingProfiler,
};

const USAGE: &str = "usage: varuna-profile <capture.{jsonl,json} | -> [options]
  --out FILE        write the full ProfileReport JSON to FILE on exit
  --top N           show only the N busiest stages in the utilization table
  --follow          tail a growing JSONL capture incrementally
  --poll-ms MS      polling interval in follow mode (default 200)
  --idle-exit SECS  in follow mode, exit after SECS with no new data (0 = never)
  --serve ADDR      in follow mode, serve the live report over HTTP on ADDR
  --window SECS     streaming reorder window (default: unbounded/exact)";

struct Opts {
    input: String,
    out: Option<String>,
    top: Option<usize>,
    follow: bool,
    poll_ms: u64,
    idle_exit: f64,
    serve: Option<String>,
    window: f64,
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn parse_opts(argv: &[String]) -> Result<Option<Opts>, ExitCode> {
    let mut input: Option<String> = None;
    let mut opts = Opts {
        input: String::new(),
        out: None,
        top: None,
        follow: false,
        poll_ms: 200,
        idle_exit: 0.0,
        serve: None,
        window: f64::INFINITY,
    };
    let mut i = 0;
    let take_value = |i: &mut usize| -> Result<String, ExitCode> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(usage)
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => opts.out = Some(take_value(&mut i)?),
            "--top" => {
                opts.top = Some(take_value(&mut i)?.parse().map_err(|_| usage())?);
            }
            "--follow" => opts.follow = true,
            "--poll-ms" => {
                opts.poll_ms = take_value(&mut i)?.parse().map_err(|_| usage())?;
            }
            "--idle-exit" => {
                opts.idle_exit = take_value(&mut i)?.parse().map_err(|_| usage())?;
            }
            "--serve" => opts.serve = Some(take_value(&mut i)?),
            "--window" => {
                opts.window = take_value(&mut i)?.parse().map_err(|_| usage())?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            arg if arg.starts_with("--") => return Err(usage()),
            arg => {
                if input.is_some() {
                    return Err(usage());
                }
                input = Some(arg.to_string());
            }
        }
        i += 1;
    }
    let Some(input) = input else {
        return Err(usage());
    };
    if opts.serve.is_some() && !opts.follow {
        eprintln!("varuna-profile: --serve requires --follow");
        return Err(ExitCode::from(2));
    }
    opts.input = input;
    Ok(Some(opts))
}

fn print_report(report: &ProfileReport, top: Option<usize>) {
    println!(
        "{} events, makespan {:.3}s, bubble fraction {:.4}",
        report.events, report.makespan, report.bubble_fraction
    );
    if let Some(cp) = &report.critical_path {
        println!(
            "critical path: {:.3}s over {} ops ({:.3}s compute, {:.3}s wait), bottleneck stage {}",
            cp.length, cp.ops, cp.compute_seconds, cp.wait_seconds, cp.bottleneck_stage
        );
    }
    let dt = &report.downtime;
    if dt.downtime_seconds() > 0.0 {
        println!(
            "downtime: {:.1}s degraded, {:.1}s morph restarts ({} morphs / {} reconfigs), \
             {:.1}s checkpoint writes ({}), {:.1}s lost work ({} minibatches)",
            dt.degraded_seconds,
            dt.morph_restart_seconds,
            dt.morphs,
            dt.reconfigurations,
            dt.checkpoint_write_seconds,
            dt.checkpoints,
            dt.lost_work_seconds,
            dt.lost_minibatches
        );
        if dt.migrations > 0 {
            println!(
                "          {:.1}s live stage migration ({} migrations)",
                dt.migration_seconds, dt.migrations
            );
        }
        if dt.checkpoint_overlapped_seconds > 0.0 || dt.delta_checkpoints > 0 {
            println!(
                "          {:.1}s checkpoint writes hidden behind compute \
                 ({} delta checkpoints) — not priced",
                dt.checkpoint_overlapped_seconds, dt.delta_checkpoints
            );
        }
        if dt.recovery_replays > 0 {
            println!(
                "          {:.3}s control-plane recovery ({} WAL replays)",
                dt.recovery_replay_seconds, dt.recovery_replays
            );
        }
    }
    println!();
    print!("{}", report.stage_table_top(top));
}

fn write_out(report: &ProfileReport, out: &Option<String>) -> Result<(), ExitCode> {
    if let Some(out_path) = out {
        if let Err(e) = std::fs::write(out_path, report.to_json()) {
            eprintln!("varuna-profile: cannot write {out_path}: {e}");
            return Err(ExitCode::FAILURE);
        }
        println!("\nreport written to {out_path}");
    }
    Ok(())
}

/// One-shot mode: read the whole capture (file or stdin), attribute
/// post-hoc, print, optionally write the JSON report.
fn run_oneshot(opts: &Opts) -> ExitCode {
    let (text, label) = if opts.input == "-" {
        let mut text = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("varuna-profile: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        (text, "<stdin>".to_string())
    } else {
        match std::fs::read_to_string(&opts.input) {
            Ok(t) => (t, opts.input.clone()),
            Err(e) => {
                eprintln!("varuna-profile: cannot read {}: {e}", opts.input);
                return ExitCode::FAILURE;
            }
        }
    };
    // A chrome trace is one JSON document with a `traceEvents` array; a
    // JsonlSink capture is one event object per line.
    let parsed = if text.contains("\"traceEvents\"") {
        events_from_chrome_trace(&text)
    } else {
        events_from_jsonl(&text)
    };
    let events = match parsed {
        Ok(events) => events,
        Err(e) => {
            eprintln!("varuna-profile: {label}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = profile(&events);
    print_report(&report, opts.top);
    if let Err(code) = write_out(&report, &opts.out) {
        return code;
    }
    ExitCode::SUCCESS
}

/// Shared live state between the tail loop and the HTTP threads.
struct Follow {
    profiler: StreamingProfiler,
    served: Arc<Mutex<PartialReport>>,
    lines: u64,
}

impl Follow {
    fn ingest(&mut self, chunk: &str) -> Result<usize, String> {
        let mut fresh = 0;
        for line in chunk.lines() {
            self.lines += 1;
            if line.trim().is_empty() {
                continue;
            }
            let event: Event =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e}", self.lines))?;
            self.profiler.observe(&event);
            fresh += 1;
        }
        if fresh > 0 {
            *self.served.lock().expect("serve lock") = self.profiler.snapshot();
        }
        Ok(fresh)
    }

    fn status(&self) -> String {
        let c = self.profiler.counters();
        format!(
            "{} events, makespan {:.3}s, resident {} entries{}",
            c.events,
            self.profiler.snapshot().makespan(),
            self.profiler.resident(),
            if c.violations() > 0 {
                format!(", {} attribution violations", c.violations())
            } else {
                String::new()
            }
        )
    }
}

/// Follow mode: tail the growing JSONL capture through the streaming
/// profiler. Only complete lines are consumed — a partially written
/// trailing line stays buffered until its newline arrives.
fn run_follow(opts: &Opts) -> ExitCode {
    let cfg = if opts.window.is_finite() {
        StreamConfig::windowed(opts.window, usize::MAX)
    } else {
        StreamConfig::default()
    };
    let mut follow = Follow {
        profiler: StreamingProfiler::new(cfg),
        served: Arc::new(Mutex::new(StreamingProfiler::new(cfg).snapshot())),
        lines: 0,
    };

    if let Some(addr) = &opts.serve {
        match spawn_http(addr, Arc::clone(&follow.served)) {
            Ok(bound) => {
                println!("serving on http://{bound}");
                use std::io::Write;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("varuna-profile: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.input == "-" {
        // Stdin follows itself: blocking reads until EOF.
        let stdin = std::io::stdin();
        let mut reader = stdin.lock();
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => {
                    if let Err(e) = follow.ingest(&line) {
                        eprintln!("varuna-profile: <stdin>: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                Err(e) => {
                    eprintln!("varuna-profile: cannot read stdin: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        let mut offset: u64 = 0;
        let mut tail = String::new();
        let mut last_growth = Instant::now();
        loop {
            let grew = match tail_chunk(&opts.input, &mut offset) {
                Ok(Some(chunk)) => {
                    tail.push_str(&chunk);
                    // Consume only complete lines; keep the partial tail.
                    let consumable = match tail.rfind('\n') {
                        Some(pos) => tail.drain(..=pos).collect::<String>(),
                        None => String::new(),
                    };
                    if consumable.is_empty() {
                        false
                    } else {
                        match follow.ingest(&consumable) {
                            Ok(fresh) => {
                                if fresh > 0 {
                                    println!("{}", follow.status());
                                }
                                fresh > 0
                            }
                            Err(e) => {
                                eprintln!("varuna-profile: {}: {e}", opts.input);
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                }
                Ok(None) => false,
                Err(e) => {
                    eprintln!("varuna-profile: cannot read {}: {e}", opts.input);
                    return ExitCode::FAILURE;
                }
            };
            if grew {
                last_growth = Instant::now();
            } else {
                if opts.idle_exit > 0.0
                    && last_growth.elapsed() >= Duration::from_secs_f64(opts.idle_exit)
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(opts.poll_ms.max(1)));
            }
        }
    }

    let report = follow.profiler.snapshot().into_report();
    println!();
    print_report(&report, opts.top);
    if let Err(code) = write_out(&report, &opts.out) {
        return code;
    }
    ExitCode::SUCCESS
}

/// Reads whatever the file has grown beyond `offset`. Returns `None`
/// when there is nothing new; resets to the start if the file shrank
/// (rotation/truncation).
fn tail_chunk(path: &str, offset: &mut u64) -> std::io::Result<Option<String>> {
    let mut f = match std::fs::File::open(path) {
        Ok(f) => f,
        // The capture may not exist yet when --follow starts first.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let len = f.metadata()?.len();
    if len < *offset {
        *offset = 0;
    }
    if len == *offset {
        return Ok(None);
    }
    f.seek(SeekFrom::Start(*offset))?;
    let mut buf = Vec::with_capacity((len - *offset) as usize);
    f.take(len - *offset).read_to_end(&mut buf)?;
    *offset += buf.len() as u64;
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&argv) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(code) => return code,
    };
    if opts.follow {
        run_follow(&opts)
    } else {
        run_oneshot(&opts)
    }
}
