//! The `BenchReport` schema emitted by the bench binaries.
//!
//! Every `BENCH_*.json` file produced by `varuna-bench` is one
//! [`BenchReport`]: a schema tag, the benchmark's identity and input
//! parameters, a flat map of headline numbers, and an optional full
//! [`MetricsRegistry`] snapshot. Keeping the
//! shape uniform lets downstream tooling diff runs without knowing each
//! figure's internals.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

use crate::metrics::MetricsRegistry;

/// Schema identifier stamped into every report.
pub const REPORT_SCHEMA: &str = "varuna-bench-report/v1";

/// One benchmark run's machine-readable result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`REPORT_SCHEMA`].
    pub schema: String,
    /// Benchmark name (e.g. `"fig8_morphing"`).
    pub bench: String,
    /// Input parameters (model size, GPU count, trace seed, ...).
    pub params: BTreeMap<String, f64>,
    /// Headline result numbers, keyed by metric name.
    pub summary: BTreeMap<String, f64>,
    /// Full metrics snapshot (`Value::Null` when not collected).
    pub metrics: Value,
}

impl BenchReport {
    /// An empty report for benchmark `bench`.
    pub fn new(bench: &str) -> Self {
        BenchReport {
            schema: REPORT_SCHEMA.to_string(),
            bench: bench.to_string(),
            params: BTreeMap::new(),
            summary: BTreeMap::new(),
            metrics: Value::Null,
        }
    }

    /// Adds an input parameter.
    pub fn param(mut self, name: &str, v: f64) -> Self {
        self.params.insert(name.to_string(), v);
        self
    }

    /// Adds a headline number.
    pub fn result(mut self, name: &str, v: f64) -> Self {
        self.summary.insert(name.to_string(), v);
        self
    }

    /// Attaches a full metrics snapshot.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> Self {
        self.metrics = metrics.snapshot_value();
        self
    }

    /// Whether the report carries the current schema tag.
    pub fn is_current_schema(&self) -> bool {
        self.schema == REPORT_SCHEMA
    }

    /// The report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Writes the report to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_keeps_schema() {
        let mut metrics = MetricsRegistry::new();
        metrics.add("morphs", 7);
        let report = BenchReport::new("fig8_morphing")
            .param("hours", 60.0)
            .param("target_gpus", 160.0)
            .result("total_spread", 4.8)
            .result("per_gpu_spread", 1.1)
            .with_metrics(&metrics);
        let json = report.to_json();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert!(back.is_current_schema());
        assert_eq!(back.summary["total_spread"], 4.8);
        assert_eq!(
            back.metrics.get("counters").and_then(|c| c.get("morphs")),
            Some(&Value::UInt(7))
        );
    }

    #[test]
    fn report_without_metrics_serializes_null() {
        let json = BenchReport::new("table5").to_json();
        assert!(json.contains("\"metrics\": null"));
        let v = serde_json::parse_value(&json).unwrap();
        assert_eq!(
            v.get("schema"),
            Some(&Value::Str(REPORT_SCHEMA.to_string()))
        );
    }
}
