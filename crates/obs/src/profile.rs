//! Post-hoc time attribution over an [`Event`] stream.
//!
//! [`profile`] consumes any capture of the event bus — an in-memory
//! [`VecSink`](crate::VecSink) buffer, a JSONL file, or an imported
//! chrome trace — and answers the question the paper's analysis sections
//! keep asking: *where did the time go?* Every GPU lane (one `(stage,
//! replica)` pair) gets its wall-clock decomposed into
//!
//! - **compute** — forward / recompute / backward durations from `OpEnd`,
//! - **send** — sender-blocked serialization from `SendBusy` (emitted
//!   only under blocking sends),
//! - **allreduce** — the per-stage data-parallel gradient reduction,
//! - **bubble** — idle gaps, classified as *warmup* (before the lane's
//!   first busy interval), *dependency stall* (between busy intervals),
//!   or *drain* (after the last busy interval, waiting for the rest of
//!   the pipeline and the sync tail).
//!
//! The components of every lane sum to the stream's makespan exactly (one
//! cursor sweep over the sorted busy intervals; overlaps are clipped), so
//! nothing is lost or double-counted — the property the proptest suite
//! pins. On top of the lanes sit a critical-path pass that names the
//! bottleneck stage, per-stage straggler scores (max/mean busy over
//! replicas), and — for manager / spot-trace streams — downtime
//! accounting that prices morph restarts, checkpoint writes, degraded
//! pauses, and lost work (see [`crate::attrib`]).

use serde::{Deserialize, Serialize};

use crate::attrib::{self, CriticalPath, DowntimeProfile};
use crate::event::{Event, EventKind};

/// Schema tag stamped into every [`ProfileReport`].
pub const PROFILE_SCHEMA: &str = "varuna-profile/v1";

/// One op interval rebuilt from an `OpEnd` event.
///
/// This is the crate-graph-bottom twin of `varuna_sched::op::OpSpan`: the
/// op is the one-letter code (`'F'`/`'R'`/`'B'`) because `varuna-obs`
/// sits below the scheduling layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileSpan {
    /// Pipeline stage.
    pub stage: usize,
    /// Data-parallel replica.
    pub replica: usize,
    /// Op code: `'F'`, `'R'`, or `'B'`.
    pub op: char,
    /// Micro-batch index.
    pub micro: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

impl ProfileSpan {
    /// Duration of the span, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Extracts op spans from a stream, in event-arrival order.
///
/// Only `OpEnd` events are consulted (they carry the full interval;
/// `OpStart` is redundant and may have been filtered out, as the chrome
/// exporter does). The order matches what a
/// `varuna_exec::observe::SpanCollector` attached to the same bus would
/// have produced — byte-identical spans, which the fig7 pinning test
/// relies on.
pub fn spans(events: &[Event]) -> Vec<ProfileSpan> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::OpEnd {
                stage,
                replica,
                op,
                micro,
                start,
            } => Some(ProfileSpan {
                stage: *stage,
                replica: *replica,
                op: *op,
                micro: *micro,
                start: *start,
                end: e.t_sim,
            }),
            _ => None,
        })
        .collect()
}

/// Wall-clock decomposition of one GPU lane (`(stage, replica)`).
///
/// `warmup + forward + recompute + backward + send + allreduce + stall +
/// drain` equals the report's makespan exactly: the lane's time is fully
/// attributed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneProfile {
    /// Pipeline stage.
    pub stage: usize,
    /// Data-parallel replica.
    pub replica: usize,
    /// Seconds in forward ops.
    pub forward: f64,
    /// Seconds in recompute ops.
    pub recompute: f64,
    /// Seconds in backward ops.
    pub backward: f64,
    /// Seconds the GPU was blocked serializing sends (blocking sends
    /// only; zero when communication overlaps compute).
    pub send: f64,
    /// Seconds in the data-parallel gradient allreduce.
    pub allreduce: f64,
    /// Idle seconds before the lane's first busy interval (pipeline
    /// fill).
    pub warmup: f64,
    /// Idle seconds between busy intervals (dependency stalls: waiting
    /// for activations, gradients, or jittered neighbors).
    pub stall: f64,
    /// Idle seconds after the lane's last busy interval (pipeline drain
    /// plus the sync tail of other stages).
    pub drain: f64,
    /// Ops executed on this lane.
    pub ops: usize,
}

impl LaneProfile {
    /// Compute seconds (forward + recompute + backward).
    pub fn compute(&self) -> f64 {
        self.forward + self.recompute + self.backward
    }

    /// Busy seconds (compute + send + allreduce).
    pub fn busy(&self) -> f64 {
        self.compute() + self.send + self.allreduce
    }

    /// Bubble seconds (warmup + stall + drain).
    pub fn bubble(&self) -> f64 {
        self.warmup + self.stall + self.drain
    }

    /// All components summed — equals the report makespan by
    /// construction (modulo float rounding).
    pub fn total(&self) -> f64 {
        self.busy() + self.bubble()
    }
}

/// Per-stage aggregation over the stage's replica lanes.
///
/// Time fields are means over the stage's lanes (per-GPU seconds), so
/// the sum-to-makespan identity survives aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Pipeline stage.
    pub stage: usize,
    /// Lanes (replicas) observed for this stage.
    pub replicas: usize,
    /// Mean compute seconds per lane.
    pub compute: f64,
    /// Mean send-blocked seconds per lane.
    pub send: f64,
    /// Mean allreduce seconds per lane.
    pub allreduce: f64,
    /// Mean warmup seconds per lane.
    pub warmup: f64,
    /// Mean dependency-stall seconds per lane.
    pub stall: f64,
    /// Mean drain seconds per lane.
    pub drain: f64,
    /// Seconds of outbound inter-stage transfer attributed to this stage
    /// (informational: transfers overlap compute unless sends block, so
    /// this is *not* part of the sum-to-makespan identity).
    pub transfer_out: f64,
    /// Mean busy seconds over the stage's lanes.
    pub busy_mean: f64,
    /// Max busy seconds over the stage's lanes.
    pub busy_max: f64,
    /// Straggler score: `busy_max / busy_mean` (1.0 = perfectly
    /// balanced replicas; 0.0 when the stage never ran).
    pub straggler: f64,
    /// `busy_mean / makespan` (0.0 for an empty stream).
    pub utilization: f64,
}

impl StageProfile {
    /// Mean bubble seconds per lane.
    pub fn bubble(&self) -> f64 {
        self.warmup + self.stall + self.drain
    }
}

/// The full time-attribution report for one event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Schema tag ([`PROFILE_SCHEMA`]).
    pub schema: String,
    /// Events consumed.
    pub events: usize,
    /// Stream makespan: the latest time touched by any event (op end,
    /// allreduce end, send end, or control-plane timestamp), seconds.
    pub makespan: f64,
    /// End of the pipeline phase: the last `OpEnd`, seconds (0 for
    /// streams with no ops, e.g. a pure manager replay).
    pub pipeline_end: f64,
    /// Per-lane decompositions, sorted by `(stage, replica)`.
    pub lanes: Vec<LaneProfile>,
    /// Per-stage aggregates, sorted by stage.
    pub stages: Vec<StageProfile>,
    /// Mean bubble fraction over all lanes:
    /// `sum(lane bubble) / (lanes * makespan)`.
    pub bubble_fraction: f64,
    /// Total inter-stage transfer seconds observed (informational; see
    /// [`StageProfile::transfer_out`]).
    pub transfer_seconds: f64,
    /// Critical-path pass over the op dependency graph (`None` when the
    /// stream has no ops).
    pub critical_path: Option<CriticalPath>,
    /// Downtime accounting over manager / cluster events.
    pub downtime: DowntimeProfile,
}

impl ProfileReport {
    /// The critical path's bottleneck stage, if any ops were profiled.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.critical_path.as_ref().map(|c| c.bottleneck_stage)
    }

    /// Pretty JSON rendering (stable field order; what `varuna-profile`
    /// writes and the fig7 golden test pins).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("reports always serialize");
        s.push('\n');
        s
    }

    /// A per-stage utilization summary table (the `varuna-profile` CLI
    /// output), aligned, one row per stage.
    pub fn stage_table(&self) -> String {
        self.stage_table_top(None)
    }

    /// Like [`ProfileReport::stage_table`] but truncated to the `top`
    /// busiest stages (by `busy_mean`) when `top` is `Some` — the CLI's
    /// `--top N`. Rows keep stage order; a trailing line notes how many
    /// stages were elided.
    pub fn stage_table_top(&self, top: Option<usize>) -> String {
        let keep: Vec<&StageProfile> = match top {
            Some(n) if n < self.stages.len() => {
                let mut by_busy: Vec<&StageProfile> = self.stages.iter().collect();
                by_busy.sort_by(|a, b| {
                    b.busy_mean
                        .total_cmp(&a.busy_mean)
                        .then(a.stage.cmp(&b.stage))
                });
                let mut keep: Vec<&StageProfile> = by_busy.into_iter().take(n).collect();
                keep.sort_by_key(|s| s.stage);
                keep
            }
            _ => self.stages.iter().collect(),
        };
        let elided = self.stages.len() - keep.len();
        let mut out = String::new();
        out.push_str(&format!(
            "{:>5} {:>4} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>9}\n",
            "stage",
            "reps",
            "compute_s",
            "send_s",
            "allred_s",
            "warmup_s",
            "stall_s",
            "drain_s",
            "util",
            "straggler"
        ));
        for s in keep {
            out.push_str(&format!(
                "{:>5} {:>4} {:>12.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>7.1}% {:>9.3}\n",
                s.stage,
                s.replicas,
                s.compute,
                s.send,
                s.allreduce,
                s.warmup,
                s.stall,
                s.drain,
                s.utilization * 100.0,
                s.straggler
            ));
        }
        if elided > 0 {
            out.push_str(&format!("... {elided} more stage(s) elided\n"));
        }
        out
    }
}

/// What a busy interval was doing, for attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BusyKind {
    /// Forward op compute.
    Forward,
    /// Recompute (activation rematerialization).
    Recompute,
    /// Backward op compute.
    Backward,
    /// Sender-blocked serialization.
    Send,
    /// Data-parallel gradient allreduce.
    Allreduce,
}

/// Incremental cursor sweep over one lane's busy intervals — the single
/// implementation of the lane decomposition, shared by the post-hoc
/// [`profile`] and the streaming profiler so both produce byte-identical
/// `f64`s.
///
/// Intervals must be pushed in `(start, end)` order (the post-hoc path
/// sorts first; the streaming path drains its pending buffer in key
/// order). The post-hoc path clips each interval to the (already-known)
/// makespan; the streaming path passes `f64::INFINITY` — exact all the
/// same, because every interval's end is itself a makespan candidate, so
/// `end.min(makespan) == end` whenever the interval is well-formed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LaneFold {
    /// Seconds attributed to forward ops so far.
    pub forward: f64,
    /// Seconds attributed to recompute ops so far.
    pub recompute: f64,
    /// Seconds attributed to backward ops so far.
    pub backward: f64,
    /// Seconds attributed to blocked sends so far.
    pub send: f64,
    /// Seconds attributed to allreduces so far.
    pub allreduce: f64,
    /// Idle seconds before the first busy interval.
    pub warmup: f64,
    /// Idle seconds between busy intervals.
    pub stall: f64,
    /// Sweep cursor: the latest attributed instant.
    pub cursor: f64,
    /// True until the first interval is pushed (gap → warmup).
    pub first: bool,
    /// Intervals pushed (used by the streaming merge to pick between
    /// redundant synthetic-lane copies).
    pub pushes: usize,
}

impl Default for LaneFold {
    fn default() -> Self {
        LaneFold {
            forward: 0.0,
            recompute: 0.0,
            backward: 0.0,
            send: 0.0,
            allreduce: 0.0,
            warmup: 0.0,
            stall: 0.0,
            cursor: 0.0,
            first: true,
            pushes: 0,
        }
    }
}

impl LaneFold {
    /// Folds the next busy interval (in sorted order), clipping its end
    /// to `clip` and its start to the cursor so overlaps never
    /// double-count.
    pub fn push_clipped(&mut self, start: f64, end: f64, kind: BusyKind, clip: f64) {
        let gap = start - self.cursor;
        if gap > 0.0 {
            if self.first {
                self.warmup += gap;
            } else {
                self.stall += gap;
            }
            self.cursor = start;
        }
        self.first = false;
        let contrib = end.min(clip) - start.max(self.cursor);
        if contrib > 0.0 {
            match kind {
                BusyKind::Forward => self.forward += contrib,
                BusyKind::Recompute => self.recompute += contrib,
                BusyKind::Backward => self.backward += contrib,
                BusyKind::Send => self.send += contrib,
                BusyKind::Allreduce => self.allreduce += contrib,
            }
        }
        self.cursor = self.cursor.max(end.min(clip));
        self.pushes += 1;
    }

    /// Closes the sweep at `makespan`: everything after the cursor is
    /// drain.
    pub fn finish(&self, stage: usize, replica: usize, ops: usize, makespan: f64) -> LaneProfile {
        LaneProfile {
            stage,
            replica,
            forward: self.forward,
            recompute: self.recompute,
            backward: self.backward,
            send: self.send,
            allreduce: self.allreduce,
            warmup: self.warmup,
            stall: self.stall,
            drain: (makespan - self.cursor).max(0.0),
            ops,
        }
    }
}

/// Assembles finished lanes into a [`ProfileReport`]: per-stage
/// aggregation, straggler scores, and the bubble fraction. One
/// implementation shared by [`profile`] and the streaming finish so the
/// aggregation sums run in the same (lane-sorted) order on both paths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_report(
    events: usize,
    makespan: f64,
    pipeline_end: f64,
    lanes: Vec<LaneProfile>,
    transfer_seconds: f64,
    transfer_out: &std::collections::BTreeMap<usize, f64>,
    critical_path: Option<CriticalPath>,
    downtime: DowntimeProfile,
) -> ProfileReport {
    let mut stages: Vec<StageProfile> = Vec::new();
    let mut i = 0;
    while i < lanes.len() {
        let stage = lanes[i].stage;
        let mut j = i;
        while j < lanes.len() && lanes[j].stage == stage {
            j += 1;
        }
        let group = &lanes[i..j];
        let n = group.len() as f64;
        let busy_mean = group.iter().map(|l| l.busy()).sum::<f64>() / n;
        let busy_max = group.iter().map(|l| l.busy()).fold(0.0f64, f64::max);
        stages.push(StageProfile {
            stage,
            replicas: group.len(),
            compute: group.iter().map(|l| l.compute()).sum::<f64>() / n,
            send: group.iter().map(|l| l.send).sum::<f64>() / n,
            allreduce: group.iter().map(|l| l.allreduce).sum::<f64>() / n,
            warmup: group.iter().map(|l| l.warmup).sum::<f64>() / n,
            stall: group.iter().map(|l| l.stall).sum::<f64>() / n,
            drain: group.iter().map(|l| l.drain).sum::<f64>() / n,
            transfer_out: transfer_out.get(&stage).copied().unwrap_or(0.0),
            busy_mean,
            busy_max,
            straggler: if busy_mean > 0.0 {
                busy_max / busy_mean
            } else {
                0.0
            },
            utilization: if makespan > 0.0 {
                busy_mean / makespan
            } else {
                0.0
            },
        });
        i = j;
    }

    let bubble_fraction = if !lanes.is_empty() && makespan > 0.0 {
        lanes.iter().map(|l| l.bubble()).sum::<f64>() / (lanes.len() as f64 * makespan)
    } else {
        0.0
    };

    ProfileReport {
        schema: PROFILE_SCHEMA.to_string(),
        events,
        makespan,
        pipeline_end,
        lanes,
        stages,
        bubble_fraction,
        transfer_seconds,
        critical_path,
        downtime,
    }
}

#[derive(Clone, Copy)]
struct BusyInterval {
    start: f64,
    end: f64,
    kind: BusyKind,
}

/// Profiles an event stream into a [`ProfileReport`].
///
/// The stream may come from any sink — the report is a pure function of
/// the event *contents*, not their order (intervals are re-sorted per
/// lane), so a `VecSink` capture and its JSONL round trip profile
/// identically.
pub fn profile(events: &[Event]) -> ProfileReport {
    use std::collections::BTreeMap;

    // Makespan: the latest instant any event touches.
    let mut makespan: f64 = 0.0;
    for e in events {
        let end = match &e.kind {
            EventKind::SendBusy { seconds, .. } => e.t_sim + seconds,
            EventKind::Transfer { seconds, .. } => e.t_sim + seconds,
            _ => e.t_sim,
        };
        if end.is_finite() {
            makespan = makespan.max(end);
        }
    }

    // Per-lane busy intervals.
    let mut lanes_map: BTreeMap<(usize, usize), Vec<BusyInterval>> = BTreeMap::new();
    let mut lane_ops: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut pipeline_end: f64 = 0.0;
    let mut transfer_seconds = 0.0;
    let mut transfer_out: BTreeMap<usize, f64> = BTreeMap::new();
    // Allreduces are per-stage events (no replica): remember them and
    // attach to every lane of the stage once all lanes are known.
    let mut allreduces: Vec<(usize, f64, f64)> = Vec::new();

    for e in events {
        match &e.kind {
            EventKind::OpEnd {
                stage,
                replica,
                op,
                start,
                ..
            } => {
                let kind = match op {
                    'F' => BusyKind::Forward,
                    'R' => BusyKind::Recompute,
                    _ => BusyKind::Backward,
                };
                lanes_map
                    .entry((*stage, *replica))
                    .or_default()
                    .push(BusyInterval {
                        start: start.max(0.0),
                        end: e.t_sim,
                        kind,
                    });
                *lane_ops.entry((*stage, *replica)).or_default() += 1;
                pipeline_end = pipeline_end.max(e.t_sim);
            }
            EventKind::SendBusy {
                stage,
                replica,
                seconds,
                ..
            } => {
                lanes_map
                    .entry((*stage, *replica))
                    .or_default()
                    .push(BusyInterval {
                        start: e.t_sim.max(0.0),
                        end: e.t_sim + seconds,
                        kind: BusyKind::Send,
                    });
            }
            EventKind::Allreduce { stage, seconds, .. } => {
                allreduces.push((*stage, (e.t_sim - seconds).max(0.0), e.t_sim));
            }
            EventKind::Transfer {
                from_stage,
                seconds,
                ..
            } => {
                transfer_seconds += seconds;
                *transfer_out.entry(*from_stage).or_default() += seconds;
            }
            _ => {}
        }
    }

    // Attach each stage's allreduce to every lane of that stage (all
    // replicas participate simultaneously); a stage with no op lanes at
    // all gets a synthetic replica-0 lane so the time is still visible.
    for (stage, start, end) in allreduces {
        let lane_keys: Vec<(usize, usize)> = lanes_map
            .range((stage, 0)..(stage + 1, 0))
            .map(|(k, _)| *k)
            .collect();
        let targets = if lane_keys.is_empty() {
            vec![(stage, 0)]
        } else {
            lane_keys
        };
        for key in targets {
            lanes_map.entry(key).or_default().push(BusyInterval {
                start,
                end,
                kind: BusyKind::Allreduce,
            });
        }
    }

    // Decompose each lane over [0, makespan]: one cursor sweep over the
    // sorted intervals, clipping overlaps, classifying gaps.
    let mut lanes: Vec<LaneProfile> = Vec::with_capacity(lanes_map.len());
    for ((stage, replica), mut intervals) in lanes_map {
        intervals.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.end.total_cmp(&b.end)));
        let mut fold = LaneFold::default();
        for iv in intervals {
            fold.push_clipped(iv.start, iv.end, iv.kind, makespan);
        }
        let ops = lane_ops.get(&(stage, replica)).copied().unwrap_or(0);
        lanes.push(fold.finish(stage, replica, ops, makespan));
    }

    let op_spans = spans(events);
    assemble_report(
        events.len(),
        makespan,
        pipeline_end,
        lanes,
        transfer_seconds,
        &transfer_out,
        attrib::critical_path(&op_spans),
        attrib::downtime(events, makespan),
    )
}

/// Parses a JSONL capture (one `Event` per line, as written by
/// [`JsonlSink`](crate::JsonlSink)) back into events.
///
/// # Errors
///
/// Returns the 1-based line number and parse error of the first bad line.
pub fn events_from_jsonl(text: &str) -> Result<Vec<Event>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let e: Event =
            serde_json::from_str(line).map_err(|err| format!("line {}: {err:?}", i + 1))?;
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(stage: usize, replica: usize, op: char, micro: usize, start: f64, end: f64) -> Event {
        Event::exec(
            end,
            EventKind::OpEnd {
                stage,
                replica,
                op,
                micro,
                start,
            },
        )
    }

    #[test]
    fn empty_stream_profiles_to_zeroes() {
        let r = profile(&[]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.pipeline_end, 0.0);
        assert!(r.lanes.is_empty());
        assert!(r.stages.is_empty());
        assert_eq!(r.bubble_fraction, 0.0);
        assert!(r.critical_path.is_none());
        assert_eq!(r.schema, PROFILE_SCHEMA);
    }

    #[test]
    fn lane_components_sum_to_makespan() {
        // Two stages, one replica: a classic 2-deep pipeline with gaps.
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            op(0, 0, 'F', 1, 1.0, 2.0),
            op(1, 0, 'F', 0, 1.5, 2.5),
            op(1, 0, 'B', 0, 2.5, 4.5),
            op(0, 0, 'B', 0, 5.0, 7.0),
        ];
        let r = profile(&events);
        assert_eq!(r.makespan, 7.0);
        assert_eq!(r.lanes.len(), 2);
        for lane in &r.lanes {
            assert!(
                (lane.total() - r.makespan).abs() < 1e-9,
                "lane ({}, {}) sums to {} not {}",
                lane.stage,
                lane.replica,
                lane.total(),
                r.makespan
            );
        }
        // Stage 0: F 2s, B 2s, stall 3s (2..5), drain 0, warmup 0.
        let s0 = &r.lanes[0];
        assert_eq!(s0.forward, 2.0);
        assert_eq!(s0.backward, 2.0);
        assert_eq!(s0.warmup, 0.0);
        assert_eq!(s0.stall, 3.0);
        assert_eq!(s0.drain, 0.0);
        // Stage 1: warmup 1.5, F 1s, B 2s, drain 2.5 (4.5..7).
        let s1 = &r.lanes[1];
        assert_eq!(s1.warmup, 1.5);
        assert_eq!(s1.stall, 0.0);
        assert_eq!(s1.drain, 2.5);
    }

    #[test]
    fn allreduce_and_sends_are_attributed() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            Event::exec(
                1.0,
                EventKind::SendBusy {
                    stage: 0,
                    replica: 0,
                    micro: 0,
                    seconds: 0.5,
                },
            ),
            op(0, 0, 'B', 0, 2.0, 3.0),
            Event::exec(
                4.0,
                EventKind::Allreduce {
                    stage: 0,
                    bytes: 1e9,
                    ring: 2,
                    seconds: 0.75,
                },
            ),
        ];
        let r = profile(&events);
        assert_eq!(r.makespan, 4.0);
        let lane = &r.lanes[0];
        assert_eq!(lane.send, 0.5);
        assert_eq!(lane.allreduce, 0.75);
        // Gaps: 1.5..2.0 stall, 3.0..3.25 stall; no drain (allreduce
        // ends at makespan).
        assert!((lane.stall - 0.75).abs() < 1e-9, "stall {}", lane.stall);
        assert_eq!(lane.drain, 0.0);
        assert!((lane.total() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_intervals_are_clipped_not_double_counted() {
        // A send that overlaps the allreduce window: attribution clips.
        let events = vec![
            op(1, 0, 'B', 0, 0.0, 1.0),
            Event::exec(
                1.0,
                EventKind::SendBusy {
                    stage: 1,
                    replica: 0,
                    micro: 0,
                    seconds: 1.0,
                },
            ),
            Event::exec(
                2.5,
                EventKind::Allreduce {
                    stage: 1,
                    bytes: 1e9,
                    ring: 2,
                    seconds: 1.5, // starts at 1.0, overlapping the send
                },
            ),
        ];
        let r = profile(&events);
        let lane = &r.lanes[0];
        assert!((lane.total() - r.makespan).abs() < 1e-9);
        assert_eq!(lane.send, 1.0);
        assert!((lane.allreduce - 0.5).abs() < 1e-9, "clipped to 2.0..2.5");
    }

    #[test]
    fn straggler_score_flags_the_slow_replica() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.0),
            op(0, 1, 'F', 0, 0.0, 3.0), // replica 1 is 3x slower
        ];
        let r = profile(&events);
        assert_eq!(r.stages.len(), 1);
        let s = &r.stages[0];
        assert_eq!(s.replicas, 2);
        assert!((s.busy_mean - 2.0).abs() < 1e-9);
        assert!((s.busy_max - 3.0).abs() < 1e-9);
        assert!((s.straggler - 1.5).abs() < 1e-9);
    }

    #[test]
    fn spans_match_arrival_order() {
        let events = vec![
            op(1, 0, 'F', 1, 1.0, 2.0),
            op(0, 0, 'F', 0, 0.0, 1.0), // out of time order on purpose
        ];
        let s = spans(&events);
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].stage, s[0].micro), (1, 1));
        assert_eq!((s[1].stage, s[1].micro), (0, 0));
    }

    #[test]
    fn jsonl_round_trip_profiles_identically() {
        let events = vec![
            op(0, 0, 'F', 0, 0.0, 1.25),
            op(0, 0, 'B', 0, 1.25, 3.5),
            Event::exec(
                4.0,
                EventKind::Allreduce {
                    stage: 0,
                    bytes: 0.123456789e9,
                    ring: 4,
                    seconds: 0.5,
                },
            ),
        ];
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let back = events_from_jsonl(&jsonl).unwrap();
        assert_eq!(profile(&events), profile(&back));
    }

    #[test]
    fn bad_jsonl_reports_the_line() {
        let err = events_from_jsonl("{\"nope\": 1}").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn stage_table_has_one_row_per_stage() {
        let events = vec![op(0, 0, 'F', 0, 0.0, 1.0), op(1, 0, 'F', 0, 1.0, 2.0)];
        let table = profile(&events).stage_table();
        assert_eq!(table.lines().count(), 3, "header + 2 stages:\n{table}");
        assert!(table.contains("straggler"));
    }
}
