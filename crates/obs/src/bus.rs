//! The event bus and its pluggable sinks.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::event::{Event, EventKind};

/// A consumer of the event stream.
///
/// Sinks own no thread and see events synchronously, in emission order.
/// A sink that reports `enabled() == false` never receives events and,
/// when no enabled sink is attached, producers skip constructing payloads
/// entirely (see [`EventBus::emit_with`]).
pub trait EventSink {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Whether this sink wants events at all. [`NullSink`] returns
    /// `false`, letting a wired-but-silent bus cost nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Fans events out to the attached sinks.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn EventSink>>,
}

impl EventBus {
    /// An empty (inert) bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// A bus with one sink attached.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        let mut bus = EventBus::new();
        bus.add_sink(sink);
        bus
    }

    /// Attaches a sink.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Whether any attached sink wants events. Producers use this (via
    /// [`EventBus::emit_with`]) to skip payload construction on inert
    /// buses — the emulator's hot loop depends on it.
    pub fn is_active(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    /// Delivers an already-built event to every enabled sink.
    pub fn emit(&mut self, event: Event) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.record(&event);
            }
        }
    }

    /// Builds the event lazily and delivers it — the closure never runs
    /// when no enabled sink is attached.
    pub fn emit_with(&mut self, build: impl FnOnce() -> Event) {
        if self.is_active() {
            self.emit(build());
        }
    }

    /// Flushes every sink.
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Discards every event while keeping the bus wired. Reports
/// `enabled() == false`, so producers skip even building payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers every event in memory behind a shared handle: clone the sink
/// before boxing it into the bus, then read the events back through the
/// clone.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
    }

    /// Clones the buffered events without draining.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// A flight recorder: keeps only the newest `capacity` events. Shares its
/// buffer the same way [`VecSink`] does.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    events: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring buffer needs room for one event");
        RingBufferSink {
            events: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// Number of buffered events (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The surviving (newest) events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("sink lock")
            .iter()
            .cloned()
            .collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        let mut q = self.events.lock().expect("sink lock");
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// Streams events as JSON Lines — one `Event` object per line — to any
/// writer.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consumes the sink, flushing and returning the writer.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        // I/O failures surface on flush; dropping mid-stream events keeps
        // the producer's hot path free of Result plumbing.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Where [`shard_route`] sends an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRoute {
    /// Deliver to exactly one shard.
    One(usize),
    /// Deliver to every shard (per-stage allreduces: all of a stage's
    /// replica lanes participate, and the lanes of one stage may be
    /// spread across shards). Exactly one shard — [`allreduce_owner`] —
    /// *owns* the event for counting; the rest see a ghost copy.
    Broadcast,
}

/// The canonical event → shard routing the streaming profiler's
/// byte-identity proof rests on.
///
/// Data-plane events go to their replica's shard (`replica % shards`),
/// which keeps every per-`(stage, replica)` lane — and every critical-path
/// dependency, all of which are replica-local — on a single shard.
/// Everything else (control-plane events and transfers, whose profile
/// contributions are order-sensitive `f64` sums) goes to shard 0, so
/// those sums accumulate on one shard in arrival order and merging only
/// ever adds exact zeros from the others.
pub fn shard_route(event: &Event, shards: usize) -> ShardRoute {
    debug_assert!(shards > 0, "routing needs at least one shard");
    match &event.kind {
        EventKind::OpStart { replica, .. }
        | EventKind::OpEnd { replica, .. }
        | EventKind::SendBusy { replica, .. } => ShardRoute::One(replica % shards),
        EventKind::Allreduce { .. } => ShardRoute::Broadcast,
        _ => ShardRoute::One(0),
    }
}

/// The shard that *owns* (counts) a broadcast allreduce for `stage`.
pub fn allreduce_owner(stage: usize, shards: usize) -> usize {
    debug_assert!(shards > 0, "routing needs at least one shard");
    stage % shards
}

/// What a [`ShardedSink`] does when a shard's channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the producer until the shard drains — lossless
    /// backpressure; the profile stays exact.
    Block,
    /// Drop the newest event and count it — the producer never stalls;
    /// [`ShardedSink::dropped`] says exactly how much the profile is
    /// missing.
    DropNewest,
}

enum ShardMsg {
    Event(Event),
    Flush(mpsc::Sender<()>),
}

/// Fans events out to per-shard worker threads over bounded channels —
/// the async sink layer that keeps slow consumers (profilers, disk
/// writers) off the emulator's hot path.
///
/// Routing follows [`shard_route`]: data-plane events go to their
/// replica's shard, allreduces broadcast to every shard, everything else
/// to shard 0. Overflow is never silent: the policy either blocks or
/// drops-and-counts. [`EventSink::flush`] is a barrier — it returns only
/// after every shard has drained its queue and flushed its inner sink.
/// Dropping the `ShardedSink` closes the channels and joins the workers.
pub struct ShardedSink {
    txs: Vec<SyncSender<ShardMsg>>,
    workers: Vec<JoinHandle<()>>,
    policy: OverflowPolicy,
    dropped: Arc<AtomicU64>,
    forwarded: u64,
}

impl ShardedSink {
    /// Spawns one worker thread per inner sink, each behind a bounded
    /// channel of `capacity` messages.
    pub fn new(
        sinks: Vec<Box<dyn EventSink + Send>>,
        capacity: usize,
        policy: OverflowPolicy,
    ) -> Self {
        assert!(!sinks.is_empty(), "a sharded sink needs at least one shard");
        assert!(capacity > 0, "a sharded sink needs channel room");
        let mut txs = Vec::with_capacity(sinks.len());
        let mut workers = Vec::with_capacity(sinks.len());
        for mut sink in sinks {
            let (tx, rx): (SyncSender<ShardMsg>, Receiver<ShardMsg>) = mpsc::sync_channel(capacity);
            txs.push(tx);
            workers.push(std::thread::spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ShardMsg::Event(e) => sink.record(&e),
                        ShardMsg::Flush(ack) => {
                            sink.flush();
                            drop(ack); // hang-up is the ack
                        }
                    }
                }
                sink.flush();
            }));
        }
        ShardedSink {
            txs,
            workers,
            policy,
            dropped: Arc::new(AtomicU64::new(0)),
            forwarded: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Events dropped on full channels (always 0 under
    /// [`OverflowPolicy::Block`]).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events successfully handed to a shard (broadcasts count once per
    /// receiving shard).
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn send_to(&mut self, shard: usize, event: &Event) {
        match self.policy {
            OverflowPolicy::Block => {
                if self.txs[shard].send(ShardMsg::Event(event.clone())).is_ok() {
                    self.forwarded += 1;
                }
            }
            OverflowPolicy::DropNewest => {
                match self.txs[shard].try_send(ShardMsg::Event(event.clone())) {
                    Ok(()) => self.forwarded += 1,
                    Err(TrySendError::Full(_)) => {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
        }
    }
}

impl EventSink for ShardedSink {
    fn record(&mut self, event: &Event) {
        match shard_route(event, self.txs.len()) {
            ShardRoute::One(k) => self.send_to(k, event),
            ShardRoute::Broadcast => {
                for k in 0..self.txs.len() {
                    self.send_to(k, event);
                }
            }
        }
    }

    fn flush(&mut self) {
        // Barrier: one ack channel per shard; a worker signals by
        // dropping its sender after flushing its inner sink.
        let mut acks = Vec::with_capacity(self.txs.len());
        for tx in &self.txs {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(ShardMsg::Flush(ack_tx)).is_ok() {
                acks.push(ack_rx);
            }
        }
        for ack in acks {
            let _ = ack.recv(); // Err(hang-up) IS the signal
        }
    }
}

impl Drop for ShardedSink {
    fn drop(&mut self) {
        self.txs.clear(); // hang up every channel
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, vm: u64) -> Event {
        Event::cluster(t, EventKind::Preemption { vm })
    }

    #[test]
    fn empty_bus_is_inert_and_skips_payload_construction() {
        let mut bus = EventBus::new();
        assert!(!bus.is_active());
        bus.emit_with(|| panic!("payload must not be built on an inert bus"));
    }

    #[test]
    fn null_sink_keeps_the_bus_inert() {
        let mut bus = EventBus::with_sink(Box::new(NullSink));
        assert!(!bus.is_active());
        bus.emit_with(|| panic!("payload must not be built for NullSink"));
        // Direct emit is also harmless.
        bus.emit(ev(0.0, 1));
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        assert!(bus.is_active());
        for i in 0..5 {
            bus.emit(ev(i as f64, i));
        }
        let events = sink.take();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].t_sim < w[1].t_sim));
        assert!(sink.is_empty(), "take drains the buffer");
    }

    #[test]
    fn ring_buffer_keeps_only_the_newest() {
        let sink = RingBufferSink::new(3);
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        for i in 0..10u64 {
            bus.emit(ev(i as f64, i));
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 3);
        let vms: Vec<f64> = events.iter().map(|e| e.t_sim).collect();
        assert_eq!(vms, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1.0, 7));
        sink.record(&ev(2.0, 8));
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde_json::from_str(line).unwrap();
            assert!(matches!(back.kind, EventKind::Preemption { .. }));
        }
    }

    #[test]
    fn multiple_sinks_all_receive() {
        let a = VecSink::new();
        let b = RingBufferSink::new(2);
        let mut bus = EventBus::new();
        bus.add_sink(Box::new(a.clone()));
        bus.add_sink(Box::new(b.clone()));
        bus.add_sink(Box::new(NullSink));
        for i in 0..4u64 {
            bus.emit_with(|| ev(i as f64, i));
        }
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
    }

    fn op_end(stage: usize, replica: usize, micro: usize, start: f64, end: f64) -> Event {
        Event::exec(
            end,
            EventKind::OpEnd {
                stage,
                replica,
                op: 'F',
                micro,
                start,
            },
        )
    }

    #[test]
    fn canonical_routing_keeps_lanes_and_sums_local() {
        let e = op_end(3, 5, 0, 0.0, 1.0);
        assert_eq!(shard_route(&e, 4), ShardRoute::One(1), "replica % shards");
        let ar = Event::exec(
            1.0,
            EventKind::Allreduce {
                stage: 2,
                bytes: 1.0,
                ring: 2,
                seconds: 0.5,
            },
        );
        assert_eq!(shard_route(&ar, 4), ShardRoute::Broadcast);
        assert_eq!(allreduce_owner(2, 4), 2);
        assert_eq!(
            shard_route(&ev(2.0, 1), 4),
            ShardRoute::One(0),
            "control -> shard 0"
        );
    }

    #[test]
    fn sharded_sink_fans_out_by_replica_and_broadcasts_allreduces() {
        let shards: Vec<VecSink> = (0..2).map(|_| VecSink::new()).collect();
        let boxed: Vec<Box<dyn EventSink + Send>> = shards
            .iter()
            .map(|s| Box::new(s.clone()) as Box<dyn EventSink + Send>)
            .collect();
        let mut sink = ShardedSink::new(boxed, 64, OverflowPolicy::Block);
        sink.record(&op_end(0, 0, 0, 0.0, 1.0));
        sink.record(&op_end(0, 1, 0, 0.0, 1.0));
        sink.record(&op_end(1, 3, 0, 1.0, 2.0));
        sink.record(&Event::exec(
            3.0,
            EventKind::Allreduce {
                stage: 0,
                bytes: 1.0,
                ring: 2,
                seconds: 0.5,
            },
        ));
        sink.record(&ev(4.0, 9)); // control -> shard 0
        sink.flush();
        assert_eq!(sink.forwarded(), 6, "broadcast counts once per shard");
        assert_eq!(sink.dropped(), 0);
        let s0 = shards[0].snapshot();
        let s1 = shards[1].snapshot();
        assert_eq!(s0.len(), 3, "replica 0 op, allreduce, control");
        assert_eq!(s1.len(), 3, "replica 1 + 3 ops, allreduce");
        assert!(s1
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Preemption { .. })));
    }

    #[test]
    fn sharded_sink_flush_is_a_barrier() {
        let inner = VecSink::new();
        let mut sink = ShardedSink::new(vec![Box::new(inner.clone())], 1024, OverflowPolicy::Block);
        for i in 0..500 {
            sink.record(&ev(i as f64, i));
        }
        sink.flush();
        assert_eq!(inner.len(), 500, "flush must drain the queue first");
    }

    /// An inner sink that parks on a shared gate — lets the test hold a
    /// worker mid-record so the bounded channel demonstrably fills.
    #[derive(Clone)]
    struct GateSink {
        gate: Arc<Mutex<()>>,
        seen: Arc<AtomicU64>,
    }

    impl EventSink for GateSink {
        fn record(&mut self, _event: &Event) {
            let _hold = self.gate.lock().expect("gate");
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drop_newest_counts_overflow_instead_of_stalling() {
        let gate = Arc::new(Mutex::new(()));
        let seen = Arc::new(AtomicU64::new(0));
        let inner = GateSink {
            gate: Arc::clone(&gate),
            seen: Arc::clone(&seen),
        };
        let mut sink = ShardedSink::new(vec![Box::new(inner)], 1, OverflowPolicy::DropNewest);
        {
            let _held = gate.lock().expect("gate");
            // Give the worker time to dequeue the first event and park
            // on the gate; afterwards one message fits the channel and
            // the rest must be dropped-and-counted, never blocking us.
            sink.record(&ev(0.0, 0));
            std::thread::sleep(std::time::Duration::from_millis(50));
            for i in 1..10u64 {
                sink.record(&ev(i as f64, i));
            }
            assert!(sink.dropped() >= 7, "dropped {}", sink.dropped());
            assert_eq!(sink.forwarded() + sink.dropped(), 10);
        }
        sink.flush();
        assert_eq!(seen.load(Ordering::SeqCst), sink.forwarded());
    }

    /// End-to-end: the async sharded fan-out feeding per-shard streaming
    /// profilers reproduces the post-hoc report byte-for-byte.
    #[test]
    fn sharded_streaming_profilers_match_posthoc_bytes() {
        use crate::stream::{merge_partials, StreamConfig, StreamSink};

        let mut events = Vec::new();
        for r in 0..3usize {
            for m in 0..5usize {
                let t0 = m as f64 + r as f64 * 0.25;
                events.push(op_end(0, r, m, t0, t0 + 0.5));
                events.push(op_end(1, r, m, t0 + 0.5, t0 + 1.0));
            }
        }
        events.push(Event::exec(
            9.0,
            EventKind::Allreduce {
                stage: 0,
                bytes: 1e9,
                ring: 3,
                seconds: 0.5,
            },
        ));
        events.push(ev(10.0, 2));

        let n = 3usize;
        let stream_sinks: Vec<StreamSink> = (0..n)
            .map(|k| StreamSink::for_shard(k, n, StreamConfig::default()))
            .collect();
        let boxed: Vec<Box<dyn EventSink + Send>> = stream_sinks
            .iter()
            .map(|s| Box::new(s.clone()) as Box<dyn EventSink + Send>)
            .collect();
        let sharded = ShardedSink::new(boxed, 256, OverflowPolicy::Block);
        let mut bus = EventBus::with_sink(Box::new(sharded));
        for e in &events {
            bus.emit(e.clone());
        }
        bus.flush();

        let merged = merge_partials(stream_sinks.iter().map(|s| s.take_partial()).collect())
            .expect("non-empty");
        assert_eq!(merged.counters().violations(), 0);
        assert_eq!(
            merged.into_report().to_json(),
            crate::profile::profile(&events).to_json()
        );
    }
}
