//! The event bus and its pluggable sinks.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// A consumer of the event stream.
///
/// Sinks own no thread and see events synchronously, in emission order.
/// A sink that reports `enabled() == false` never receives events and,
/// when no enabled sink is attached, producers skip constructing payloads
/// entirely (see [`EventBus::emit_with`]).
pub trait EventSink {
    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Whether this sink wants events at all. [`NullSink`] returns
    /// `false`, letting a wired-but-silent bus cost nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Fans events out to the attached sinks.
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn EventSink>>,
}

impl EventBus {
    /// An empty (inert) bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// A bus with one sink attached.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        let mut bus = EventBus::new();
        bus.add_sink(sink);
        bus
    }

    /// Attaches a sink.
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Whether any attached sink wants events. Producers use this (via
    /// [`EventBus::emit_with`]) to skip payload construction on inert
    /// buses — the emulator's hot loop depends on it.
    pub fn is_active(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    /// Delivers an already-built event to every enabled sink.
    pub fn emit(&mut self, event: Event) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.record(&event);
            }
        }
    }

    /// Builds the event lazily and delivers it — the closure never runs
    /// when no enabled sink is attached.
    pub fn emit_with(&mut self, build: impl FnOnce() -> Event) {
        if self.is_active() {
            self.emit(build());
        }
    }

    /// Flushes every sink.
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

/// Discards every event while keeping the bus wired. Reports
/// `enabled() == false`, so producers skip even building payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers every event in memory behind a shared handle: clone the sink
/// before boxing it into the bus, then read the events back through the
/// clone.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl VecSink {
    /// An empty buffer.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains and returns the buffered events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
    }

    /// Clones the buffered events without draining.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// A flight recorder: keeps only the newest `capacity` events. Shares its
/// buffer the same way [`VecSink`] does.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    events: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a ring buffer needs room for one event");
        RingBufferSink {
            events: Arc::new(Mutex::new(VecDeque::with_capacity(capacity))),
            capacity,
        }
    }

    /// Number of buffered events (at most the capacity).
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The surviving (newest) events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("sink lock")
            .iter()
            .cloned()
            .collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        let mut q = self.events.lock().expect("sink lock");
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back(event.clone());
    }
}

/// Streams events as JSON Lines — one `Event` object per line — to any
/// writer.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consumes the sink, flushing and returning the writer.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        let line = serde_json::to_string(event).expect("events always serialize");
        // I/O failures surface on flush; dropping mid-stream events keeps
        // the producer's hot path free of Result plumbing.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventKind};

    fn ev(t: f64, vm: u64) -> Event {
        Event::cluster(t, EventKind::Preemption { vm })
    }

    #[test]
    fn empty_bus_is_inert_and_skips_payload_construction() {
        let mut bus = EventBus::new();
        assert!(!bus.is_active());
        bus.emit_with(|| panic!("payload must not be built on an inert bus"));
    }

    #[test]
    fn null_sink_keeps_the_bus_inert() {
        let mut bus = EventBus::with_sink(Box::new(NullSink));
        assert!(!bus.is_active());
        bus.emit_with(|| panic!("payload must not be built for NullSink"));
        // Direct emit is also harmless.
        bus.emit(ev(0.0, 1));
    }

    #[test]
    fn vec_sink_buffers_in_order() {
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        assert!(bus.is_active());
        for i in 0..5 {
            bus.emit(ev(i as f64, i));
        }
        let events = sink.take();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[0].t_sim < w[1].t_sim));
        assert!(sink.is_empty(), "take drains the buffer");
    }

    #[test]
    fn ring_buffer_keeps_only_the_newest() {
        let sink = RingBufferSink::new(3);
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        for i in 0..10u64 {
            bus.emit(ev(i as f64, i));
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 3);
        let vms: Vec<f64> = events.iter().map(|e| e.t_sim).collect();
        assert_eq!(vms, vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(1.0, 7));
        sink.record(&ev(2.0, 8));
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let back: Event = serde_json::from_str(line).unwrap();
            assert!(matches!(back.kind, EventKind::Preemption { .. }));
        }
    }

    #[test]
    fn multiple_sinks_all_receive() {
        let a = VecSink::new();
        let b = RingBufferSink::new(2);
        let mut bus = EventBus::new();
        bus.add_sink(Box::new(a.clone()));
        bus.add_sink(Box::new(b.clone()));
        bus.add_sink(Box::new(NullSink));
        for i in 0..4u64 {
            bus.emit_with(|| ev(i as f64, i));
        }
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
    }
}
