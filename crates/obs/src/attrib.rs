//! Critical-path extraction and downtime pricing for the profiler.
//!
//! Two passes sit on top of the per-lane decomposition in
//! [`crate::profile()`]:
//!
//! - [`critical_path`] walks the op dependency graph backwards from the
//!   last op to finish, at each step following the *binding* predecessor
//!   (the latest-finishing of: the previous op on the same GPU lane, the
//!   upstream forward the op's input came from, or the downstream
//!   backward its gradient came from). The per-stage time along that
//!   path names the bottleneck stage — the stage to speed up next.
//! - [`downtime`] scans manager / cluster events and prices everything
//!   that is *not* useful training time on a spot trace: degraded
//!   pauses, morph restarts, checkpoint write stalls, and re-run (lost)
//!   work, each from its own event field so the components never
//!   double-count.

use serde::{Deserialize, Serialize};

use crate::event::{Event, EventKind};
use crate::profile::ProfileSpan;

/// The critical path through one mini-batch's op graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// End time of the path's final op — the pipeline makespan the path
    /// explains, seconds.
    pub length: f64,
    /// Seconds of the path spent computing.
    pub compute_seconds: f64,
    /// Seconds of the path spent waiting (transfer latency, stalled
    /// dependencies, and the initial warmup from t=0), so
    /// `compute_seconds + wait_seconds == length`.
    pub wait_seconds: f64,
    /// Ops on the path.
    pub ops: usize,
    /// Stage contributing the most compute time to the path — the
    /// pipeline's bottleneck.
    pub bottleneck_stage: usize,
    /// Per-stage compute seconds along the path (index = stage).
    pub stage_seconds: Vec<f64>,
}

/// Running decomposition of one dependency chain, folded op by op in
/// *chain order* (chain start first).
///
/// Both the post-hoc [`critical_path`] walk and the streaming profiler's
/// incremental pass build their sums through this one type, in the same
/// canonical order, so the two paths produce byte-identical `f64`s — the
/// property the streamed-equals-posthoc proptests pin.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChainSummary {
    /// End time of the chain's latest op, seconds.
    pub end: f64,
    /// Compute seconds summed along the chain, in chain order.
    pub compute: f64,
    /// Wait seconds (initial warmup + inter-op gaps), in chain order.
    pub wait: f64,
    /// Ops on the chain.
    pub ops: usize,
    /// Per-stage compute seconds (grown on demand; padded at finish).
    pub stage_seconds: Vec<f64>,
}

impl ChainSummary {
    /// A one-op chain starting from scratch: the op's start time is
    /// charged as initial wait.
    pub fn leaf(s: &ProfileSpan) -> Self {
        let mut c = ChainSummary {
            end: s.end,
            compute: 0.0,
            wait: s.start.max(0.0),
            ops: 0,
            stage_seconds: Vec::new(),
        };
        c.charge(s);
        c
    }

    /// A one-op chain whose true predecessor was lost (the post-hoc
    /// walk's iteration bound was exhausted): no initial wait is charged.
    pub fn leaf_truncated(s: &ProfileSpan) -> Self {
        let mut c = ChainSummary {
            end: s.end,
            compute: 0.0,
            wait: 0.0,
            ops: 0,
            stage_seconds: Vec::new(),
        };
        c.charge(s);
        c
    }

    /// Extends the chain by one dependent op: the gap since the chain's
    /// previous end is charged as wait, the op's duration as compute.
    pub fn extend(&self, s: &ProfileSpan) -> Self {
        let mut c = self.clone();
        c.wait += (s.start - self.end).max(0.0);
        c.end = s.end;
        c.charge(s);
        c
    }

    fn charge(&mut self, s: &ProfileSpan) {
        let dur = s.duration();
        self.compute += dur;
        if self.stage_seconds.len() <= s.stage {
            self.stage_seconds.resize(s.stage + 1, 0.0);
        }
        self.stage_seconds[s.stage] += dur;
        self.ops += 1;
    }
}

/// Turns a finished chain into a [`CriticalPath`], padding the per-stage
/// vector to `max_stage` (the highest stage over *all* spans, on or off
/// the path) and naming the bottleneck.
pub(crate) fn finish_critical_path(
    chain: ChainSummary,
    length: f64,
    max_stage: usize,
) -> CriticalPath {
    let mut stage_seconds = chain.stage_seconds;
    if stage_seconds.len() <= max_stage {
        stage_seconds.resize(max_stage + 1, 0.0);
    }
    // Strict `>` keeps the first (lowest) stage on ties.
    let mut bottleneck_stage = 0;
    for (s, &v) in stage_seconds.iter().enumerate() {
        if v > stage_seconds[bottleneck_stage] {
            bottleneck_stage = s;
        }
    }
    CriticalPath {
        length,
        compute_seconds: chain.compute,
        wait_seconds: chain.wait,
        ops: chain.ops,
        bottleneck_stage,
        stage_seconds,
    }
}

/// Extracts the critical path from op spans (`None` when empty).
///
/// The dependency model matches the emulator: an op waits on the
/// previous op of its own lane; a forward additionally waits on the same
/// micro-batch's forward one stage upstream; a backward additionally
/// waits on the same micro-batch's backward one stage downstream. The
/// binding predecessor is whichever candidate finished last (ties break
/// deterministically toward the lowest `(stage, replica)`), and the walk
/// ends at an op with no earlier predecessor — its start time is charged
/// as initial wait.
pub fn critical_path(spans: &[ProfileSpan]) -> Option<CriticalPath> {
    use std::collections::HashMap;

    if spans.is_empty() {
        return None;
    }

    // Lane-sorted order and per-op lookup.
    let mut by_lane: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    let mut by_key: HashMap<(usize, usize, char, usize), usize> = HashMap::new();
    for (i, s) in spans.iter().enumerate() {
        by_lane.entry((s.stage, s.replica)).or_default().push(i);
        by_key.insert((s.stage, s.replica, s.op, s.micro), i);
    }
    let mut lane_pos: HashMap<usize, usize> = HashMap::new();
    for lane in by_lane.values_mut() {
        lane.sort_by(|&a, &b| {
            spans[a]
                .start
                .total_cmp(&spans[b].start)
                .then(spans[a].end.total_cmp(&spans[b].end))
        });
        for (pos, &i) in lane.iter().enumerate() {
            lane_pos.insert(i, pos);
        }
    }

    // Start from the last op to finish (deterministic tie-break).
    let mut cur = 0;
    for (i, s) in spans.iter().enumerate() {
        let best = &spans[cur];
        if s.end > best.end
            || (s.end == best.end
                && (s.stage, s.replica, s.micro) < (best.stage, best.replica, best.micro))
        {
            cur = i;
        }
    }

    let length = spans[cur].end;
    let max_stage = spans.iter().map(|s| s.stage).max().unwrap_or(0);
    let eps = 1e-9;

    // Bounded walk: each step moves to an op ending at or before the
    // current op's start, so `spans.len()` steps always suffice. The
    // path is only *collected* here — sums are folded afterwards in
    // forward (chain) order through `ChainSummary`, the same order the
    // streaming profiler uses, so both produce byte-identical `f64`s.
    let mut path: Vec<usize> = Vec::new();
    let mut rooted = false;
    for _ in 0..=spans.len() {
        let s = spans[cur];
        path.push(cur);

        let mut candidates: Vec<usize> = Vec::with_capacity(3);
        if let Some(pos) = lane_pos.get(&cur) {
            if *pos > 0 {
                candidates.push(by_lane[&(s.stage, s.replica)][pos - 1]);
            }
        }
        if s.op == 'F' && s.stage > 0 {
            if let Some(&i) = by_key.get(&(s.stage - 1, s.replica, 'F', s.micro)) {
                candidates.push(i);
            }
        }
        if s.op == 'B' {
            if let Some(&i) = by_key.get(&(s.stage + 1, s.replica, 'B', s.micro)) {
                candidates.push(i);
            }
        }
        let pred = candidates
            .into_iter()
            .filter(|&i| i != cur && spans[i].end <= s.start + eps)
            .max_by(|&a, &b| {
                spans[a].end.total_cmp(&spans[b].end).then_with(|| {
                    // Lower (stage, replica) wins ties, so the pick is
                    // deterministic regardless of candidate order.
                    (spans[b].stage, spans[b].replica).cmp(&(spans[a].stage, spans[a].replica))
                })
            });
        match pred {
            Some(p) => {
                cur = p;
            }
            None => {
                rooted = true;
                break;
            }
        }
    }

    path.reverse();
    let mut it = path.iter();
    let first = *it.next().expect("path has at least the terminal op");
    let mut chain = if rooted {
        ChainSummary::leaf(&spans[first])
    } else {
        ChainSummary::leaf_truncated(&spans[first])
    };
    for &i in it {
        chain = chain.extend(&spans[i]);
    }
    Some(finish_critical_path(chain, length, max_stage))
}

/// Priced downtime over a manager / spot-trace event stream.
///
/// The priced components come from disjoint event fields —
/// `DegradedExit::paused_seconds` (plus any still-open episode at stream
/// end), `Morph::restart_seconds`, `Morph::migration_seconds`,
/// `Checkpoint::write_seconds`, and `LostWork::seconds` — so their sum
/// never double-counts. Seconds a checkpoint write spent hidden behind
/// compute (`Checkpoint::overlapped_seconds`) are tracked but *not*
/// priced: they are compute time, not downtime. `useful_seconds` is the
/// remainder of the stream window, making
/// `useful + degraded + restart + migration + checkpoint + lost ==
/// makespan` an identity the chaos tests pin.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DowntimeProfile {
    /// Morph / replacement decisions observed.
    pub morphs: usize,
    /// Morphs that actually changed the `P x D` shape.
    pub reconfigurations: usize,
    /// Same-shape replacements handled by live stage migration instead
    /// of a restart.
    pub migrations: usize,
    /// Successful checkpoints observed.
    pub checkpoints: usize,
    /// Checkpoints that wrote a delta against the last full checkpoint.
    pub delta_checkpoints: usize,
    /// Checkpoint writes that failed (storage outage).
    pub checkpoint_write_failures: usize,
    /// Checkpoints found torn (partial write) at resume validation.
    pub checkpoints_torn: usize,
    /// Control-plane recoveries (WAL replays) observed.
    pub recovery_replays: usize,
    /// VM preemptions observed.
    pub preemptions: usize,
    /// Degraded episodes entered.
    pub degraded_episodes: usize,
    /// Faults injected by the chaos harness.
    pub faults_injected: usize,
    /// Mini-batches explicitly priced as lost.
    pub lost_minibatches: u64,
    /// Seconds paused in the degraded state (closed episodes use the
    /// exit event's own pause; an episode still open at stream end is
    /// charged up to the makespan).
    pub degraded_seconds: f64,
    /// Seconds of fixed morph restart overhead.
    pub morph_restart_seconds: f64,
    /// Seconds spent streaming stage state for live migrations.
    pub migration_seconds: f64,
    /// Seconds of foreground checkpoint write stalls.
    pub checkpoint_write_seconds: f64,
    /// Seconds of checkpoint writes hidden behind compute on the
    /// background lane — informational, never part of
    /// [`DowntimeProfile::downtime_seconds`].
    pub checkpoint_overlapped_seconds: f64,
    /// Seconds of re-run work priced by `LostWork` events.
    pub lost_work_seconds: f64,
    /// Seconds spent replaying the control plane's write-ahead log after
    /// a crash (`RecoveryReplay` events).
    pub recovery_replay_seconds: f64,
    /// The stream window minus every priced component above.
    pub useful_seconds: f64,
}

impl DowntimeProfile {
    /// Total priced downtime (everything but `useful_seconds`).
    pub fn downtime_seconds(&self) -> f64 {
        self.degraded_seconds
            + self.morph_restart_seconds
            + self.migration_seconds
            + self.checkpoint_write_seconds
            + self.lost_work_seconds
            + self.recovery_replay_seconds
    }
}

/// Incremental [`DowntimeProfile`] accumulator — the single place the
/// per-event pricing rules live. Both the post-hoc [`downtime`] scan and
/// the streaming profiler feed events through `observe` one at a time
/// (in the same order), so both produce byte-identical sums.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct DowntimeAcc {
    /// The profile under construction (`useful_seconds` unset until
    /// [`DowntimeAcc::finish`]).
    pub d: DowntimeProfile,
    /// Enter time of a degraded episode not yet closed by an exit.
    pub open_degraded: Option<f64>,
}

impl DowntimeAcc {
    /// Folds one event into the profile.
    pub fn observe(&mut self, e: &Event) {
        let d = &mut self.d;
        match &e.kind {
            EventKind::Morph {
                reconfigured,
                restart_seconds,
                migration_seconds,
                ..
            } => {
                d.morphs += 1;
                if *reconfigured {
                    d.reconfigurations += 1;
                }
                if *migration_seconds > 0.0 {
                    d.migrations += 1;
                }
                d.morph_restart_seconds += restart_seconds;
                d.migration_seconds += migration_seconds;
            }
            EventKind::Checkpoint {
                write_seconds,
                overlapped_seconds,
                full,
                ..
            } => {
                d.checkpoints += 1;
                if !full {
                    d.delta_checkpoints += 1;
                }
                d.checkpoint_write_seconds += write_seconds;
                d.checkpoint_overlapped_seconds += overlapped_seconds;
            }
            EventKind::CheckpointWriteFailed { .. } => {
                d.checkpoint_write_failures += 1;
            }
            EventKind::CheckpointTorn { .. } => {
                d.checkpoints_torn += 1;
            }
            EventKind::RecoveryReplay { replay_seconds, .. } => {
                d.recovery_replays += 1;
                d.recovery_replay_seconds += replay_seconds;
            }
            EventKind::Preemption { .. } => {
                d.preemptions += 1;
            }
            EventKind::FaultInjected { .. } => {
                d.faults_injected += 1;
            }
            EventKind::DegradedEnter { .. } => {
                d.degraded_episodes += 1;
                self.open_degraded = Some(e.t_sim);
            }
            EventKind::DegradedExit { paused_seconds, .. } => {
                self.open_degraded = None;
                d.degraded_seconds += paused_seconds;
            }
            EventKind::LostWork {
                minibatches,
                seconds,
            } => {
                d.lost_minibatches += minibatches;
                d.lost_work_seconds += seconds;
            }
            _ => {}
        }
    }

    /// Closes the stream window at `makespan`: a still-open degraded
    /// episode is charged up to it and `useful_seconds` is set.
    pub fn finish(mut self, makespan: f64) -> DowntimeProfile {
        if let Some(since) = self.open_degraded {
            self.d.degraded_seconds += (makespan - since).max(0.0);
        }
        self.d.useful_seconds = makespan - self.d.downtime_seconds();
        self.d
    }
}

/// Computes the [`DowntimeProfile`] of a stream whose window is
/// `[0, makespan]`.
pub fn downtime(events: &[Event], makespan: f64) -> DowntimeProfile {
    let mut acc = DowntimeAcc::default();
    for e in events {
        acc.observe(e);
    }
    acc.finish(makespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        stage: usize,
        replica: usize,
        op: char,
        micro: usize,
        start: f64,
        end: f64,
    ) -> ProfileSpan {
        ProfileSpan {
            stage,
            replica,
            op,
            micro,
            start,
            end,
        }
    }

    #[test]
    fn empty_spans_have_no_critical_path() {
        assert!(critical_path(&[]).is_none());
    }

    #[test]
    fn a_chained_pipeline_is_fully_explained() {
        // Exact chaining: F0 -> F1 -> B1 -> B0, zero latency.
        let spans = vec![
            span(0, 0, 'F', 0, 0.0, 1.0),
            span(1, 0, 'F', 0, 1.0, 2.0),
            span(1, 0, 'B', 0, 2.0, 4.0),
            span(0, 0, 'B', 0, 4.0, 6.0),
        ];
        let c = critical_path(&spans).unwrap();
        assert_eq!(c.length, 6.0);
        assert_eq!(c.ops, 4);
        assert!((c.compute_seconds - 6.0).abs() < 1e-9);
        assert!(c.wait_seconds.abs() < 1e-9);
        assert!((c.compute_seconds + c.wait_seconds - c.length).abs() < 1e-9);
        // Both stages carry 3s; tie breaks to the lower stage.
        assert_eq!(c.bottleneck_stage, 0);
        assert_eq!(c.stage_seconds, vec![3.0, 3.0]);
    }

    #[test]
    fn transfer_latency_appears_as_wait() {
        let spans = vec![
            span(0, 0, 'F', 0, 0.5, 1.0),  // 0.5 initial wait
            span(1, 0, 'F', 0, 1.25, 2.0), // 0.25 transfer gap
        ];
        let c = critical_path(&spans).unwrap();
        assert_eq!(c.length, 2.0);
        assert!((c.compute_seconds - 1.25).abs() < 1e-9);
        assert!((c.wait_seconds - 0.75).abs() < 1e-9);
        assert_eq!(c.bottleneck_stage, 1);
    }

    #[test]
    fn the_slow_stage_is_the_bottleneck() {
        // Stage 1 is 4x slower; the path should spend its time there.
        let spans = vec![
            span(0, 0, 'F', 0, 0.0, 1.0),
            span(0, 0, 'F', 1, 1.0, 2.0),
            span(1, 0, 'F', 0, 1.0, 5.0),
            span(1, 0, 'F', 1, 5.0, 9.0),
            span(1, 0, 'B', 1, 9.0, 13.0),
            span(0, 0, 'B', 1, 13.0, 14.0),
        ];
        let c = critical_path(&spans).unwrap();
        assert_eq!(c.bottleneck_stage, 1);
        assert!(c.stage_seconds[1] > c.stage_seconds[0]);
        assert!((c.compute_seconds + c.wait_seconds - c.length).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_spans_terminate() {
        // Degenerate all-zero spans at t=0 must not loop forever.
        let spans = vec![
            span(0, 0, 'F', 0, 0.0, 0.0),
            span(0, 0, 'F', 1, 0.0, 0.0),
            span(1, 0, 'F', 0, 0.0, 0.0),
        ];
        let c = critical_path(&spans).unwrap();
        assert_eq!(c.length, 0.0);
        assert!(c.ops <= spans.len() + 1);
    }

    #[test]
    fn downtime_prices_each_component_once() {
        let events = vec![
            Event::manager(
                100.0,
                EventKind::LostWork {
                    minibatches: 5,
                    seconds: 50.0,
                },
            ),
            Event::manager(
                100.0,
                EventKind::Morph {
                    p: 4,
                    d: 2,
                    gpus_held: 8,
                    gpus_used: 8,
                    examples_per_sec: 10.0,
                    examples_per_sec_per_gpu: 1.25,
                    reconfigured: true,
                    restart_seconds: 60.0,
                    migration_seconds: 0.0,
                },
            ),
            Event::manager(
                150.0,
                EventKind::Morph {
                    p: 4,
                    d: 2,
                    gpus_held: 8,
                    gpus_used: 8,
                    examples_per_sec: 10.0,
                    examples_per_sec_per_gpu: 1.25,
                    reconfigured: false,
                    restart_seconds: 0.0,
                    migration_seconds: 1.5,
                },
            ),
            Event::manager(
                200.0,
                EventKind::Checkpoint {
                    step: 16,
                    gpus_held: 8,
                    gpus_used: 8,
                    p: 4,
                    d: 2,
                    examples_per_sec: 10.0,
                    examples_per_sec_per_gpu: 1.25,
                    write_seconds: 2.5,
                    overlapped_seconds: 4.0,
                    full: false,
                },
            ),
            Event::manager(
                300.0,
                EventKind::DegradedEnter {
                    gpus: 0,
                    reason: "x".into(),
                },
            ),
            Event::manager(
                400.0,
                EventKind::DegradedExit {
                    gpus: 8,
                    paused_seconds: 100.0,
                },
            ),
        ];
        let d = downtime(&events, 1000.0);
        assert_eq!(d.morphs, 2);
        assert_eq!(d.reconfigurations, 1);
        assert_eq!(d.migrations, 1);
        assert_eq!(d.checkpoints, 1);
        assert_eq!(d.delta_checkpoints, 1);
        assert_eq!(d.lost_minibatches, 5);
        assert_eq!(d.degraded_episodes, 1);
        assert_eq!(d.degraded_seconds, 100.0);
        assert_eq!(d.morph_restart_seconds, 60.0);
        assert_eq!(d.migration_seconds, 1.5);
        assert_eq!(d.checkpoint_write_seconds, 2.5);
        // Overlapped write time is informational only: it is hidden behind
        // compute and must never be priced as downtime.
        assert_eq!(d.checkpoint_overlapped_seconds, 4.0);
        assert_eq!(d.lost_work_seconds, 50.0);
        assert_eq!(d.downtime_seconds(), 214.0);
        assert_eq!(d.useful_seconds, 786.0);
        assert!((d.useful_seconds + d.downtime_seconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_replay_is_priced_as_downtime() {
        let events = vec![
            Event::manager(
                50.0,
                EventKind::CheckpointTorn {
                    step: 32,
                    bytes_written: 100,
                    bytes_expected: 400,
                },
            ),
            Event::recovery(
                500.0,
                EventKind::RecoveryReplay {
                    wal_records: 120,
                    torn: false,
                    dropped_bytes: 0,
                    replay_seconds: 0.24,
                },
            ),
        ];
        let d = downtime(&events, 1000.0);
        assert_eq!(d.checkpoints_torn, 1);
        assert_eq!(d.recovery_replays, 1);
        assert!((d.recovery_replay_seconds - 0.24).abs() < 1e-12);
        assert!((d.downtime_seconds() - 0.24).abs() < 1e-12);
        assert!((d.useful_seconds + d.downtime_seconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn an_open_degraded_episode_is_charged_to_stream_end() {
        let events = vec![Event::manager(
            600.0,
            EventKind::DegradedEnter {
                gpus: 0,
                reason: "capacity collapse".into(),
            },
        )];
        let d = downtime(&events, 1000.0);
        assert_eq!(d.degraded_seconds, 400.0);
        assert_eq!(d.useful_seconds, 600.0);
    }
}
