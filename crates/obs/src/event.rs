//! The structured event model shared by every subsystem.

use serde::{Deserialize, Serialize};

/// Which subsystem emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The discrete-event execution emulator (`varuna-exec`).
    Exec,
    /// The spot-VM cluster substrate (`varuna-cluster`).
    Cluster,
    /// The manager / morph controller (`varuna` core).
    Manager,
    /// The miniature training engine (`varuna-train`).
    Train,
    /// A benchmark harness binary (`varuna-bench`).
    Bench,
    /// The fault injector (`varuna-chaos`).
    Chaos,
    /// The multi-job fleet control plane (`varuna-fleet`).
    Fleet,
    /// Control-plane crash recovery (WAL replay in `varuna` core /
    /// `varuna-fleet`).
    Recovery,
}

/// What happened, with the payload inline.
///
/// Op events carry the one-letter op code of
/// `varuna_exec::op::OpKind::code` (`'F'`/`'R'`/`'B'`) rather than the
/// enum itself: `varuna-exec` depends on this crate, so the event model
/// stays at the bottom of the crate graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A GPU op was dispatched.
    OpStart {
        /// Pipeline stage.
        stage: usize,
        /// Data-parallel replica.
        replica: usize,
        /// Op code: `'F'`, `'R'`, or `'B'`.
        op: char,
        /// Micro-batch index.
        micro: usize,
    },
    /// A GPU op completed. `t_sim` is the end time.
    OpEnd {
        /// Pipeline stage.
        stage: usize,
        /// Data-parallel replica.
        replica: usize,
        /// Op code: `'F'`, `'R'`, or `'B'`.
        op: char,
        /// Micro-batch index.
        micro: usize,
        /// When the op started, seconds.
        start: f64,
    },
    /// An inter-stage activation or gradient message was sent.
    Transfer {
        /// Sending stage.
        from_stage: usize,
        /// Receiving stage.
        to_stage: usize,
        /// Data-parallel replica the message belongs to.
        replica: usize,
        /// Micro-batch index.
        micro: usize,
        /// Message size, bytes.
        bytes: f64,
        /// Delivery delay (latency + jitter + serialization), seconds.
        seconds: f64,
    },
    /// A sender GPU is busy serializing an outgoing message (emitted only
    /// under blocking sends, where communication does not overlap
    /// compute). `t_sim` is when the send starts; the GPU is occupied for
    /// `seconds`. Together with `OpEnd` this makes every GPU-busy interval
    /// visible, so the profiler can classify idle gaps exactly.
    SendBusy {
        /// Sending stage.
        stage: usize,
        /// Data-parallel replica.
        replica: usize,
        /// Micro-batch index of the message.
        micro: usize,
        /// Serialization time the sender is blocked for, seconds.
        seconds: f64,
    },
    /// A per-stage data-parallel gradient allreduce finished. `t_sim` is
    /// the completion time.
    Allreduce {
        /// Pipeline stage.
        stage: usize,
        /// Gradient bytes reduced.
        bytes: f64,
        /// Ring size (data-parallel width).
        ring: usize,
        /// Duration, seconds.
        seconds: f64,
    },
    /// The cloud preempted a VM.
    Preemption {
        /// The preempted VM.
        vm: u64,
    },
    /// A VM went silent past the heartbeat timeout (presumed preempted).
    HeartbeatMiss {
        /// The silent VM.
        vm: u64,
    },
    /// The manager reconfigured (or re-placed) the job. Self-contained so
    /// a timeline can be derived from the event stream alone.
    Morph {
        /// New pipeline depth.
        p: usize,
        /// New data-parallel width.
        d: usize,
        /// GPUs granted by the cloud at this point.
        gpus_held: usize,
        /// GPUs the configuration uses (`p * d`).
        gpus_used: usize,
        /// Training throughput, examples/sec.
        examples_per_sec: f64,
        /// Per-GPU throughput over the GPUs in use.
        examples_per_sec_per_gpu: f64,
        /// `true` when the `P x D` shape changed; `false` for a
        /// same-shape replacement (the paper's `p` markers).
        reconfigured: bool,
        /// Fixed restart overhead charged for this transition (process
        /// restart, NCCL re-setup, resume), seconds. Zero when the
        /// transition is a live stage migration. Lost work is priced
        /// separately by the accompanying `LostWork` event, so the two
        /// never double-count.
        restart_seconds: f64,
        /// Seconds spent streaming one stage's state to a replacement VM
        /// while the rest of the pipeline drains in place. Non-zero only
        /// for a same-shape replacement under live migration, and
        /// exclusive with `restart_seconds`.
        migration_seconds: f64,
    },
    /// A periodic checkpoint completed (paper §4.5).
    Checkpoint {
        /// Mini-batch step at the checkpoint.
        step: u64,
        /// GPUs granted by the cloud at this point.
        gpus_held: usize,
        /// GPUs the configuration uses.
        gpus_used: usize,
        /// Active pipeline depth.
        p: usize,
        /// Active data-parallel width.
        d: usize,
        /// Training throughput, examples/sec.
        examples_per_sec: f64,
        /// Per-GPU throughput over the GPUs in use.
        examples_per_sec_per_gpu: f64,
        /// Foreground pause for the sharded local-SSD write, seconds
        /// (the checkpoint policy's cost model). Under overlapped writes
        /// this is only the background lane's back-pressure.
        write_seconds: f64,
        /// Seconds of the write hidden behind compute on the background
        /// lane — informational, never priced as downtime (zero when
        /// writes are foreground-only).
        overlapped_seconds: f64,
        /// Whether the write carried full state (`false` for a delta
        /// against the last full checkpoint).
        full: bool,
    },
    /// A configuration was rejected because a stage does not fit GPU
    /// memory.
    OomKill {
        /// The stage that does not fit (0 when unknown).
        stage: usize,
        /// Bytes the stage needs.
        needed_bytes: f64,
        /// Bytes available.
        capacity_bytes: f64,
        /// Human-readable context.
        what: String,
    },
    /// One real training mini-batch finished (`varuna-train`).
    EpochLoss {
        /// Mini-batch step (after this batch).
        step: u64,
        /// Mean loss over the mini-batch.
        loss: f64,
        /// Examples per wall-clock second for this batch.
        examples_per_sec: f64,
    },
    /// The cloud announced an upcoming preemption of a VM (the spot
    /// eviction notice some providers send ahead of the kill).
    EvictionNotice {
        /// The VM about to be preempted.
        vm: u64,
        /// Seconds of warning before the preemption lands.
        lead_seconds: f64,
    },
    /// A VM stopped sending heartbeats while still holding its grant
    /// (network partition / heartbeat loss — possibly a false positive).
    SilenceStart {
        /// The VM that went quiet.
        vm: u64,
    },
    /// A silent VM resumed sending heartbeats.
    SilenceEnd {
        /// The VM that recovered.
        vm: u64,
    },
    /// A periodic checkpoint write failed (storage outage); the durable
    /// resume point did not advance.
    CheckpointWriteFailed {
        /// The mini-batch step the failed checkpoint would have covered.
        step: u64,
    },
    /// The manager fell back to an older durable checkpoint because the
    /// newest one was lost or corrupt.
    CheckpointFallback {
        /// Durable step before the fallback.
        from_step: u64,
        /// Durable step after the fallback.
        to_step: u64,
    },
    /// The manager excluded a VM from scheduling after its grace window
    /// expired (fail-stutter outlier or sustained heartbeat silence).
    VmExcluded {
        /// The excluded VM.
        vm: u64,
        /// Consecutive bad observations that triggered the exclusion.
        consecutive_misses: u32,
    },
    /// A previously excluded VM was re-admitted after recovering.
    VmReadmitted {
        /// The re-admitted VM.
        vm: u64,
    },
    /// A morph planning attempt failed; the manager will retry after a
    /// backoff delay.
    MorphRetry {
        /// 1-based attempt number within the current degraded episode.
        attempt: u32,
        /// Seconds until the next retry.
        backoff_seconds: f64,
        /// GPUs that were available for the failed attempt.
        gpus: usize,
    },
    /// Capacity fell below the minimum feasible configuration; training
    /// is paused, not failed.
    DegradedEnter {
        /// GPUs available when the job degraded.
        gpus: usize,
        /// Why the last planning attempt failed.
        reason: String,
    },
    /// Capacity returned and planning succeeded; training resumes.
    DegradedExit {
        /// GPUs available at recovery.
        gpus: usize,
        /// Seconds spent paused in the degraded state.
        paused_seconds: f64,
    },
    /// Work lost to a restart was priced into downtime (re-run from the
    /// durable checkpoint).
    LostWork {
        /// Mini-batches that must be re-run.
        minibatches: u64,
        /// Seconds of re-run time charged.
        seconds: f64,
    },
    /// A simulator-in-the-loop planning event completed (one morph's
    /// candidate search). Carries only deterministic counters — plan
    /// wall-clock latency lives in the metrics registry, never in the
    /// event stream, so same-seed replays stay byte-identical.
    PlanSearch {
        /// Candidates the sweep produced.
        candidates: u64,
        /// Candidates scored by a fresh emulation.
        simulated: u64,
        /// Candidates served from the memo table.
        memo_hits: u64,
        /// Candidates left on their analytic estimate (budget exhausted
        /// or emulator error).
        analytic_fallbacks: u64,
    },
    /// The fleet arbiter (re)allocated shared-market capacity to one job.
    /// Emitted once per job per arbitration round, so the full allocation
    /// vector can be rebuilt from the stream.
    FleetAllocation {
        /// The job the allocation applies to.
        job: u64,
        /// Spot GPUs leased to the job after this round.
        spot_gpus: usize,
        /// On-demand fallback GPUs provisioned for the job.
        on_demand_gpus: usize,
        /// Total spot GPUs the shared market held at this instant.
        market_gpus: usize,
    },
    /// The arbiter revoked spot capacity from a job — preemption of the
    /// preemptible, ahead of (and instead of) a market eviction.
    JobPreempted {
        /// The job losing capacity.
        job: u64,
        /// Spot GPUs revoked by this decision.
        gpus_revoked: usize,
        /// Short machine-readable reason (e.g. `"fair_share"`,
        /// `"starvation_boost"`).
        reason: String,
    },
    /// The provisioner topped a job up with on-demand capacity because its
    /// throughput floor (or deadline) was at risk on spot alone.
    FallbackProvisioned {
        /// The job being topped up.
        job: u64,
        /// On-demand GPUs added by this decision.
        gpus: usize,
        /// On-demand GPUs the job holds after this decision.
        total_on_demand: usize,
    },
    /// A checkpoint write was torn: the process died (or the volume
    /// vanished) mid-write, leaving fewer bytes on disk than the full
    /// state needs. Distinct from `CheckpointWriteFailed` (nothing
    /// written, durable point simply does not advance) and from a later
    /// corruption — a torn write is detected at resume validation and
    /// forces a `CheckpointFallback` to the previous durable step.
    CheckpointTorn {
        /// The durable step whose checkpoint proved torn.
        step: u64,
        /// Bytes actually on disk.
        bytes_written: u64,
        /// Bytes a complete checkpoint needs.
        bytes_expected: u64,
    },
    /// The control plane restarted and rebuilt its state by replaying a
    /// write-ahead log prefix. `t_sim` is the crash point; the replay
    /// itself is priced as downtime (`replay_seconds`).
    RecoveryReplay {
        /// WAL records replayed to rebuild state.
        wal_records: u64,
        /// Whether the log ended in a torn (checksum-failing) frame that
        /// recovery truncated.
        torn: bool,
        /// Bytes dropped by torn-frame truncation.
        dropped_bytes: u64,
        /// Modeled wall-clock cost of the replay, seconds.
        replay_seconds: f64,
    },
    /// The chaos harness injected a fault into a trace replay.
    FaultInjected {
        /// Short machine-readable fault label (e.g. `"preemption_burst"`).
        fault: String,
        /// The VM the fault targets (`u64::MAX` when not VM-specific).
        vm: u64,
    },
}

/// One timestamped observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation (or wall-clock, for `varuna-train`) time in seconds.
    pub t_sim: f64,
    /// Emitting subsystem.
    pub source: Source,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// An event from the execution emulator.
    pub fn exec(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Exec,
            kind,
        }
    }

    /// An event from the cluster substrate.
    pub fn cluster(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Cluster,
            kind,
        }
    }

    /// An event from the manager.
    pub fn manager(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Manager,
            kind,
        }
    }

    /// An event from the training engine.
    pub fn train(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Train,
            kind,
        }
    }

    /// An event from the fault injector.
    pub fn chaos(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Chaos,
            kind,
        }
    }

    /// An event from the fleet control plane.
    pub fn fleet(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Fleet,
            kind,
        }
    }

    /// An event from control-plane crash recovery.
    pub fn recovery(t_sim: f64, kind: EventKind) -> Self {
        Event {
            t_sim,
            source: Source::Recovery,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::exec(
                1.25,
                EventKind::OpEnd {
                    stage: 3,
                    replica: 1,
                    op: 'B',
                    micro: 7,
                    start: 1.0,
                },
            ),
            Event::exec(
                2.5,
                EventKind::SendBusy {
                    stage: 3,
                    replica: 1,
                    micro: 7,
                    seconds: 0.125,
                },
            ),
            Event::cluster(60.0, EventKind::Preemption { vm: 42 }),
            Event::manager(
                3600.0,
                EventKind::Morph {
                    p: 9,
                    d: 8,
                    gpus_held: 80,
                    gpus_used: 72,
                    examples_per_sec: 120.5,
                    examples_per_sec_per_gpu: 1.67,
                    reconfigured: true,
                    restart_seconds: 60.0,
                    migration_seconds: 0.0,
                },
            ),
            Event::manager(
                7200.0,
                EventKind::Checkpoint {
                    step: 1600,
                    gpus_held: 80,
                    gpus_used: 72,
                    p: 9,
                    d: 8,
                    examples_per_sec: 120.5,
                    examples_per_sec_per_gpu: 1.67,
                    write_seconds: 0.55,
                    overlapped_seconds: 0.12,
                    full: true,
                },
            ),
            Event::train(
                2.0,
                EventKind::EpochLoss {
                    step: 5,
                    loss: 3.5,
                    examples_per_sec: 4.0,
                },
            ),
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back, "round trip failed for {json}");
        }
    }

    #[test]
    fn fault_and_recovery_events_round_trip() {
        let events = vec![
            Event::cluster(
                10.0,
                EventKind::EvictionNotice {
                    vm: 3,
                    lead_seconds: 30.0,
                },
            ),
            Event::cluster(11.0, EventKind::SilenceStart { vm: 9 }),
            Event::cluster(12.0, EventKind::SilenceEnd { vm: 9 }),
            Event::manager(13.0, EventKind::CheckpointWriteFailed { step: 48 }),
            Event::manager(
                14.0,
                EventKind::CheckpointFallback {
                    from_step: 48,
                    to_step: 32,
                },
            ),
            Event::manager(
                15.0,
                EventKind::VmExcluded {
                    vm: 9,
                    consecutive_misses: 3,
                },
            ),
            Event::manager(16.0, EventKind::VmReadmitted { vm: 9 }),
            Event::manager(
                17.0,
                EventKind::MorphRetry {
                    attempt: 2,
                    backoff_seconds: 60.0,
                    gpus: 4,
                },
            ),
            Event::manager(
                18.0,
                EventKind::DegradedEnter {
                    gpus: 4,
                    reason: "no feasible depth".into(),
                },
            ),
            Event::manager(
                19.0,
                EventKind::DegradedExit {
                    gpus: 40,
                    paused_seconds: 3600.0,
                },
            ),
            Event::manager(
                20.0,
                EventKind::LostWork {
                    minibatches: 7,
                    seconds: 91.0,
                },
            ),
            Event::chaos(
                21.0,
                EventKind::FaultInjected {
                    fault: "preemption_burst".into(),
                    vm: u64::MAX,
                },
            ),
            Event::fleet(
                22.5,
                EventKind::FleetAllocation {
                    job: 3,
                    spot_gpus: 24,
                    on_demand_gpus: 4,
                    market_gpus: 120,
                },
            ),
            Event::fleet(
                22.6,
                EventKind::JobPreempted {
                    job: 7,
                    gpus_revoked: 8,
                    reason: "fair_share".into(),
                },
            ),
            Event::fleet(
                22.7,
                EventKind::FallbackProvisioned {
                    job: 3,
                    gpus: 4,
                    total_on_demand: 4,
                },
            ),
            Event::manager(
                23.0,
                EventKind::CheckpointTorn {
                    step: 48,
                    bytes_written: 1_000,
                    bytes_expected: 4_000,
                },
            ),
            Event::recovery(
                24.0,
                EventKind::RecoveryReplay {
                    wal_records: 37,
                    torn: true,
                    dropped_bytes: 11,
                    replay_seconds: 0.074,
                },
            ),
            Event::manager(
                22.0,
                EventKind::PlanSearch {
                    candidates: 12,
                    simulated: 5,
                    memo_hits: 6,
                    analytic_fallbacks: 1,
                },
            ),
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(e, back, "round trip failed for {json}");
        }
    }

    #[test]
    fn oom_kill_carries_context() {
        let e = Event::exec(
            0.0,
            EventKind::OomKill {
                stage: 2,
                needed_bytes: 20e9,
                capacity_bytes: 16e9,
                what: "PipeDream stage".to_string(),
            },
        );
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("PipeDream stage"));
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
