#![warn(missing_docs)]
//! Unified observability for the Varuna reproduction.
//!
//! Every subsystem — the discrete-event emulator (`varuna-exec`), the spot
//! cluster substrate (`varuna-cluster`), the manager (`varuna` core), and
//! the miniature training engine (`varuna-train`) — reports what it does
//! through one structured [`Event`] stream instead of each keeping its own
//! ad-hoc recorder. Consumers plug [`EventSink`]s into an [`EventBus`]:
//!
//! - [`VecSink`] buffers events in memory (tests, exporters),
//! - [`RingBufferSink`] keeps only the newest `N` (flight recorder),
//! - [`JsonlSink`] streams one JSON object per line to a writer,
//! - [`NullSink`] discards everything while keeping the wiring in place.
//!
//! With no enabled sink attached the bus is inert: producers guard every
//! emission with [`EventBus::emit_with`], so no payload is even
//! constructed and the emulator's hot loop stays within noise of its
//! bus-free wall-clock (verified by the criterion benches).
//!
//! On top of the event stream sit a [`MetricsRegistry`] (counters, gauges,
//! fixed-bucket histograms, snapshot-able to one JSON document), a
//! `chrome://tracing` exporter ([`chrome_trace_json`]) whose output loads
//! directly in Perfetto, the [`BenchReport`] schema the bench binaries
//! emit as `BENCH_*.json`, and the post-hoc time-attribution profiler
//! ([`profile()`]) that decomposes any captured stream into compute,
//! communication, bubble, and downtime — with a critical-path pass that
//! names the bottleneck stage (`varuna-profile` is its CLI front-end).

pub mod attrib;
pub mod bus;
pub mod chrome_trace;
pub mod event;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod stream;

pub use attrib::{critical_path, downtime, CriticalPath, DowntimeProfile};
pub use bus::{
    allreduce_owner, shard_route, EventBus, EventSink, JsonlSink, NullSink, OverflowPolicy,
    RingBufferSink, ShardRoute, ShardedSink, VecSink,
};
pub use chrome_trace::{chrome_trace_json, events_from_chrome_trace};
pub use event::{Event, EventKind, Source};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{
    events_from_jsonl, profile, LaneProfile, ProfileReport, ProfileSpan, StageProfile,
    PROFILE_SCHEMA,
};
pub use report::{BenchReport, REPORT_SCHEMA};
pub use stream::{
    merge_partials, spawn_http, PartialReport, StreamConfig, StreamCounters, StreamSink,
    StreamingProfiler,
};
