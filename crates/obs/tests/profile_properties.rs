//! Property-based invariants of the time-attribution profiler.
//!
//! The generator builds dependency-consistent GPipe-style schedules
//! (forwards chain down the pipeline, backwards chain back up, each lane
//! runs its ops back to back as soon as inputs arrive, zero link
//! latency). On such schedules four properties must hold exactly:
//!
//! 1. every lane's component decomposition sums to the makespan,
//! 2. all bubble terms are nonnegative and the bubble fraction is in
//!    `[0, 1)`,
//! 3. critical path length <= makespan <= sum of lane busy times (the
//!    chain construction leaves no instant where every lane idles),
//! 4. a JSONL round trip of the stream profiles identically.

use proptest::collection::vec;
use proptest::prelude::*;
use varuna_obs::{downtime, profile, Event, EventKind};

/// Stages never exceed this, so duration vectors are drawn at this
/// length and sliced to the drawn `p`.
const MAX_P: usize = 4;

/// Per-replica GPipe schedule over `p` stages and `n_micro` micros with
/// per-stage forward/backward durations. Start times respect both the
/// lane order and the producer dependency with zero latency, so every
/// op starts exactly when its latest prerequisite ends.
fn gpipe_events(p: usize, d: usize, n_micro: usize, fwd: &[f64], bwd: &[f64]) -> Vec<Event> {
    let mut events = Vec::new();
    for r in 0..d {
        let mut lane_free = vec![0.0f64; p];
        let mut f_end = vec![vec![0.0f64; n_micro]; p];
        let mut b_end = vec![vec![0.0f64; n_micro]; p];
        for m in 0..n_micro {
            for s in 0..p {
                let dep = if s == 0 { 0.0 } else { f_end[s - 1][m] };
                let start = lane_free[s].max(dep);
                let end = start + fwd[s];
                lane_free[s] = end;
                f_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'F',
                        micro: m,
                        start,
                    },
                ));
            }
        }
        for m in 0..n_micro {
            for s in (0..p).rev() {
                let dep = if s == p - 1 {
                    f_end[s][m]
                } else {
                    b_end[s + 1][m]
                };
                let start = lane_free[s].max(dep);
                let end = start + bwd[s];
                lane_free[s] = end;
                b_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'B',
                        micro: m,
                        start,
                    },
                ));
            }
        }
    }
    events
}

/// One random manager-stream atom for the downtime generator below:
/// `choice` selects the event class, `a`/`b` supply its priced fields.
fn downtime_events(atoms: &[(f64, u32, f64, f64)]) -> (Vec<Event>, f64) {
    let mut t = 0.0f64;
    let mut events = Vec::new();
    for &(dt, choice, a, b) in atoms {
        t += dt;
        match choice % 5 {
            0 => {
                // A morph: reconfigurations price a restart, same-shape
                // replacements a live migration — never both.
                let reconfigured = choice >= 5;
                events.push(Event::manager(
                    t,
                    EventKind::Morph {
                        p: 4,
                        d: 2,
                        gpus_held: 8,
                        gpus_used: 8,
                        examples_per_sec: 10.0,
                        examples_per_sec_per_gpu: 1.25,
                        reconfigured,
                        restart_seconds: if reconfigured { a } else { 0.0 },
                        migration_seconds: if reconfigured { 0.0 } else { b },
                    },
                ));
            }
            1 => {
                // A checkpoint: `a` stalls the pipeline, `b` rides the
                // background lane hidden behind compute.
                events.push(Event::manager(
                    t,
                    EventKind::Checkpoint {
                        step: 16,
                        gpus_held: 8,
                        gpus_used: 8,
                        p: 4,
                        d: 2,
                        examples_per_sec: 10.0,
                        examples_per_sec_per_gpu: 1.25,
                        write_seconds: a,
                        overlapped_seconds: b,
                        full: choice >= 5,
                    },
                ));
            }
            2 => {
                events.push(Event::manager(
                    t,
                    EventKind::DegradedEnter {
                        gpus: 0,
                        reason: "chaos".into(),
                    },
                ));
                t += a;
                events.push(Event::manager(
                    t,
                    EventKind::DegradedExit {
                        gpus: 8,
                        paused_seconds: a,
                    },
                ));
            }
            3 => {
                events.push(Event::manager(
                    t,
                    EventKind::LostWork {
                        minibatches: 3,
                        seconds: a,
                    },
                ));
            }
            _ => {
                events.push(Event::recovery(
                    t,
                    EventKind::RecoveryReplay {
                        wal_records: 12,
                        torn: false,
                        dropped_bytes: 0,
                        replay_seconds: a * 0.01,
                    },
                ));
            }
        }
    }
    (events, t + 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random manager streams mixing restarts, live migrations, and
    /// overlapped checkpoint writes: the priced components re-derived
    /// independently must match the profiler term by term, sum with
    /// useful time to the makespan, and stay byte-identical when every
    /// overlapped second is zeroed out — overlapped writes are hidden
    /// behind compute and must never leak into the priced total.
    #[test]
    fn downtime_identity_holds_with_overlap_and_migrations(
        n in 0usize..40,
        dts in vec(0.1f64..100.0, 40..41),
        choices in vec(0u32..10, 40..41),
        avals in vec(0.0f64..50.0, 40..41),
        bvals in vec(0.0f64..50.0, 40..41),
    ) {
        let atoms: Vec<(f64, u32, f64, f64)> = (0..n)
            .map(|i| (dts[i], choices[i], avals[i], bvals[i]))
            .collect();
        let (events, makespan) = downtime_events(&atoms);
        let d = downtime(&events, makespan);

        let mut restarts = 0.0;
        let mut migrations = 0.0;
        let mut writes = 0.0;
        let mut overlapped = 0.0;
        for e in &events {
            match &e.kind {
                EventKind::Morph { restart_seconds, migration_seconds, .. } => {
                    restarts += restart_seconds;
                    migrations += migration_seconds;
                }
                EventKind::Checkpoint { write_seconds, overlapped_seconds, .. } => {
                    writes += write_seconds;
                    overlapped += overlapped_seconds;
                }
                _ => {}
            }
        }
        prop_assert!((d.morph_restart_seconds - restarts).abs() < 1e-9);
        prop_assert!((d.migration_seconds - migrations).abs() < 1e-9);
        prop_assert!((d.checkpoint_write_seconds - writes).abs() < 1e-9);
        prop_assert!((d.checkpoint_overlapped_seconds - overlapped).abs() < 1e-9);
        prop_assert!(
            (d.useful_seconds + d.downtime_seconds() - makespan).abs()
                <= 1e-9 * makespan.max(1.0),
            "useful {} + downtime {} != makespan {}",
            d.useful_seconds, d.downtime_seconds(), makespan
        );

        // Zeroing the overlapped seconds changes nothing priced: the
        // same stream with all background-lane time erased produces the
        // identical downtime total and useful remainder.
        let erased: Vec<Event> = events
            .iter()
            .cloned()
            .map(|mut e| {
                if let EventKind::Checkpoint { overlapped_seconds, .. } = &mut e.kind {
                    *overlapped_seconds = 0.0;
                }
                e
            })
            .collect();
        let d0 = downtime(&erased, makespan);
        prop_assert_eq!(d0.checkpoint_overlapped_seconds, 0.0);
        prop_assert!((d0.downtime_seconds() - d.downtime_seconds()).abs() < 1e-12);
        prop_assert!((d0.useful_seconds - d.useful_seconds).abs() < 1e-12);
    }

    #[test]
    fn components_sum_to_the_makespan(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        prop_assert!(r.makespan > 0.0);
        for lane in &r.lanes {
            prop_assert!(
                (lane.total() - r.makespan).abs() <= 1e-9 * r.makespan,
                "lane ({}, {}): total {} vs makespan {}",
                lane.stage, lane.replica, lane.total(), r.makespan
            );
        }
    }

    #[test]
    fn bubbles_are_nonnegative(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        for lane in &r.lanes {
            prop_assert!(lane.warmup >= 0.0);
            prop_assert!(lane.stall >= 0.0);
            prop_assert!(lane.drain >= 0.0);
        }
        prop_assert!(r.bubble_fraction >= 0.0 && r.bubble_fraction < 1.0);
        for s in &r.stages {
            prop_assert!(s.bubble() >= 0.0);
            prop_assert!(s.straggler >= 1.0 - 1e-12, "max < mean is impossible");
        }
    }

    #[test]
    fn critical_path_bounds_the_makespan(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        let cp = r.critical_path.as_ref().expect("schedules have ops");
        let total_busy: f64 = r.lanes.iter().map(|l| l.busy()).sum();
        prop_assert!(
            cp.length <= r.makespan + 1e-9 * r.makespan,
            "critical path {} exceeds makespan {}", cp.length, r.makespan
        );
        prop_assert!(
            r.makespan <= total_busy + 1e-9 * total_busy,
            "makespan {} exceeds total busy {}", r.makespan, total_busy
        );
        // Zero-latency chained schedules have a fully-busy critical
        // chain: the path explains the entire makespan.
        prop_assert!(
            (cp.length - r.makespan).abs() <= 1e-9 * r.makespan,
            "critical path {} does not reach the makespan {}", cp.length, r.makespan
        );
        prop_assert!(
            (cp.compute_seconds + cp.wait_seconds - cp.length).abs() <= 1e-9 * cp.length,
            "path decomposition leaks"
        );
    }

    #[test]
    fn jsonl_round_trip_profiles_identically(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize") + "\n")
            .collect();
        let back = varuna_obs::events_from_jsonl(&jsonl).expect("round trip parses");
        prop_assert_eq!(profile(&back), profile(&events));
    }
}
