//! Property-based invariants of the time-attribution profiler.
//!
//! The generator builds dependency-consistent GPipe-style schedules
//! (forwards chain down the pipeline, backwards chain back up, each lane
//! runs its ops back to back as soon as inputs arrive, zero link
//! latency). On such schedules four properties must hold exactly:
//!
//! 1. every lane's component decomposition sums to the makespan,
//! 2. all bubble terms are nonnegative and the bubble fraction is in
//!    `[0, 1)`,
//! 3. critical path length <= makespan <= sum of lane busy times (the
//!    chain construction leaves no instant where every lane idles),
//! 4. a JSONL round trip of the stream profiles identically.

use proptest::collection::vec;
use proptest::prelude::*;
use varuna_obs::{profile, Event, EventKind};

/// Stages never exceed this, so duration vectors are drawn at this
/// length and sliced to the drawn `p`.
const MAX_P: usize = 4;

/// Per-replica GPipe schedule over `p` stages and `n_micro` micros with
/// per-stage forward/backward durations. Start times respect both the
/// lane order and the producer dependency with zero latency, so every
/// op starts exactly when its latest prerequisite ends.
fn gpipe_events(p: usize, d: usize, n_micro: usize, fwd: &[f64], bwd: &[f64]) -> Vec<Event> {
    let mut events = Vec::new();
    for r in 0..d {
        let mut lane_free = vec![0.0f64; p];
        let mut f_end = vec![vec![0.0f64; n_micro]; p];
        let mut b_end = vec![vec![0.0f64; n_micro]; p];
        for m in 0..n_micro {
            for s in 0..p {
                let dep = if s == 0 { 0.0 } else { f_end[s - 1][m] };
                let start = lane_free[s].max(dep);
                let end = start + fwd[s];
                lane_free[s] = end;
                f_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'F',
                        micro: m,
                        start,
                    },
                ));
            }
        }
        for m in 0..n_micro {
            for s in (0..p).rev() {
                let dep = if s == p - 1 {
                    f_end[s][m]
                } else {
                    b_end[s + 1][m]
                };
                let start = lane_free[s].max(dep);
                let end = start + bwd[s];
                lane_free[s] = end;
                b_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'B',
                        micro: m,
                        start,
                    },
                ));
            }
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn components_sum_to_the_makespan(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        prop_assert!(r.makespan > 0.0);
        for lane in &r.lanes {
            prop_assert!(
                (lane.total() - r.makespan).abs() <= 1e-9 * r.makespan,
                "lane ({}, {}): total {} vs makespan {}",
                lane.stage, lane.replica, lane.total(), r.makespan
            );
        }
    }

    #[test]
    fn bubbles_are_nonnegative(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        for lane in &r.lanes {
            prop_assert!(lane.warmup >= 0.0);
            prop_assert!(lane.stall >= 0.0);
            prop_assert!(lane.drain >= 0.0);
        }
        prop_assert!(r.bubble_fraction >= 0.0 && r.bubble_fraction < 1.0);
        for s in &r.stages {
            prop_assert!(s.bubble() >= 0.0);
            prop_assert!(s.straggler >= 1.0 - 1e-12, "max < mean is impossible");
        }
    }

    #[test]
    fn critical_path_bounds_the_makespan(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let r = profile(&events);
        let cp = r.critical_path.as_ref().expect("schedules have ops");
        let total_busy: f64 = r.lanes.iter().map(|l| l.busy()).sum();
        prop_assert!(
            cp.length <= r.makespan + 1e-9 * r.makespan,
            "critical path {} exceeds makespan {}", cp.length, r.makespan
        );
        prop_assert!(
            r.makespan <= total_busy + 1e-9 * total_busy,
            "makespan {} exceeds total busy {}", r.makespan, total_busy
        );
        // Zero-latency chained schedules have a fully-busy critical
        // chain: the path explains the entire makespan.
        prop_assert!(
            (cp.length - r.makespan).abs() <= 1e-9 * r.makespan,
            "critical path {} does not reach the makespan {}", cp.length, r.makespan
        );
        prop_assert!(
            (cp.compute_seconds + cp.wait_seconds - cp.length).abs() <= 1e-9 * cp.length,
            "path decomposition leaks"
        );
    }

    #[test]
    fn jsonl_round_trip_profiles_identically(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 1usize..7,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize") + "\n")
            .collect();
        let back = varuna_obs::events_from_jsonl(&jsonl).expect("round trip parses");
        prop_assert_eq!(profile(&back), profile(&events));
    }
}
