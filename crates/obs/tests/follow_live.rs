//! End-to-end coverage of the live profiler surface: `varuna-profile
//! --follow` tailing a growing JSONL capture, the `--serve` HTTP
//! endpoint, `-` stdin input, `--top` truncation, and malformed-input
//! exit codes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use varuna_obs::{profile, Event, EventKind};

const BIN: &str = env!("CARGO_BIN_EXE_varuna-profile");

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("varuna-follow-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn op(stage: usize, replica: usize, op: char, micro: usize, start: f64, end: f64) -> Event {
    Event::exec(
        end,
        EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            start,
        },
    )
}

fn sample_events() -> Vec<Event> {
    vec![
        op(0, 0, 'F', 0, 0.0, 1.0),
        op(1, 0, 'F', 0, 1.0, 2.0),
        op(1, 0, 'B', 0, 2.0, 3.0),
        op(0, 0, 'B', 0, 3.0, 4.0),
        Event::exec(
            4.5,
            EventKind::Allreduce {
                stage: 0,
                bytes: 1e9,
                ring: 2,
                seconds: 0.5,
            },
        ),
        Event::manager(
            5.0,
            EventKind::LostWork {
                minibatches: 1,
                seconds: 0.25,
            },
        ),
    ]
}

fn jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&serde_json::to_string(e).expect("event serializes"));
        s.push('\n');
    }
    s
}

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to --serve endpoint");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send request");
    let mut buf = String::new();
    stream.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("http framing");
    (head.to_string(), body.to_string())
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if start.elapsed() > timeout {
            let _ = child.kill();
            panic!("varuna-profile --follow did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn follow_serves_live_reports_and_finishes_byte_identical_to_posthoc() {
    let dir = scratch("live");
    let capture = dir.join("events.jsonl");
    let out = dir.join("report.json");
    let events = sample_events();

    // Start with the first half of the stream on disk.
    std::fs::write(&capture, jsonl(&events[..3])).expect("seed capture");

    let mut child = Command::new(BIN)
        .arg(capture.to_str().unwrap())
        .args(["--follow", "--serve", "127.0.0.1:0"])
        .args(["--poll-ms", "25", "--idle-exit", "1.5", "--top", "1"])
        .args(["--out", out.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn varuna-profile");

    // The bound address is announced on the first stdout line.
    let mut reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read serve line");
    let addr = line
        .trim()
        .strip_prefix("serving on http://")
        .unwrap_or_else(|| panic!("expected serve banner, got {line:?}"))
        .to_string();
    // Drain the rest of stdout in the background so the child never
    // blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("drain stdout");
        rest
    });

    let (head, body) = http_get(&addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("ok"));

    // Append the rest, splitting one line across two writes to exercise
    // the partial-tail buffer.
    let rest = jsonl(&events[3..]);
    let split = rest.len() / 2;
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&capture)
            .expect("append capture");
        f.write_all(rest[..split].as_bytes()).expect("half write");
        f.sync_all().expect("sync");
        std::thread::sleep(Duration::from_millis(120));
        f.write_all(rest[split..].as_bytes()).expect("other half");
    }

    // The live endpoint converges on the full event count.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (head, body) = http_get(&addr, "/report");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let report: varuna_obs::ProfileReport =
            serde_json::from_str(&body).expect("report endpoint serves valid JSON");
        if report.events == events.len() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "live report stuck at {} of {} events",
            report.events,
            events.len()
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let (head, body) = http_get(&addr, "/downtime");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("lost_work_seconds"), "{body}");
    let (head, body) = http_get(&addr, "/counters");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains("\"late_events\": 0"), "{body}");

    // Idle-exit fires once the capture stops growing.
    let status = wait_with_timeout(&mut child, Duration::from_secs(20));
    assert!(status.success(), "follow mode must exit cleanly: {status}");

    // The written report is byte-identical to the post-hoc profiler.
    let written = std::fs::read_to_string(&out).expect("read --out report");
    assert_eq!(
        written,
        profile(&events).to_json(),
        "streamed report must match post-hoc byte-for-byte"
    );

    // --top 1 truncates the stage table and says so.
    let stdout = drain.join().expect("drain thread");
    assert!(stdout.contains("stage(s) elided"), "stdout:\n{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oneshot_reads_stdin_with_dash() {
    let events = sample_events();
    let mut child = Command::new(BIN)
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn varuna-profile");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(jsonl(&events).as_bytes())
        .expect("feed stdin");
    let output = child.wait_with_output().expect("wait");
    assert!(output.status.success(), "{output:?}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains(&format!("{} events", events.len())),
        "stdout:\n{stdout}"
    );
}

#[test]
fn malformed_jsonl_exits_nonzero_with_line_number() {
    let dir = scratch("bad");
    let capture = dir.join("bad.jsonl");
    let events = sample_events();
    let mut text = jsonl(&events[..2]);
    text.push_str("this is not an event\n");
    std::fs::write(&capture, &text).expect("write capture");

    let output = Command::new(BIN)
        .arg(capture.to_str().unwrap())
        .output()
        .expect("run varuna-profile");
    assert!(!output.status.success(), "must exit non-zero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "stderr:\n{stderr}");

    // Follow mode reports the same line number instead of panicking.
    let output = Command::new(BIN)
        .arg(capture.to_str().unwrap())
        .args(["--follow", "--poll-ms", "10", "--idle-exit", "5"])
        .output()
        .expect("run varuna-profile --follow");
    assert!(!output.status.success(), "must exit non-zero");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("line 3"), "stderr:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn top_flag_truncates_the_stage_table() {
    let dir = scratch("top");
    let capture = dir.join("events.jsonl");
    std::fs::write(&capture, jsonl(&sample_events())).expect("write capture");
    let output = Command::new(BIN)
        .arg(capture.to_str().unwrap())
        .args(["--top", "1"])
        .output()
        .expect("run varuna-profile");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("1 more stage(s) elided"),
        "stdout:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
