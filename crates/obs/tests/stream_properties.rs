//! Property-based pins for the streaming profiler: random event
//! streams, random (lane-preserving) shard assignments, and random merge
//! groupings must reproduce the post-hoc `profile()` report
//! byte-for-byte, and every intermediate partial must satisfy the same
//! sum-to-makespan and downtime identities the post-hoc report does.

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use varuna_obs::{profile, Event, EventKind, PartialReport, StreamConfig, StreamingProfiler};

const MAX_P: usize = 4;

/// Same dependency-consistent GPipe generator the post-hoc proptests
/// use: forwards chain down the pipeline, backwards chain back up, every
/// op starts exactly when its latest prerequisite ends.
fn gpipe_events(p: usize, d: usize, n_micro: usize, fwd: &[f64], bwd: &[f64]) -> Vec<Event> {
    let mut events = Vec::new();
    for r in 0..d {
        let mut lane_free = vec![0.0f64; p];
        let mut f_end = vec![vec![0.0f64; n_micro]; p];
        let mut b_end = vec![vec![0.0f64; n_micro]; p];
        for m in 0..n_micro {
            for s in 0..p {
                let dep = if s == 0 { 0.0 } else { f_end[s - 1][m] };
                let start = lane_free[s].max(dep);
                let end = start + fwd[s];
                lane_free[s] = end;
                f_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'F',
                        micro: m,
                        start,
                    },
                ));
            }
        }
        for m in 0..n_micro {
            for s in (0..p).rev() {
                let dep = if s == p - 1 {
                    f_end[s][m]
                } else {
                    b_end[s + 1][m]
                };
                let start = lane_free[s].max(dep);
                let end = start + bwd[s];
                lane_free[s] = end;
                b_end[s][m] = end;
                events.push(Event::exec(
                    end,
                    EventKind::OpEnd {
                        stage: s,
                        replica: r,
                        op: 'B',
                        micro: m,
                        start,
                    },
                ));
            }
        }
    }
    events
}

/// Appends per-stage allreduces and a little control-plane traffic after
/// the data plane, so the merge also exercises broadcast ghosting and
/// the shard-0-style control summation.
fn garnish(events: &mut Vec<Event>, p: usize, ctrl: &[(f64, f64)]) {
    let end = events.iter().map(|e| e.t_sim).fold(0.0f64, f64::max);
    for s in 0..p {
        events.push(Event::exec(
            end + 1.0 + s as f64 * 0.25,
            EventKind::Allreduce {
                stage: s,
                bytes: 1e9,
                ring: 2,
                seconds: 0.5,
            },
        ));
    }
    let mut t = end + 2.0;
    for &(dt, secs) in ctrl {
        t += dt;
        events.push(Event::manager(
            t,
            EventKind::LostWork {
                minibatches: 1,
                seconds: secs,
            },
        ));
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Routes the stream across `shards` profilers with a *random* but
/// lane-preserving assignment: each replica maps to one shard, each
/// allreduce stage has one owner (ghosted everywhere else), and all
/// control traffic rides one shard — the invariants `ShardedSink`'s
/// canonical routing is one instance of.
fn route(
    events: &[Event],
    shards: usize,
    replica_salt: u64,
    owner_salt: u64,
    ctrl_shard: usize,
) -> Vec<PartialReport> {
    let mut profs: Vec<StreamingProfiler> = (0..shards)
        .map(|_| StreamingProfiler::new(StreamConfig::default()))
        .collect();
    for e in events {
        match &e.kind {
            EventKind::OpStart { replica, .. }
            | EventKind::OpEnd { replica, .. }
            | EventKind::SendBusy { replica, .. } => {
                let mut s = replica_salt ^ (*replica as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                profs[(xorshift(&mut s) % shards as u64) as usize].observe(e);
            }
            EventKind::Allreduce { stage, .. } => {
                let mut s = owner_salt ^ (*stage as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let owner = (xorshift(&mut s) % shards as u64) as usize;
                for (k, prof) in profs.iter_mut().enumerate() {
                    if k == owner {
                        prof.observe(e);
                    } else {
                        prof.observe_ghost(e);
                    }
                }
            }
            _ => profs[ctrl_shard % shards].observe(e),
        }
    }
    profs.into_iter().map(|p| p.into_partial()).collect()
}

/// Folds the partials in a random binary grouping.
fn merge_randomly(mut parts: Vec<PartialReport>, mut seed: u64) -> PartialReport {
    while parts.len() > 1 {
        let i = (xorshift(&mut seed) % parts.len() as u64) as usize;
        let a = parts.swap_remove(i);
        let j = (xorshift(&mut seed) % parts.len() as u64) as usize;
        let b = parts.swap_remove(j);
        parts.push(a.merge(b));
    }
    parts.pop().expect("at least one partial")
}

fn assert_partial_identities(r: &varuna_obs::ProfileReport) -> Result<(), TestCaseError> {
    for lane in &r.lanes {
        prop_assert!(
            (lane.total() - r.makespan).abs() <= 1e-9 * r.makespan.max(1.0),
            "lane ({}, {}) total {} vs makespan {}",
            lane.stage,
            lane.replica,
            lane.total(),
            r.makespan
        );
        prop_assert!(lane.warmup >= 0.0 && lane.stall >= 0.0 && lane.drain >= 0.0);
    }
    let dt = &r.downtime;
    prop_assert!(
        (dt.useful_seconds + dt.downtime_seconds() - r.makespan).abs()
            <= 1e-9 * r.makespan.max(1.0),
        "useful {} + downtime {} != makespan {}",
        dt.useful_seconds,
        dt.downtime_seconds(),
        r.makespan
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole acceptance pin: streamed shards merged in a random
    /// grouping reproduce the post-hoc report byte-for-byte, with zero
    /// attribution violations, and every intermediate partial (each
    /// shard alone, and every merge step's operands) satisfies the
    /// sum-to-makespan and downtime identities.
    #[test]
    fn sharded_streams_merge_to_posthoc_bytes(
        p in 1usize..MAX_P + 1,
        d in 1usize..4,
        n_micro in 1usize..6,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        n_ctrl in 0usize..4,
        ctrl_dts in vec(0.1f64..5.0, 4..5),
        ctrl_secs in vec(0.0f64..3.0, 4..5),
        shards in 1usize..5,
        salt in any::<u64>(),
        merge_seed in any::<u64>(),
    ) {
        let replica_salt = salt;
        let owner_salt = salt.rotate_left(21);
        let ctrl_shard = (salt >> 7) as usize % 4;
        let ctrl: Vec<(f64, f64)> = (0..n_ctrl).map(|i| (ctrl_dts[i], ctrl_secs[i])).collect();
        let mut events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        garnish(&mut events, p, &ctrl);
        let posthoc = profile(&events).to_json();

        let parts = route(&events, shards, replica_salt, owner_salt, ctrl_shard);
        let mut owned_events = 0;
        for part in &parts {
            owned_events += part.events();
            prop_assert_eq!(part.counters().violations(), 0);
            assert_partial_identities(&part.report())?;
        }
        prop_assert_eq!(owned_events, events.len(), "broadcasts must count once");

        let merged = merge_randomly(parts, merge_seed);
        prop_assert_eq!(merged.counters().violations(), 0);
        assert_partial_identities(&merged.report())?;
        prop_assert_eq!(merged.into_report().to_json(), posthoc);
    }

    /// Every prefix of the stream — not just the end — reproduces the
    /// post-hoc profile of that prefix byte-for-byte, so the live
    /// `--follow` view is exact at all times, and its identities hold.
    #[test]
    fn every_prefix_matches_posthoc_bytes(
        p in 1usize..MAX_P + 1,
        n_micro in 1usize..4,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        n_ctrl in 0usize..3,
        ctrl_dts in vec(0.1f64..5.0, 3..4),
        ctrl_secs in vec(0.0f64..3.0, 3..4),
    ) {
        let ctrl: Vec<(f64, f64)> = (0..n_ctrl).map(|i| (ctrl_dts[i], ctrl_secs[i])).collect();
        let mut events = gpipe_events(p, 1, n_micro, &fwd[..p], &bwd[..p]);
        garnish(&mut events, p, &ctrl);
        let mut prof = StreamingProfiler::new(StreamConfig::default());
        for (i, e) in events.iter().enumerate() {
            prof.observe(e);
            let live = prof.snapshot().into_report();
            assert_partial_identities(&live)?;
            prop_assert_eq!(
                live.to_json(),
                profile(&events[..=i]).to_json(),
                "prefix of {} events diverged",
                i + 1
            );
        }
    }

    /// A finite reorder window larger than the longest interval is still
    /// exact on time-ordered streams, while keeping the pending buffer
    /// (and total resident state) bounded.
    #[test]
    fn finite_window_is_exact_and_bounded_on_ordered_streams(
        p in 1usize..MAX_P + 1,
        d in 1usize..3,
        n_micro in 2usize..8,
        fwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
        bwd in vec(0.01f64..1.0, MAX_P..MAX_P + 1),
    ) {
        let mut events = gpipe_events(p, d, n_micro, &fwd[..p], &bwd[..p]);
        garnish(&mut events, p, &[]);
        events.sort_by(|a, b| a.t_sim.total_cmp(&b.t_sim));
        let posthoc = profile(&events).to_json();

        // Longest interval: ops span at most max(fwd)+max(bwd); the
        // garnish allreduce lasts 0.5 s. Any window beyond that plus the
        // worst inversion between start-order and end-order is exact.
        let window = 4.0;
        let mut prof = StreamingProfiler::new(StreamConfig::windowed(window, usize::MAX));
        for e in &events {
            prof.observe(e);
        }
        prop_assert_eq!(prof.counters().violations(), 0);
        // Bounded: pending never holds more than the intervals that can
        // coexist inside one window, far below the full stream.
        let lanes = p * d;
        let per_lane_in_window = (window / fwd[..p]
            .iter()
            .chain(&bwd[..p])
            .cloned()
            .fold(f64::INFINITY, f64::min))
            .ceil() as usize
            + 2;
        prop_assert!(
            prof.counters().peak_pending <= lanes * per_lane_in_window + p,
            "peak pending {} not bounded by the window (lanes {}, per-lane {})",
            prof.counters().peak_pending,
            lanes,
            per_lane_in_window
        );
        prop_assert_eq!(prof.into_partial().into_report().to_json(), posthoc);
    }
}
