//! End-to-end checks that the `varuna-obs` profiler attributes emulator
//! time correctly: the span extraction matches the legacy
//! [`SpanCollector`] byte for byte, every lane's decomposition sums to
//! the makespan, blocking sends show up as send time, and the critical
//! path is internally consistent.

use varuna_exec::job::PlacedJob;
use varuna_exec::observe::SpanCollector;
use varuna_exec::pipeline::{simulate_minibatch_on_bus, SimOptions};
use varuna_exec::placement::Placement;
use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
use varuna_net::Topology;
use varuna_obs::{profile, EventBus, VecSink};
use varuna_sched::op::OpKind;
use varuna_sched::policy::{GreedyPolicy, SchedulePolicy};

fn job(p: usize, d: usize, n_micro: usize, m: usize) -> PlacedJob {
    let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_355m());
    PlacedJob::uniform_from_graph(
        &graph,
        &GpuModel::v100(),
        p,
        d,
        m,
        n_micro,
        Topology::commodity_1gpu(p * d),
        Placement::one_stage_per_gpu(p, d),
    )
}

fn greedy() -> impl Fn(usize, usize) -> Box<dyn SchedulePolicy> {
    |_, _| Box::new(GreedyPolicy)
}

/// Runs a job capturing the full event stream, returns (events, result).
fn captured(
    j: &PlacedJob,
    opts: &SimOptions,
) -> (
    Vec<varuna_obs::Event>,
    varuna_exec::pipeline::MinibatchResult,
) {
    let sink = VecSink::new();
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    let res = simulate_minibatch_on_bus(j, &greedy(), opts, &mut bus).expect("job completes");
    (sink.take(), res)
}

#[test]
fn profiler_spans_match_the_span_collector_exactly() {
    let j = job(3, 2, 6, 2);
    let opts = SimOptions::default();

    let collector = SpanCollector::new();
    let sink = VecSink::new();
    let mut bus = EventBus::with_sink(Box::new(collector.clone()));
    bus.add_sink(Box::new(sink.clone()));
    simulate_minibatch_on_bus(&j, &greedy(), &opts, &mut bus).expect("job completes");

    let legacy = collector.take();
    let derived = profile::spans(&sink.take());
    assert_eq!(legacy.len(), derived.len());
    for (l, d) in legacy.iter().zip(&derived) {
        assert_eq!(l.stage, d.stage);
        assert_eq!(l.replica, d.replica);
        assert_eq!(l.op.kind, OpKind::from_code(d.op).unwrap());
        assert_eq!(l.op.micro, d.micro);
        assert_eq!(l.start, d.start, "start drift on {l:?}");
        assert_eq!(l.end, d.end, "end drift on {l:?}");
    }
}

#[test]
fn every_lane_decomposes_to_the_makespan() {
    let j = job(4, 2, 8, 2);
    let (events, res) = captured(&j, &SimOptions::default());
    let r = profile(&events);

    assert_eq!(r.lanes.len(), 4 * 2, "one lane per (stage, replica)");
    for lane in &r.lanes {
        assert!(
            (lane.total() - r.makespan).abs() < 1e-9 * r.makespan.max(1.0),
            "lane ({}, {}) leaks: total {} vs makespan {}",
            lane.stage,
            lane.replica,
            lane.total(),
            r.makespan
        );
        assert_eq!(lane.ops, 8 * 2 + if lane.stage < 3 { 8 } else { 0 });
    }
    // The full stream was captured, so the profiler's pipeline boundary
    // is the emulator's.
    assert!(
        (r.pipeline_end - res.pipeline_time).abs() < 1e-9 * res.pipeline_time.max(1.0),
        "pipeline_end {} vs pipeline_time {}",
        r.pipeline_end,
        res.pipeline_time
    );
    // First stage warms up instantly; later stages wait for activations.
    for lane in &r.lanes {
        if lane.stage == 0 {
            assert_eq!(lane.warmup, 0.0);
        } else {
            assert!(lane.warmup > 0.0, "stage {} never waited", lane.stage);
        }
    }
}

#[test]
fn blocking_sends_surface_as_send_time() {
    let j = job(3, 1, 6, 2);
    let overlapped = SimOptions::deterministic();
    let blocking = SimOptions {
        blocking_sends: true,
        ..SimOptions::deterministic()
    };
    let (ev_overlap, _) = captured(&j, &overlapped);
    let (ev_block, _) = captured(&j, &blocking);
    let r_overlap = profile(&ev_overlap);
    let r_block = profile(&ev_block);

    // Overlapped communication: no lane is ever send-blocked.
    assert!(r_overlap.lanes.iter().all(|l| l.send == 0.0));
    // Blocking sends: the non-final stages serialize activations on the
    // GPU, and the time is attributed (and the identity still holds).
    for lane in &r_block.lanes {
        if lane.stage < 2 {
            assert!(lane.send > 0.0, "stage {} shows no send time", lane.stage);
        }
        assert!((lane.total() - r_block.makespan).abs() < 1e-9 * r_block.makespan.max(1.0));
    }
    // Serializing on the critical path can only slow the pipeline down.
    assert!(r_block.makespan >= r_overlap.makespan - 1e-9);
}

#[test]
fn the_critical_path_is_consistent_with_the_timeline() {
    let j = job(4, 1, 8, 2);
    let (events, _) = captured(&j, &SimOptions::deterministic());
    let r = profile(&events);
    let cp = r.critical_path.as_ref().expect("ops were profiled");

    assert!(cp.length <= r.makespan + 1e-9);
    assert!(
        (cp.compute_seconds + cp.wait_seconds - cp.length).abs() < 1e-9 * cp.length.max(1.0),
        "compute {} + wait {} != length {}",
        cp.compute_seconds,
        cp.wait_seconds,
        cp.length
    );
    assert!(cp.bottleneck_stage < 4);
    assert!(cp.ops > 0);
    // The bubble is a fraction of real idle time: nonnegative and less
    // than the whole makespan.
    assert!(r.bubble_fraction >= 0.0 && r.bubble_fraction < 1.0);
    for lane in &r.lanes {
        assert!(lane.bubble() >= 0.0);
    }
}
