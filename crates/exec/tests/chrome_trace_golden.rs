//! Golden-file test: the chrome-trace exporter's output for a tiny
//! 2-stage / 2-micro-batch schedule is valid JSON and byte-stable across
//! runs (and commits — regressions in event emission order, span timing,
//! or JSON formatting all show up as a golden diff).
//!
//! Regenerate with
//! `cargo test -p varuna-exec --test chrome_trace_golden -- --ignored`.

use varuna_exec::job::PlacedJob;
use varuna_exec::pipeline::{simulate_minibatch_on_bus, SimOptions};
use varuna_exec::placement::Placement;
use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
use varuna_net::Topology;
use varuna_obs::{chrome_trace_json, Event, EventBus, VecSink};
use varuna_sched::policy::GreedyPolicy;

const GOLDEN: &str = include_str!("golden/tiny_2stage_chrome_trace.json");

/// A deterministic tiny run: 2 stages, 1 replica, 2 micro-batches, no
/// compute jitter, fixed seed.
fn tiny_run_events() -> Vec<Event> {
    let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_355m());
    let job = PlacedJob::uniform_from_graph(
        &graph,
        &GpuModel::v100(),
        2,
        1,
        1,
        2,
        Topology::commodity_1gpu(2),
        Placement::one_stage_per_gpu(2, 1),
    );
    let opts = SimOptions {
        seed: 42,
        compute_jitter: 0.0,
        ..SimOptions::default()
    };
    let sink = VecSink::new();
    let mut bus = EventBus::with_sink(Box::new(sink.clone()));
    simulate_minibatch_on_bus(&job, &|_, _| Box::new(GreedyPolicy), &opts, &mut bus)
        .expect("the tiny job completes");
    sink.take()
}

#[test]
fn chrome_trace_matches_the_golden_file() {
    let trace = chrome_trace_json(&tiny_run_events());
    assert_eq!(
        trace.trim(),
        GOLDEN.trim(),
        "chrome trace drifted from the golden file; if the change is \
         intentional, regenerate with --ignored"
    );
}

#[test]
fn chrome_trace_is_valid_json_and_stable_across_runs() {
    let a = chrome_trace_json(&tiny_run_events());
    let b = chrome_trace_json(&tiny_run_events());
    assert_eq!(a, b, "two identical runs must export identical traces");

    let doc = serde_json::parse_value(&a).expect("exporter output parses as JSON");
    let events = doc
        .get("traceEvents")
        .expect("document has a traceEvents array");
    let events = events.as_seq_for("traceEvents").unwrap();
    assert!(!events.is_empty());
    // Two stages x two micro-batches: at least F+B per (stage, micro) as
    // "X" complete slices, plus the inter-stage transfers.
    let slices = events
        .iter()
        .filter(|e| e.get("ph") == Some(&serde::Value::Str("X".to_string())))
        .count();
    assert!(
        slices >= 8,
        "expected at least 8 complete slices, got {slices}"
    );
}

#[test]
#[ignore = "regenerates the golden file in the source tree"]
fn regenerate_golden() {
    let trace = chrome_trace_json(&tiny_run_events());
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/tiny_2stage_chrome_trace.json"
    );
    std::fs::write(path, trace).expect("write golden");
}
