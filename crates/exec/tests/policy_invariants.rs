//! Property-based invariants of the execution emulator, across policies
//! and job shapes.

use proptest::prelude::*;
use varuna_exec::job::PlacedJob;
use varuna_exec::pipeline::{simulate_minibatch, simulate_minibatch_on_bus, SimOptions};
use varuna_exec::placement::Placement;
use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
use varuna_net::Topology;
use varuna_obs::{EventBus, EventKind, VecSink};
use varuna_sched::op::OpKind;
use varuna_sched::policy::GreedyPolicy;

fn job(p: usize, d: usize, n_micro: usize, m: usize) -> PlacedJob {
    let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_355m());
    PlacedJob::uniform_from_graph(
        &graph,
        &GpuModel::v100(),
        p,
        d,
        m,
        n_micro,
        Topology::commodity_1gpu(p * d),
        Placement::one_stage_per_gpu(p, d),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mini-batch completes with exactly the right op counts, no
    /// overlapping spans on any GPU, and forwards in order — for arbitrary
    /// shapes, windows, and seeds.
    #[test]
    fn emulation_invariants_hold(
        p in 1usize..6,
        d in 1usize..4,
        n_micro in 1usize..12,
        m in 1usize..5,
        window in 1usize..6,
        seed in 0u64..1000,
    ) {
        let j = job(p, d, n_micro, m);
        let opts = SimOptions {
            record_trace: true,
            seed,
            stash_window_override: Some(window),
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&j, &|_, _| Box::new(GreedyPolicy), &opts)
            .expect("greedy completes any shape");

        for s in 0..p {
            for r in 0..d {
                let mut spans: Vec<_> = res
                    .trace
                    .iter()
                    .filter(|t| t.stage == s && t.replica == r)
                    .collect();
                spans.sort_by(|a, b| a.start.total_cmp(&b.start));
                // Exact op counts.
                let fwd = spans.iter().filter(|t| t.op.kind == OpKind::Forward).count();
                let bwd = spans.iter().filter(|t| t.op.kind == OpKind::Backward).count();
                prop_assert_eq!(fwd, n_micro);
                prop_assert_eq!(bwd, n_micro);
                // No overlap on one GPU.
                for w in spans.windows(2) {
                    prop_assert!(w[0].end <= w[1].start + 1e-9);
                }
                // Forwards strictly in micro-batch order.
                let fwd_order: Vec<usize> = spans
                    .iter()
                    .filter(|t| t.op.kind == OpKind::Forward)
                    .map(|t| t.op.micro)
                    .collect();
                let mut sorted = fwd_order.clone();
                sorted.sort_unstable();
                prop_assert_eq!(fwd_order, sorted);
                // Stash window respected.
                prop_assert!(res.peak_stash[s] <= window);
            }
        }
        prop_assert!(res.total_time.is_finite() && res.total_time > 0.0);
    }

    /// Throughput is monotone in resources: more micro-batches never lower
    /// per-micro-batch cost, and a fatter network never slows the batch.
    #[test]
    fn more_resources_never_hurt(
        p in 2usize..5,
        n_micro in 2usize..10,
    ) {
        let base = job(p, 1, n_micro, 2);
        let opts = SimOptions { compute_jitter: 0.0, ..SimOptions::default() };
        let t1 = simulate_minibatch(&base, &|_, _| Box::new(GreedyPolicy), &opts)
            .unwrap()
            .pipeline_time;
        // Double the micro-batches: per-micro-batch time must not rise.
        let bigger = job(p, 1, 2 * n_micro, 2);
        let t2 = simulate_minibatch(&bigger, &|_, _| Box::new(GreedyPolicy), &opts)
            .unwrap()
            .pipeline_time;
        // Network jitter is resampled per run, so allow a small sampling
        // slack on top of the expectation-level property.
        prop_assert!(
            t2 / (2.0 * n_micro as f64) <= 1.05 * t1 / n_micro as f64,
            "amortization failed: {} vs {}",
            t2 / (2.0 * n_micro as f64),
            t1 / n_micro as f64
        );
    }

    /// The emitted op event stream is well-formed: every `OpStart` has
    /// exactly one matching `OpEnd`, and per (stage, replica) GPU the op
    /// intervals never overlap.
    #[test]
    fn op_events_pair_up_and_never_overlap(
        p in 1usize..5,
        d in 1usize..4,
        n_micro in 1usize..10,
        seed in 0u64..1000,
    ) {
        let j = job(p, d, n_micro, 2);
        let opts = SimOptions { seed, ..SimOptions::default() };
        let sink = VecSink::new();
        let mut bus = EventBus::with_sink(Box::new(sink.clone()));
        simulate_minibatch_on_bus(&j, &|_, _| Box::new(GreedyPolicy), &opts, &mut bus)
            .expect("greedy completes any shape");
        let events = sink.take();

        // Pair every start with its end, per GPU.
        let mut open: std::collections::HashMap<(usize, usize), Vec<(char, usize)>> =
            std::collections::HashMap::new();
        let mut intervals: std::collections::HashMap<(usize, usize), Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for e in &events {
            match &e.kind {
                EventKind::OpStart { stage, replica, op, micro } => {
                    open.entry((*stage, *replica)).or_default().push((*op, *micro));
                }
                EventKind::OpEnd { stage, replica, op, micro, start } => {
                    let gpu = (*stage, *replica);
                    let opens = open.entry(gpu).or_default();
                    let pos = opens.iter().position(|&(o, m)| o == *op && m == *micro);
                    prop_assert!(pos.is_some(), "OpEnd without a matching OpStart: {e:?}");
                    opens.remove(pos.unwrap());
                    prop_assert!(*start <= e.t_sim, "op ends before it starts: {e:?}");
                    intervals.entry(gpu).or_default().push((*start, e.t_sim));
                }
                _ => {}
            }
        }
        for (gpu, opens) in &open {
            prop_assert!(opens.is_empty(), "unmatched OpStart on GPU {gpu:?}: {opens:?}");
        }
        // Every GPU completes each micro-batch's forward and backward
        // (recomputes are policy-dependent), and its ops never overlap.
        for s in 0..p {
            for r in 0..d {
                let ivs = intervals.get_mut(&(s, r)).expect("every GPU runs ops");
                prop_assert!(
                    ivs.len() >= 2 * n_micro && ivs.len() <= 3 * n_micro,
                    "GPU ({}, {}) ran {} ops for {} micro-batches",
                    s, r, ivs.len(), n_micro
                );
                ivs.sort_by(|a, b| a.0.total_cmp(&b.0));
                for w in ivs.windows(2) {
                    prop_assert!(
                        w[0].1 <= w[1].0 + 1e-9,
                        "overlapping ops on GPU ({}, {}): {:?} vs {:?}",
                        s, r, w[0], w[1]
                    );
                }
            }
        }
    }

    /// The bus adapter is faithful: spans collected through the event bus
    /// equal the legacy `record_trace` output exactly, order included.
    #[test]
    fn bus_spans_match_legacy_trace(seed in 0u64..500) {
        let j = job(3, 2, 6, 2);
        let legacy_opts = SimOptions { record_trace: true, seed, ..SimOptions::default() };
        let legacy = simulate_minibatch(&j, &|_, _| Box::new(GreedyPolicy), &legacy_opts).unwrap();

        let collector = varuna_exec::SpanCollector::new();
        let mut bus = EventBus::with_sink(Box::new(collector.clone()));
        let opts = SimOptions { seed, ..SimOptions::default() };
        simulate_minibatch_on_bus(&j, &|_, _| Box::new(GreedyPolicy), &opts, &mut bus).unwrap();
        prop_assert_eq!(collector.take(), legacy.trace);
    }

    /// Determinism: the same job and seed give bit-identical results.
    #[test]
    fn emulation_is_deterministic(seed in 0u64..500) {
        let j = job(3, 2, 6, 2);
        let opts = SimOptions { seed, ..SimOptions::default() };
        let a = simulate_minibatch(&j, &|_, _| Box::new(GreedyPolicy), &opts).unwrap();
        let b = simulate_minibatch(&j, &|_, _| Box::new(GreedyPolicy), &opts).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.stage_finish, b.stage_finish);
    }
}
