//! A deterministic time-ordered event queue.
//!
//! Events at equal timestamps pop in insertion order, so a simulation is a
//! pure function of its inputs and seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by (time, insertion sequence).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event;
        // ties break by insertion order (earlier seq first).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or negative.
    pub fn push(&mut self, time: f64, payload: E) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative"
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5.0, ());
        assert_eq!(q.peek_time(), Some(5.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
