//! Out-of-memory detection and stash-window derivation.
//!
//! A stage can only run forwards ahead of backwards while it has memory to
//! stash their input activations. This module converts a GPU memory
//! capacity into the per-stage *stash window* the scheduler must respect,
//! and rejects configurations that do not fit at all (the paper's "OOM"
//! entries in Table 6 and the minimum-`P` constraint of Section 4.1).

use varuna_models::config::TransformerConfig;
use varuna_models::memory::{pipedream_stage_memory, pipeline_stage_memory};

/// A configuration that cannot fit in GPU memory.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Bytes the stage needs even at the minimum window.
    pub needed: f64,
    /// Bytes available.
    pub capacity: f64,
    /// Human-readable context.
    pub what: String,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: needs {:.2} GiB but only {:.2} GiB available",
            self.what,
            self.needed / (1024.0 * 1024.0 * 1024.0),
            self.capacity / (1024.0 * 1024.0 * 1024.0)
        )
    }
}

impl std::error::Error for OomError {}

/// Computes the largest stash window a pipeline stage can afford on a GPU
/// with `capacity` bytes.
///
/// # Errors
///
/// Returns [`OomError`] when even a window of 1 does not fit.
pub fn stash_window(
    config: &TransformerConfig,
    params: u64,
    layers: usize,
    m: usize,
    capacity: f64,
    cpu_offload: bool,
) -> Result<usize, OomError> {
    let at = |w: usize| pipeline_stage_memory(config, params, layers, m, w, cpu_offload).total();
    let min = at(1);
    if min > capacity {
        return Err(OomError {
            needed: min,
            capacity,
            what: format!(
                "pipeline stage of {layers} layers ({:.2}B params) at m={m}",
                params as f64 / 1e9
            ),
        });
    }
    // Memory is affine in the window; solve directly and clamp.
    let per_window = at(2) - at(1);
    let window = if per_window <= 0.0 {
        usize::MAX
    } else {
        1 + ((capacity - min) / per_window) as usize
    };
    Ok(window)
}

/// Largest micro-batch size in `1..=m_max` for which the stage still fits
/// in `capacity` bytes (with at least a window of 1), or `None` when even
/// `m = 1` OOMs. Recovery paths walk down this value instead of failing a
/// morph outright when the chosen micro-batch no longer fits.
pub fn max_feasible_micro_batch(
    config: &TransformerConfig,
    params: u64,
    layers: usize,
    m_max: usize,
    capacity: f64,
    cpu_offload: bool,
) -> Option<usize> {
    (1..=m_max)
        .rev()
        .find(|&m| stash_window(config, params, layers, m, capacity, cpu_offload).is_ok())
}

/// Checks PipeDream's footprint (weight versions + stored activations) on a
/// GPU with `capacity` bytes.
///
/// # Errors
///
/// Returns [`OomError`] when the stage does not fit — which is the paper's
/// result for both GPT-2 models in Table 6.
pub fn check_pipedream(
    config: &TransformerConfig,
    params: u64,
    layers: usize,
    m: usize,
    p: usize,
    capacity: f64,
) -> Result<(), OomError> {
    let mem = pipedream_stage_memory(config, params, layers, m, p).total();
    if mem > capacity {
        return Err(OomError {
            needed: mem,
            capacity,
            what: format!("PipeDream stage of {layers} layers with {p} weight versions"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_models::ModelZoo;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn window_shrinks_as_stage_grows() {
        let c = ModelZoo::gpt2_8_3b();
        let w18 = stash_window(&c, c.total_params() / 18, 4, 4, 16.0 * GIB, false).unwrap();
        let w36 = stash_window(&c, c.total_params() / 36, 2, 4, 16.0 * GIB, false).unwrap();
        assert!(
            w36 > w18,
            "smaller stages afford bigger windows ({w36} vs {w18})"
        );
        assert!(
            w18 >= 18,
            "the paper's 18-stage config must support a full pipeline window"
        );
    }

    #[test]
    fn oversized_stage_reports_oom() {
        let c = ModelZoo::gpt2_8_3b();
        let err = stash_window(&c, c.total_params() / 4, 18, 4, 16.0 * GIB, false)
            .expect_err("8.3B over 4 stages cannot fit 16 GiB");
        assert!(err.needed > err.capacity);
        assert!(err.to_string().contains("GiB"));
    }

    #[test]
    fn cpu_offload_rescues_the_200b_config() {
        let c = ModelZoo::gpt2_200b();
        let params = c.total_params() / 102;
        assert!(stash_window(&c, params, 1, 1, 16.0 * GIB, false).is_err());
        let w = stash_window(&c, params, 1, 1, 16.0 * GIB, true).unwrap();
        assert!(
            w >= 102,
            "200B at m=1 with offload should support deep windows, got {w}"
        );
    }

    #[test]
    fn max_feasible_micro_batch_walks_down_to_fit() {
        let c = ModelZoo::gpt2_8_3b();
        let params = c.total_params() / 18;
        // m=4 fits for the paper's 18-stage split, so the cap is returned.
        assert_eq!(
            max_feasible_micro_batch(&c, params, 4, 4, 16.0 * GIB, false),
            Some(4)
        );
        // A 4-stage split of 8.3B cannot fit at any micro-batch size.
        assert_eq!(
            max_feasible_micro_batch(&c, c.total_params() / 4, 18, 8, 16.0 * GIB, false),
            None
        );
    }

    #[test]
    fn pipedream_ooms_on_both_table6_models() {
        let gib16 = 16.0 * GIB;
        let c25 = ModelZoo::gpt2_2_5b();
        assert!(check_pipedream(&c25, c25.total_params() / 9, 6, 4, 9, gib16).is_err());
        let c83 = ModelZoo::gpt2_8_3b();
        assert!(check_pipedream(&c83, c83.total_params() / 18, 4, 4, 18, gib16).is_err());
        // A small model fits fine, so the check is not vacuous.
        let small = ModelZoo::gpt2_355m();
        assert!(check_pipedream(&small, small.total_params() / 4, 6, 4, 4, gib16).is_ok());
    }
}
