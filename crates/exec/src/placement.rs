//! Mapping (stage, replica) to GPU endpoints.
//!
//! Varuna's manager "decides on the placement of the stages and replicas of
//! a job" (Section 4.6). The layout matters because adjacent pipeline
//! stages placed on the same multi-GPU VM communicate over PCIe/NVLink
//! instead of Ethernet, and co-located stages contend for the VM's NIC
//! during allreduce.

use serde::{Deserialize, Serialize};
use varuna_net::Endpoint;

/// A concrete assignment of every (stage, replica) pair to a GPU endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    p: usize,
    d: usize,
    /// `endpoints[r * p + s]` hosts stage `s` of replica `r`.
    endpoints: Vec<Endpoint>,
}

impl Placement {
    /// Builds a placement from an explicit endpoint table.
    ///
    /// # Panics
    ///
    /// Panics if the table has the wrong size or assigns one GPU twice.
    pub fn from_table(p: usize, d: usize, endpoints: Vec<Endpoint>) -> Self {
        assert_eq!(endpoints.len(), p * d, "placement table has wrong size");
        let mut seen = endpoints.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), p * d, "placement assigns a GPU twice");
        Placement { p, d, endpoints }
    }

    /// Pipeline-contiguous placement: replica `r`'s stages occupy GPUs
    /// `r*p .. r*p+p` in order. On 1-GPU VMs every pair is cross-VM; on
    /// multi-GPU VMs consecutive stages share a VM, which is how the paper
    /// runs 4-GPU NC24 VMs and DGX-2 nodes.
    pub fn one_stage_per_gpu(p: usize, d: usize) -> Self {
        Placement {
            p,
            d,
            endpoints: (0..p * d).collect(),
        }
    }

    /// Pipeline depth this placement was built for.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Replica count this placement was built for.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The GPU hosting `(stage, replica)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn endpoint(&self, stage: usize, replica: usize) -> Endpoint {
        assert!(
            stage < self.p && replica < self.d,
            "({stage},{replica}) out of range"
        );
        self.endpoints[replica * self.p + stage]
    }

    /// All endpoints of one stage across replicas — the data-parallel
    /// allreduce ring membership.
    pub fn stage_ring(&self, stage: usize) -> Vec<Endpoint> {
        (0..self.d).map(|r| self.endpoint(stage, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_placement_is_dense() {
        let p = Placement::one_stage_per_gpu(4, 3);
        assert_eq!(p.endpoint(0, 0), 0);
        assert_eq!(p.endpoint(3, 0), 3);
        assert_eq!(p.endpoint(0, 1), 4);
        assert_eq!(p.endpoint(2, 2), 10);
    }

    #[test]
    fn stage_ring_strides_by_p() {
        let p = Placement::one_stage_per_gpu(4, 3);
        assert_eq!(p.stage_ring(1), vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_endpoint_rejected() {
        let _ = Placement::from_table(2, 1, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_lookup_panics() {
        let p = Placement::one_stage_per_gpu(2, 2);
        let _ = p.endpoint(2, 0);
    }
}
