//! The mini-batch simulation driver.
//!
//! Executes one mini-batch of a [`PlacedJob`]: `N_m` micro-batches flow
//! through `P` stages on every one of the `D` replicas, activation and
//! gradient messages traverse the topology with latency/jitter and NIC
//! contention, and the mini-batch ends with the per-stage data-parallel
//! gradient allreduce plus the tied-parameter sync (the purple region at
//! the right of the paper's Figure 7 Gantt chart).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use varuna_net::collective::{allreduce_time, AllreduceSpec};
use varuna_net::jitter::sample_jitter;
use varuna_net::transfer::fair_share;
use varuna_obs::{Event, EventBus, EventKind};

use crate::engine::EventQueue;
use crate::job::PlacedJob;
use crate::observe::SpanCollector;
use varuna_sched::op::{Op, OpKind, OpSpan};
use varuna_sched::policy::{PolicyFactory, StageView};

/// Options controlling one simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record per-op spans (needed for Gantt charts; costs memory).
    pub record_trace: bool,
    /// RNG seed for jitter sampling.
    pub seed: u64,
    /// If true the sender GPU stays busy for the serialization time of each
    /// send — models schedules/runtimes that do not overlap communication
    /// with compute.
    pub blocking_sends: bool,
    /// Whether backward requires rematerialized activations (true for
    /// recompute-based systems; false for PipeDream, which stores them).
    pub recompute: bool,
    /// Overrides every stage's stash window when set.
    pub stash_window_override: Option<usize>,
    /// Lognormal sigma of per-op compute-time variation (mean-preserving).
    /// Real GPU kernel times vary run to run, and spot VMs stutter; strict
    /// schedules propagate these hiccups while work-conserving ones absorb
    /// them.
    pub compute_jitter: f64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            record_trace: false,
            seed: 0,
            blocking_sends: false,
            recompute: true,
            stash_window_override: None,
            compute_jitter: 0.06,
        }
    }
}

impl SimOptions {
    /// Options for a fully deterministic emulation: zero compute jitter and
    /// a fixed seed, no trace recording. This is the configuration the
    /// planner uses when scoring candidate `(p, d, m)` configs — the paper's
    /// simulator predicts mean mini-batch time, so jitter is noise there.
    pub fn deterministic() -> Self {
        SimOptions {
            compute_jitter: 0.0,
            ..SimOptions::default()
        }
    }
}

/// Outcome of one simulated mini-batch.
#[derive(Debug, Clone)]
pub struct MinibatchResult {
    /// End-to-end wall-clock time of the mini-batch, seconds.
    pub total_time: f64,
    /// Time until the last backward completed (before sync), seconds.
    pub pipeline_time: f64,
    /// Longest per-stage sync tail (allreduce + shared-param sync +
    /// optimizer offload), seconds.
    pub sync_tail: f64,
    /// Per-op spans (empty unless `record_trace`).
    pub trace: Vec<OpSpan>,
    /// Per-stage peak input-activation stash (max over replicas).
    pub peak_stash: Vec<usize>,
    /// Per-stage, per-replica-averaged GPU busy time, seconds.
    pub busy_time: Vec<f64>,
    /// Per-stage completion time of the last backward (max over replicas).
    pub stage_finish: Vec<f64>,
    /// Per-stage gradient allreduce duration, seconds.
    pub allreduce: Vec<f64>,
}

impl MinibatchResult {
    /// Mean GPU utilization over the whole mini-batch.
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.busy_time.iter().sum();
        busy / (self.busy_time.len() as f64 * self.total_time)
    }
}

/// Simulation failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No stage could make progress but the mini-batch is unfinished —
    /// the schedule policy is incorrect for this job shape.
    Deadlock {
        /// Stages that still have unfinished backwards.
        unfinished_stages: Vec<usize>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { unfinished_stages } => {
                write!(
                    f,
                    "pipeline deadlock; unfinished stages: {unfinished_stages:?}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy)]
enum Ev {
    OpDone {
        s: usize,
        r: usize,
        op: Op,
        started: f64,
    },
    ActArrive {
        s: usize,
        r: usize,
    },
    GradArrive {
        s: usize,
        r: usize,
        mb: usize,
    },
    SendDone {
        s: usize,
        r: usize,
    },
}

struct StageRt {
    busy: bool,
    forwards_done: usize,
    acts_arrived: usize,
    grads_ready: Vec<bool>,
    recomputes_done: Vec<bool>,
    backwards_done: Vec<bool>,
    backwards_count: usize,
    live_acts: Option<usize>,
    pending_recompute: Option<usize>,
    stash_len: usize,
    peak_stash: usize,
    window: usize,
    last_bwd_end: f64,
    busy_time: f64,
    /// FIFO enforcement: last delivery time on the activation channel from
    /// the previous stage and the gradient channel from the next stage.
    chan_act_last: f64,
    chan_grad_last: f64,
    policy: Box<dyn varuna_sched::policy::SchedulePolicy>,
}

/// Simulates one mini-batch of `job` under the schedule produced by
/// `policies`.
///
/// This is the bus-free entry point: it runs
/// [`simulate_minibatch_on_bus`] over a private [`EventBus`] and, when
/// [`SimOptions::record_trace`] is set, rebuilds the legacy per-op trace
/// through a [`SpanCollector`] sink (same spans, same order as the old
/// built-in recorder).
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the policy wedges the pipeline.
pub fn simulate_minibatch(
    job: &PlacedJob,
    policies: &PolicyFactory<'_>,
    opts: &SimOptions,
) -> Result<MinibatchResult, SimError> {
    let mut bus = EventBus::new();
    let collector = if opts.record_trace {
        let c = SpanCollector::new();
        bus.add_sink(Box::new(c.clone()));
        Some(c)
    } else {
        None
    };
    let mut res = simulate_minibatch_on_bus(job, policies, opts, &mut bus)?;
    if let Some(c) = collector {
        res.trace = c.take();
    }
    Ok(res)
}

/// Simulates one mini-batch, reporting every op, transfer, and allreduce
/// through `bus` as [`varuna_obs::Event`]s (source `Exec`).
///
/// The returned [`MinibatchResult::trace`] is always empty here — attach a
/// [`SpanCollector`] to the bus to rebuild spans (that is exactly what
/// [`simulate_minibatch`] does). With no enabled sink attached, event
/// payloads are never constructed and the emulator runs within noise of
/// its bus-free wall-clock.
///
/// # Errors
///
/// Returns [`SimError::Deadlock`] if the policy wedges the pipeline.
pub fn simulate_minibatch_on_bus(
    job: &PlacedJob,
    policies: &PolicyFactory<'_>,
    opts: &SimOptions,
    bus: &mut EventBus,
) -> Result<MinibatchResult, SimError> {
    job.validate();
    let p = job.p();
    let d = job.d;
    let n = job.n_micro;
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let idx = |s: usize, r: usize| r * p + s;
    let mut st: Vec<StageRt> = Vec::with_capacity(p * d);
    for r in 0..d {
        for s in 0..p {
            let window = opts
                .stash_window_override
                .unwrap_or(job.stages[s].stash_window)
                .max(1);
            st.push(StageRt {
                busy: false,
                forwards_done: 0,
                acts_arrived: if s == 0 { n } else { 0 },
                grads_ready: vec![false; n],
                recomputes_done: vec![false; n],
                backwards_done: vec![false; n],
                backwards_count: 0,
                live_acts: None,
                pending_recompute: None,
                stash_len: 0,
                peak_stash: 0,
                window,
                last_bwd_end: 0.0,
                busy_time: 0.0,
                chan_act_last: 0.0,
                chan_grad_last: 0.0,
                policy: policies(s, r),
            });
        }
    }
    // Reorder: built r-major with s inner, consistent with idx.
    // (idx(s, r) = r * p + s — matches the push order above.)

    let mut q: EventQueue<Ev> = EventQueue::new();
    // In-flight inter-node flows per node, for NIC fair sharing.
    let mut inflight: Vec<usize> = vec![0; job.topology.num_nodes()];
    let mut done_pairs = 0usize;

    // Dispatch helper effects are implemented inline in the event loop to
    // appease the borrow checker; `dispatch` computes the chosen op.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        st: &mut [StageRt],
        job: &PlacedJob,
        opts: &SimOptions,
        p: usize,
        s: usize,
        r: usize,
        now: f64,
        q: &mut EventQueue<Ev>,
        rng: &mut StdRng,
        bus: &mut EventBus,
    ) {
        let i = r * p + s;
        if st[i].busy {
            return;
        }
        let op = {
            // Destructure so the policy (mutable) and the state it views
            // (immutable) borrow disjoint fields.
            let StageRt {
                policy,
                forwards_done,
                acts_arrived,
                grads_ready,
                recomputes_done,
                backwards_done,
                live_acts,
                pending_recompute,
                stash_len,
                window,
                ..
            } = &mut st[i];
            let view = StageView {
                stage: s,
                p,
                last_stage: s == p - 1,
                n_micro: job.n_micro,
                forwards_done: *forwards_done,
                next_forward_ready: *forwards_done < *acts_arrived && *stash_len < *window,
                grads_ready,
                recomputes_done,
                backwards_done,
                live_acts: *live_acts,
                pending_recompute: *pending_recompute,
                stash_len: *stash_len,
                stash_window: *window,
                recompute_enabled: opts.recompute,
            };
            let Some(op) = policy.pick(&view) else {
                return;
            };
            assert!(
                view.is_legal(op),
                "policy picked illegal op {op:?} at stage {s} replica {r}"
            );
            op
        };
        let stutter = job.stutter_of(s, r);
        let spec = &job.stages[s];
        // Mean-preserving lognormal kernel-time variation.
        let noise = if opts.compute_jitter > 0.0 {
            let sigma = opts.compute_jitter;
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (sigma * normal - sigma * sigma / 2.0).exp()
        } else {
            1.0
        };
        let dur = stutter
            * noise
            * match op.kind {
                OpKind::Forward => spec.fwd_time,
                OpKind::Recompute => spec.recompute_time,
                OpKind::Backward => spec.bwd_time,
            };
        let stage = &mut st[i];
        // Starting any op invalidates live activations unless the op is
        // the backward consuming them.
        if !(op.kind == OpKind::Backward && stage.live_acts == Some(op.micro)) {
            stage.live_acts = None;
        }
        stage.busy = true;
        stage.busy_time += dur;
        q.push(
            now + dur,
            Ev::OpDone {
                s,
                r,
                op,
                started: now,
            },
        );
        bus.emit_with(|| {
            Event::exec(
                now,
                EventKind::OpStart {
                    stage: s,
                    replica: r,
                    op: op.kind.code(),
                    micro: op.micro,
                },
            )
        });
    }

    // Kick off all first-stage (and trivially-ready) dispatches.
    for r in 0..d {
        for s in 0..p {
            dispatch(&mut st, job, opts, p, s, r, 0.0, &mut q, &mut rng, bus);
        }
    }

    let mut last_time = 0.0;
    while let Some((now, ev)) = q.pop() {
        last_time = now;
        match ev {
            Ev::OpDone { s, r, op, started } => {
                let i = idx(s, r);
                // Emitted exactly where the legacy recorder pushed spans,
                // so a SpanCollector reproduces the old trace verbatim.
                bus.emit_with(|| {
                    Event::exec(
                        now,
                        EventKind::OpEnd {
                            stage: s,
                            replica: r,
                            op: op.kind.code(),
                            micro: op.micro,
                            start: started,
                        },
                    )
                });
                st[i].busy = false;
                match op.kind {
                    OpKind::Forward => {
                        st[i].forwards_done += 1;
                        st[i].stash_len += 1;
                        st[i].peak_stash = st[i].peak_stash.max(st[i].stash_len);
                        st[i].live_acts = Some(op.micro);
                        if s == p - 1 {
                            // Loss gradient is locally available.
                            st[i].grads_ready[op.micro] = true;
                        } else {
                            // Send activations to the next stage.
                            let (delay, ser) = transfer(
                                job,
                                &mut inflight,
                                &mut rng,
                                s,
                                r,
                                s + 1,
                                job.stages[s].act_bytes,
                            );
                            bus.emit_with(|| {
                                Event::exec(
                                    now,
                                    EventKind::Transfer {
                                        from_stage: s,
                                        to_stage: s + 1,
                                        replica: r,
                                        micro: op.micro,
                                        bytes: job.stages[s].act_bytes,
                                        seconds: delay,
                                    },
                                )
                            });
                            let j = idx(s + 1, r);
                            let arrive = (now + delay).max(st[j].chan_act_last + 1e-9);
                            st[j].chan_act_last = arrive;
                            q.push(arrive, Ev::ActArrive { s: s + 1, r });
                            if opts.blocking_sends {
                                st[i].busy = true;
                                st[i].busy_time += ser;
                                bus.emit_with(|| {
                                    Event::exec(
                                        now,
                                        EventKind::SendBusy {
                                            stage: s,
                                            replica: r,
                                            micro: op.micro,
                                            seconds: ser,
                                        },
                                    )
                                });
                                q.push(now + ser, Ev::SendDone { s, r });
                            }
                        }
                    }
                    OpKind::Recompute => {
                        st[i].recomputes_done[op.micro] = true;
                        st[i].pending_recompute = Some(op.micro);
                        st[i].live_acts = Some(op.micro);
                    }
                    OpKind::Backward => {
                        st[i].backwards_done[op.micro] = true;
                        st[i].backwards_count += 1;
                        st[i].stash_len = st[i].stash_len.saturating_sub(1);
                        if st[i].pending_recompute == Some(op.micro) {
                            st[i].pending_recompute = None;
                        }
                        st[i].live_acts = None;
                        st[i].last_bwd_end = now;
                        if st[i].backwards_count == n {
                            done_pairs += 1;
                        }
                        if s > 0 {
                            let (delay, ser) = transfer(
                                job,
                                &mut inflight,
                                &mut rng,
                                s,
                                r,
                                s - 1,
                                job.stages[s - 1].act_bytes,
                            );
                            bus.emit_with(|| {
                                Event::exec(
                                    now,
                                    EventKind::Transfer {
                                        from_stage: s,
                                        to_stage: s - 1,
                                        replica: r,
                                        micro: op.micro,
                                        bytes: job.stages[s - 1].act_bytes,
                                        seconds: delay,
                                    },
                                )
                            });
                            let j = idx(s - 1, r);
                            let arrive = (now + delay).max(st[j].chan_grad_last + 1e-9);
                            st[j].chan_grad_last = arrive;
                            q.push(
                                arrive,
                                Ev::GradArrive {
                                    s: s - 1,
                                    r,
                                    mb: op.micro,
                                },
                            );
                            if opts.blocking_sends {
                                st[i].busy = true;
                                st[i].busy_time += ser;
                                bus.emit_with(|| {
                                    Event::exec(
                                        now,
                                        EventKind::SendBusy {
                                            stage: s,
                                            replica: r,
                                            micro: op.micro,
                                            seconds: ser,
                                        },
                                    )
                                });
                                q.push(now + ser, Ev::SendDone { s, r });
                            }
                        }
                    }
                }
                if !st[i].busy {
                    dispatch(&mut st, job, opts, p, s, r, now, &mut q, &mut rng, bus);
                }
            }
            Ev::ActArrive { s, r } => {
                release_flow(job, &mut inflight, s - 1, r, s);
                let i = idx(s, r);
                st[i].acts_arrived += 1;
                dispatch(&mut st, job, opts, p, s, r, now, &mut q, &mut rng, bus);
            }
            Ev::GradArrive { s, r, mb } => {
                release_flow(job, &mut inflight, s + 1, r, s);
                let i = idx(s, r);
                st[i].grads_ready[mb] = true;
                dispatch(&mut st, job, opts, p, s, r, now, &mut q, &mut rng, bus);
            }
            Ev::SendDone { s, r } => {
                let i = idx(s, r);
                st[i].busy = false;
                dispatch(&mut st, job, opts, p, s, r, now, &mut q, &mut rng, bus);
            }
        }
    }

    if done_pairs != p * d {
        let unfinished: Vec<usize> = (0..p)
            .filter(|&s| (0..d).any(|r| st[idx(s, r)].backwards_count < n))
            .collect();
        return Err(SimError::Deadlock {
            unfinished_stages: unfinished,
        });
    }

    // Sync phase: per-stage data-parallel allreduce, tied-parameter sync,
    // optional optimizer-state offload.
    let mut stage_finish = vec![0.0f64; p];
    let mut peak_stash = vec![0usize; p];
    let mut busy_time = vec![0.0f64; p];
    for s in 0..p {
        for r in 0..d {
            let i = idx(s, r);
            stage_finish[s] = stage_finish[s].max(st[i].last_bwd_end);
            peak_stash[s] = peak_stash[s].max(st[i].peak_stash);
            busy_time[s] += st[i].busy_time;
        }
        busy_time[s] /= d as f64;
    }
    let pipeline_time = last_time;

    // How many job endpoints share each node (concurrent allreduce rings
    // contending for one NIC).
    let mut per_node = vec![0usize; job.topology.num_nodes()];
    for r in 0..d {
        for s in 0..p {
            per_node[job.topology.node_of(job.placement.endpoint(s, r))] += 1;
        }
    }

    let mut allreduce = vec![0.0f64; p];
    let mut total_time: f64 = pipeline_time;
    for s in 0..p {
        let ring = job.placement.stage_ring(s);
        let cross_node = ring.windows(2).any(|w| !job.topology.same_node(w[0], w[1]))
            || (ring.len() > 1 && !job.topology.same_node(ring[0], *ring.last().unwrap()));
        let link = if cross_node || ring.len() == 1 {
            job.topology.inter_link()
        } else {
            job.topology.intra_link()
        };
        let in_flight = ring
            .iter()
            .map(|&e| per_node[job.topology.node_of(e)])
            .max()
            .unwrap_or(1);
        let ar = allreduce_time(
            AllreduceSpec {
                bytes: job.stages[s].grad_bytes,
                ring_size: d,
                in_flight,
            },
            link,
        );
        allreduce[s] = ar;
        if d > 1 {
            bus.emit_with(|| {
                Event::exec(
                    stage_finish[s] + ar,
                    EventKind::Allreduce {
                        stage: s,
                        bytes: job.stages[s].grad_bytes,
                        ring: d,
                        seconds: ar,
                    },
                )
            });
        }
        let mut tail = ar;
        // Tied-parameter sync between the first and last stage of each
        // replica (ring of 2 over the inter-stage link).
        if job.shared_sync_bytes > 0.0 && p > 1 && (s == 0 || s == p - 1) {
            let e0 = job.placement.endpoint(0, 0);
            let e1 = job.placement.endpoint(p - 1, 0);
            let link01 = job.topology.link_between(e0, e1);
            tail += allreduce_time(
                AllreduceSpec {
                    bytes: job.shared_sync_bytes,
                    ring_size: 2,
                    in_flight: 1,
                },
                link01,
            );
        }
        if let Some(bytes) = job.offload_bytes {
            // Gradients out, updated fp16 weights back, over PCIe.
            tail += bytes / 12.0e9;
        }
        total_time = total_time.max(stage_finish[s] + tail);
    }
    let sync_tail = total_time - pipeline_time;

    Ok(MinibatchResult {
        total_time,
        pipeline_time,
        sync_tail,
        trace: Vec::new(),
        peak_stash,
        busy_time,
        stage_finish,
        allreduce,
    })
}

/// Computes (total delivery delay, serialization time) for a message of
/// `bytes` from `(s_from, r)` to `(s_to, r)`, updating NIC in-flight
/// bookkeeping approximately (contention is sampled at send time).
fn transfer(
    job: &PlacedJob,
    inflight: &mut [usize],
    rng: &mut StdRng,
    s_from: usize,
    r: usize,
    s_to: usize,
    bytes: f64,
) -> (f64, f64) {
    let src = job.placement.endpoint(s_from, r);
    let dst = job.placement.endpoint(s_to, r);
    let link = job.topology.link_between(src, dst);
    let same = job.topology.same_node(src, dst);
    let node = job.topology.node_of(src);
    let flows = if same {
        1
    } else {
        // Contention is sampled at send time; the matching decrement
        // happens when the message is delivered.
        inflight[node] += 1;
        inflight[node]
    };
    let bottleneck = if same {
        link.bandwidth
    } else {
        job.topology.nic_bandwidth()
    };
    let bw = link.bandwidth.min(fair_share(bottleneck, flows));
    let ser = bytes / bw;
    let jitter = sample_jitter(&link.jitter, rng);
    (link.latency + jitter + ser, ser)
}

/// Releases the NIC slot taken by a delivered cross-node message sent from
/// `(s_from, r)` to `(s_to, r)`.
fn release_flow(job: &PlacedJob, inflight: &mut [usize], s_from: usize, r: usize, s_to: usize) {
    let src = job.placement.endpoint(s_from, r);
    let dst = job.placement.endpoint(s_to, r);
    if !job.topology.same_node(src, dst) {
        let node = job.topology.node_of(src);
        inflight[node] = inflight[node].saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;
    use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
    use varuna_net::Topology;
    use varuna_sched::policy::GreedyPolicy;

    fn small_job(p: usize, d: usize, n_micro: usize) -> PlacedJob {
        let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_2_5b());
        PlacedJob::uniform_from_graph(
            &graph,
            &GpuModel::v100(),
            p,
            d,
            2,
            n_micro,
            Topology::commodity_1gpu(p * d),
            Placement::one_stage_per_gpu(p, d),
        )
    }

    fn greedy() -> Box<dyn Fn(usize, usize) -> Box<dyn varuna_sched::policy::SchedulePolicy>> {
        Box::new(|_, _| Box::new(GreedyPolicy))
    }

    #[test]
    fn single_stage_runs_all_microbatches_serially() {
        let job = small_job(1, 1, 4);
        // Disable kernel-time noise so the exact-time assertion holds.
        let opts = SimOptions {
            compute_jitter: 0.0,
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&job, &*greedy(), &opts).unwrap();
        // One stage: F then B per micro-batch (live activations, no
        // recompute needed when alternating).
        let expected = 4.0 * (job.stages[0].fwd_time + job.stages[0].bwd_time);
        assert!(
            (res.pipeline_time - expected).abs() / expected < 1e-6,
            "pipeline {} vs expected {expected}",
            res.pipeline_time
        );
        assert_eq!(res.peak_stash, vec![1]);
    }

    #[test]
    fn pipeline_time_exceeds_ideal_by_bubble_only() {
        let job = small_job(4, 1, 16);
        let res = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        // Ideal per-stage compute: N * (F + R + B) = N * 4F.
        let per_stage = 16.0 * (job.stages[0].fwd_time * 4.0);
        assert!(res.pipeline_time > per_stage);
        // The bubble should be bounded (well under 2x for 16 micro-batches
        // over 4 stages).
        assert!(
            res.pipeline_time < 1.6 * per_stage,
            "pipeline {} vs per-stage work {per_stage}",
            res.pipeline_time
        );
    }

    #[test]
    fn trace_is_complete_and_well_formed() {
        let job = small_job(3, 1, 5);
        let opts = SimOptions {
            record_trace: true,
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&job, &*greedy(), &opts).unwrap();
        // Forwards and backwards: n per stage. Last stage never recomputes
        // under the greedy policy (alternating F/B keeps activations live).
        let fwd = res
            .trace
            .iter()
            .filter(|t| t.op.kind == OpKind::Forward)
            .count();
        let bwd = res
            .trace
            .iter()
            .filter(|t| t.op.kind == OpKind::Backward)
            .count();
        assert_eq!(fwd, 3 * 5);
        assert_eq!(bwd, 3 * 5);
        let last_stage_rec = res
            .trace
            .iter()
            .filter(|t| t.stage == 2 && t.op.kind == OpKind::Recompute)
            .count();
        assert_eq!(last_stage_rec, 0, "last stage must not recompute");
        // Spans on one GPU never overlap.
        let mut spans: Vec<&OpSpan> = res.trace.iter().filter(|t| t.stage == 1).collect();
        spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in spans.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let job = small_job(4, 2, 8);
        let a = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        let b = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        assert_eq!(a.total_time, b.total_time);
        let c = simulate_minibatch(
            &job,
            &*greedy(),
            &SimOptions {
                seed: 99,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert_ne!(
            a.total_time, c.total_time,
            "different jitter seeds must differ"
        );
    }

    #[test]
    fn data_parallel_adds_allreduce_tail() {
        let j1 = small_job(4, 1, 8);
        let j4 = small_job(4, 4, 8);
        let r1 = simulate_minibatch(&j1, &*greedy(), &SimOptions::default()).unwrap();
        let r4 = simulate_minibatch(&j4, &*greedy(), &SimOptions::default()).unwrap();
        assert_eq!(r1.allreduce, vec![0.0; 4], "D=1 needs no allreduce");
        assert!(r4.allreduce.iter().all(|&t| t > 0.0));
        assert!(r4.sync_tail > 0.0);
    }

    #[test]
    fn stash_window_backpressure_limits_peak_stash() {
        let job = small_job(4, 1, 12);
        let opts = SimOptions {
            stash_window_override: Some(2),
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&job, &*greedy(), &opts).unwrap();
        assert!(
            res.peak_stash.iter().all(|&s| s <= 2),
            "stash {:?}",
            res.peak_stash
        );
    }

    #[test]
    fn stutter_slows_the_whole_pipeline() {
        let mut job = small_job(4, 1, 8);
        let base = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        job.stutter = vec![1.0, 1.0, 1.3, 1.0];
        let slow = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        assert!(
            slow.pipeline_time > 1.1 * base.pipeline_time,
            "one 30% stutterer should slow the sync pipeline"
        );
    }

    #[test]
    fn blocking_sends_are_slower() {
        let job = small_job(4, 1, 16);
        let a = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        let b = simulate_minibatch(
            &job,
            &*greedy(),
            &SimOptions {
                blocking_sends: true,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(b.pipeline_time > a.pipeline_time);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let job = small_job(4, 1, 16);
        let res = simulate_minibatch(&job, &*greedy(), &SimOptions::default()).unwrap();
        let u = res.utilization();
        assert!(u > 0.3 && u <= 1.0, "utilization {u}");
    }
}
