//! Stage specifications and placed jobs: the emulator's input.

use serde::{Deserialize, Serialize};
use varuna_models::efficiency::GpuModel;
use varuna_models::CutpointGraph;
use varuna_net::Topology;

use crate::placement::Placement;

/// Per-stage costs of one pipeline stage, for one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Forward compute time, seconds (healthy GPU).
    pub fwd_time: f64,
    /// Backward compute time, seconds.
    pub bwd_time: f64,
    /// Recompute time, seconds (≈ forward).
    pub recompute_time: f64,
    /// Boundary activation bytes sent to the next stage per micro-batch.
    pub act_bytes: f64,
    /// Data-parallel gradient allreduce payload (fp16 gradients).
    pub grad_bytes: f64,
    /// Parameters owned by the stage.
    pub params: u64,
    /// Transformer blocks in the stage.
    pub layers: usize,
    /// Maximum input-activation stashes GPU memory allows (forward-ahead
    /// window); `usize::MAX` when memory is not the binding constraint.
    pub stash_window: usize,
}

/// A fully specified training job ready to simulate.
#[derive(Debug, Clone)]
pub struct PlacedJob {
    /// Pipeline stages, in order.
    pub stages: Vec<StageSpec>,
    /// Data-parallel replicas per stage.
    pub d: usize,
    /// Micro-batch size.
    pub m: usize,
    /// Micro-batches per replica per mini-batch.
    pub n_micro: usize,
    /// The fabric the job runs on.
    pub topology: Topology,
    /// GPU assignment.
    pub placement: Placement,
    /// Tied-parameter sync payload between first and last stage per
    /// replica, bytes (0 = no shared parameters).
    pub shared_sync_bytes: f64,
    /// Bytes per stage moved to/from CPU at mini-batch end when optimizer
    /// state is offloaded (the 200B configuration); `None` = resident.
    pub offload_bytes: Option<f64>,
    /// Per-endpoint compute slowdown factors (fail-stutter); empty = all
    /// healthy.
    pub stutter: Vec<f64>,
}

impl PlacedJob {
    /// Pipeline depth `P`.
    pub fn p(&self) -> usize {
        self.stages.len()
    }

    /// Total GPUs used: `P × D`.
    pub fn gpus(&self) -> usize {
        self.p() * self.d
    }

    /// Examples per mini-batch: `m × N_m × D`.
    pub fn minibatch_examples(&self) -> usize {
        self.m * self.n_micro * self.d
    }

    /// Compute slowdown of the GPU hosting `(stage, replica)`.
    pub fn stutter_of(&self, stage: usize, replica: usize) -> f64 {
        let e = self.placement.endpoint(stage, replica);
        self.stutter.get(e).copied().unwrap_or(1.0)
    }

    /// Checks shape invariants, returning a description of the first
    /// violation instead of panicking — the form recovery paths use to
    /// reject a candidate configuration without aborting the run.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the job is inconsistent (zero
    /// stages/replicas/micro-batches, a topology with too few GPUs, or a
    /// placement built for a different shape).
    pub fn try_validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("job needs at least one stage".to_string());
        }
        if self.d == 0 {
            return Err("job needs at least one replica".to_string());
        }
        if self.n_micro == 0 {
            return Err("job needs at least one micro-batch".to_string());
        }
        if self.m == 0 {
            return Err("micro-batch size must be positive".to_string());
        }
        if self.topology.num_gpus() < self.gpus() {
            return Err(format!(
                "topology has {} GPUs but the job needs {}",
                self.topology.num_gpus(),
                self.gpus()
            ));
        }
        if self.placement.p() != self.p() {
            return Err(format!(
                "placement was built for pipeline depth {} but the job has {}",
                self.placement.p(),
                self.p()
            ));
        }
        if self.placement.d() < self.d {
            return Err("placement has too few replicas".to_string());
        }
        Ok(())
    }

    /// Validates shape invariants.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent job (zero stages/replicas/micro-batches or
    /// a topology with too few GPUs). Use [`PlacedJob::try_validate`] where
    /// a recoverable check is needed.
    pub fn validate(&self) {
        if let Err(why) = self.try_validate() {
            panic!("{why}");
        }
    }

    /// Builds a job by splitting a cut-point graph into `p` stages of
    /// (nearly) equal cut-point count — the naive split used by tests and
    /// baselines. Varuna's planner produces compute-balanced splits
    /// instead.
    #[allow(clippy::too_many_arguments)]
    pub fn uniform_from_graph(
        graph: &CutpointGraph,
        gpu: &GpuModel,
        p: usize,
        d: usize,
        m: usize,
        n_micro: usize,
        topology: Topology,
        placement: Placement,
    ) -> Self {
        assert!(p >= 1 && p <= graph.len(), "pipeline depth out of range");
        let hidden = graph.config.hidden;
        let k = graph.len();
        let mut stages = Vec::with_capacity(p);
        for s in 0..p {
            let lo = s * k / p;
            let hi = (s + 1) * k / p;
            let fwd_flops = graph.range_fwd_flops(lo, hi) * m as f64;
            let params = graph.range_params(lo, hi);
            let fwd = gpu.compute_time(fwd_flops, m, hidden);
            stages.push(StageSpec {
                fwd_time: fwd,
                bwd_time: 2.0 * fwd,
                recompute_time: fwd,
                act_bytes: graph.config.boundary_activation_bytes() * m as f64,
                grad_bytes: params as f64 * 2.0,
                params,
                layers: hi - lo,
                stash_window: usize::MAX,
            });
        }
        let shared_sync_bytes = graph.shared.iter().map(|sp| sp.params as f64 * 2.0).sum();
        PlacedJob {
            stages,
            d,
            m,
            n_micro,
            topology,
            placement,
            shared_sync_bytes,
            offload_bytes: None,
            stutter: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_models::ModelZoo;
    use varuna_net::Topology;

    fn job(p: usize, d: usize) -> PlacedJob {
        let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_2_5b());
        let topo = Topology::commodity_1gpu(p * d);
        let placement = Placement::one_stage_per_gpu(p, d);
        PlacedJob::uniform_from_graph(&graph, &GpuModel::v100(), p, d, 4, 8, topo, placement)
    }

    #[test]
    fn uniform_split_covers_all_params() {
        let j = job(9, 2);
        let total: u64 = j.stages.iter().map(|s| s.params).sum();
        assert_eq!(total, ModelZoo::gpt2_2_5b().total_params());
        let layers: usize = j.stages.iter().map(|s| s.layers).sum();
        assert_eq!(layers, 54);
    }

    #[test]
    fn backward_is_twice_forward_and_recompute_equals_forward() {
        let j = job(6, 1);
        for s in &j.stages {
            assert!((s.bwd_time - 2.0 * s.fwd_time).abs() < 1e-12);
            assert_eq!(s.recompute_time, s.fwd_time);
        }
    }

    #[test]
    fn minibatch_examples_is_m_nm_d() {
        let j = job(9, 3);
        assert_eq!(j.minibatch_examples(), 4 * 8 * 3);
        assert_eq!(j.gpus(), 27);
    }

    #[test]
    fn tied_embeddings_produce_shared_sync_payload() {
        let j = job(9, 1);
        assert!(j.shared_sync_bytes > 0.0);
        assert_eq!(j.shared_sync_bytes, (50257 * 1920) as f64 * 2.0);
    }

    #[test]
    fn validate_accepts_consistent_job() {
        job(9, 2).validate();
    }

    #[test]
    #[should_panic(expected = "topology has")]
    fn validate_rejects_undersized_topology() {
        let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_2_5b());
        let topo = Topology::commodity_1gpu(3);
        let placement = Placement::one_stage_per_gpu(6, 1);
        let j =
            PlacedJob::uniform_from_graph(&graph, &GpuModel::v100(), 6, 1, 2, 4, topo, placement);
        j.validate();
    }

    #[test]
    fn stutter_defaults_to_healthy() {
        let j = job(6, 2);
        assert_eq!(j.stutter_of(3, 1), 1.0);
    }

    #[test]
    fn try_validate_reports_reasons_without_panicking() {
        let mut j = job(6, 2);
        assert!(j.try_validate().is_ok());
        j.m = 0;
        let why = j.try_validate().unwrap_err();
        assert!(why.contains("micro-batch"));
        j.m = 4;
        j.d = 0;
        assert!(j.try_validate().is_err());
    }
}
