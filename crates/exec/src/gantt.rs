//! Gantt-chart rendering of execution traces (paper Figures 4 and 7).

use varuna_sched::op::{OpKind, OpSpan};

/// Renders an ASCII Gantt chart of one replica's trace.
///
/// Each row is a pipeline stage (top row = last stage, matching the paper's
/// figures); time is quantized into cells of `cell` seconds. Cells show the
/// op code and micro-batch (`F0`, `R2`, `B1` rendered as `F`, `r`, `B`
/// shading: forwards `F`, recomputes `r`, backwards `B`), idle cells are
/// `.`.
pub fn ascii_gantt(trace: &[OpSpan], p: usize, replica: usize, cell: f64) -> String {
    assert!(cell > 0.0, "cell width must be positive");
    let spans: Vec<&OpSpan> = trace.iter().filter(|t| t.replica == replica).collect();
    let end = spans.iter().map(|t| t.end).fold(0.0f64, f64::max);
    let cols = (end / cell).ceil() as usize;
    let mut out = String::new();
    for stage in (0..p).rev() {
        out.push_str(&format!("S{stage:<3}|"));
        for c in 0..cols {
            let mid = (c as f64 + 0.5) * cell;
            let ch = spans
                .iter()
                .find(|t| t.stage == stage && t.start <= mid && mid < t.end)
                .map(|t| match t.op.kind {
                    OpKind::Forward => 'F',
                    OpKind::Recompute => 'r',
                    OpKind::Backward => 'B',
                })
                .unwrap_or('.');
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Serializes spans as CSV (`stage,replica,op,micro,start,end`) for
/// plotting the paper's Figure 7 timeline.
pub fn spans_csv(trace: &[OpSpan]) -> String {
    let mut out = String::from("stage,replica,op,micro,start,end\n");
    for t in trace {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{:.6}\n",
            t.stage,
            t.replica,
            t.op.kind.code(),
            t.op.micro,
            t.start,
            t.end
        ));
    }
    out
}

/// Fraction of cells that are idle in an ASCII chart row set — a cheap
/// whitespace metric for schedule comparisons (Figure 4 discussion).
pub fn idle_fraction(chart: &str) -> f64 {
    let cells: Vec<char> = chart
        .lines()
        .flat_map(|l| l.chars().skip_while(|&c| c != '|').skip(1))
        .collect();
    if cells.is_empty() {
        return 0.0;
    }
    cells.iter().filter(|&&c| c == '.').count() as f64 / cells.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_sched::op::Op;

    fn span(stage: usize, kind: OpKind, micro: usize, start: f64, end: f64) -> OpSpan {
        OpSpan {
            stage,
            replica: 0,
            op: Op::new(kind, micro),
            start,
            end,
        }
    }

    #[test]
    fn chart_rows_are_top_down_stages() {
        let trace = vec![
            span(0, OpKind::Forward, 0, 0.0, 1.0),
            span(1, OpKind::Forward, 0, 1.0, 2.0),
        ];
        let chart = ascii_gantt(&trace, 2, 0, 1.0);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("S1"));
        assert!(lines[1].starts_with("S0"));
        assert_eq!(lines[0], "S1  |.F");
        assert_eq!(lines[1], "S0  |F.");
    }

    #[test]
    fn idle_fraction_counts_dots() {
        let trace = vec![
            span(0, OpKind::Forward, 0, 0.0, 1.0),
            span(1, OpKind::Backward, 0, 1.0, 2.0),
        ];
        let chart = ascii_gantt(&trace, 2, 0, 1.0);
        assert!((idle_fraction(&chart) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_contains_all_spans() {
        let trace = vec![
            span(0, OpKind::Forward, 0, 0.0, 1.0),
            span(0, OpKind::Recompute, 0, 1.0, 2.0),
        ];
        let csv = spans_csv(&trace);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("0,0,F,0,"));
        assert!(csv.contains("0,0,R,0,"));
    }
}
