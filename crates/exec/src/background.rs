//! A single-server background I/O lane for overlapped checkpoint writes.
//!
//! Varuna §4.5 streams checkpoint shards to remote storage *while the
//! pipeline keeps computing*: the write only stalls training when a new
//! write is issued before the previous one has drained (backpressure).
//! [`BackgroundLane`] models that as a one-server queue over simulated
//! time: submitting a write at time `t` charges the caller only the
//! backpressure stall (the foreground seconds the trainer actually
//! pauses), while the write itself occupies the lane in the background.
//!
//! The lane is deliberately tiny and deterministic so the WAL-replay
//! path can reconstruct it exactly: a replayed `(stall, overlapped)`
//! pair restores the same `busy_until` horizon a fresh submission would
//! have produced (see [`BackgroundLane::restore`]).

/// One-server background write lane over simulated seconds.
///
/// All times are absolute simulated seconds on the caller's clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackgroundLane {
    /// Absolute time at which the lane drains (all submitted writes done).
    busy_until: f64,
}

/// What one background submission cost the foreground.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneCharge {
    /// Foreground stall: seconds the trainer pauses before the write can
    /// be handed to the lane (backpressure from the previous write).
    pub stall_seconds: f64,
    /// Seconds of the write hidden behind compute (the whole write).
    pub overlapped_seconds: f64,
}

impl BackgroundLane {
    /// An idle lane.
    pub fn new() -> Self {
        BackgroundLane::default()
    }

    /// When the lane next drains, in absolute simulated seconds.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }

    /// Whether the lane is still draining a write at time `t`.
    pub fn is_busy_at(&self, t: f64) -> bool {
        self.busy_until > t
    }

    /// Submits a `write_seconds`-long write at absolute time `t`.
    ///
    /// The foreground is charged only the backpressure stall — the wait
    /// until the previous write drains — and the write itself then runs
    /// hidden behind compute. Returns the split; `stall_seconds +`
    /// nothing else is foreground downtime.
    pub fn submit(&mut self, t: f64, write_seconds: f64) -> LaneCharge {
        let stall = (self.busy_until - t).max(0.0);
        self.busy_until = self.busy_until.max(t) + write_seconds.max(0.0);
        LaneCharge {
            stall_seconds: stall,
            overlapped_seconds: write_seconds.max(0.0),
        }
    }

    /// Replays a submission from its logged charge, restoring the same
    /// horizon [`submit`](Self::submit) would have produced at time `t`:
    /// the write started after the stall and ran for its overlapped
    /// seconds, so the lane drains at `t + stall + overlapped`.
    pub fn restore(&mut self, t: f64, charge: LaneCharge) {
        self.busy_until = t + charge.stall_seconds + charge.overlapped_seconds;
    }

    /// Forgets any in-flight write (e.g. the writer's VM was preempted);
    /// the lane is idle again immediately.
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_idle_lane_charges_no_stall() {
        let mut lane = BackgroundLane::new();
        let c = lane.submit(100.0, 4.0);
        assert_eq!(c.stall_seconds, 0.0);
        assert_eq!(c.overlapped_seconds, 4.0);
        assert_eq!(lane.busy_until(), 104.0);
        assert!(lane.is_busy_at(103.0));
        assert!(!lane.is_busy_at(104.0));
    }

    #[test]
    fn backpressure_charges_only_the_residual_wait() {
        let mut lane = BackgroundLane::new();
        lane.submit(100.0, 10.0); // drains at 110
        let c = lane.submit(104.0, 3.0);
        assert_eq!(c.stall_seconds, 6.0);
        assert_eq!(c.overlapped_seconds, 3.0);
        // The second write starts at 110 once the first drains.
        assert_eq!(lane.busy_until(), 113.0);
    }

    #[test]
    fn widely_spaced_writes_never_stall() {
        let mut lane = BackgroundLane::new();
        for i in 0..16 {
            let t = 1000.0 * i as f64;
            let c = lane.submit(t, 5.0);
            assert_eq!(c.stall_seconds, 0.0, "write {i}");
        }
    }

    #[test]
    fn restore_reproduces_the_submit_horizon() {
        let mut live = BackgroundLane::new();
        let mut replayed = BackgroundLane::new();
        for (t, w) in [(10.0, 4.0), (12.0, 6.0), (40.0, 1.0)] {
            let c = live.submit(t, w);
            replayed.restore(t, c);
            assert_eq!(live.busy_until(), replayed.busy_until(), "at t={t}");
        }
    }

    #[test]
    fn reset_clears_the_backlog() {
        let mut lane = BackgroundLane::new();
        lane.submit(0.0, 1.0e6);
        lane.reset();
        assert_eq!(lane.submit(1.0, 2.0).stall_seconds, 0.0);
    }
}
