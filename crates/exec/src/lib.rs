#![warn(missing_docs)]
//! Discrete-event execution emulator for pipeline-parallel training.
//!
//! This crate plays the role of the paper's GPU cluster: it executes a
//! *placed job* — `P` pipeline stages × `D` data-parallel replicas with
//! per-stage compute times and boundary activation sizes — over a
//! [`varuna_net::Topology`], micro-batch by micro-batch, message by
//! message, and reports the mini-batch wall-clock time, per-op trace, and
//! memory high-water marks.
//!
//! The schedule that each stage follows is pluggable through
//! [`policy::SchedulePolicy`]: Varuna's static+opportunistic schedule (in
//! the `varuna` crate), GPipe / 1F1B / PipeDream (in `varuna-baselines`),
//! and the built-in greedy reference policy all run on this same engine, so
//! comparisons isolate scheduling differences exactly as the paper's
//! Table 5/6 experiments do.
//!
//! Modules:
//!
//! - [`op`]: pipeline operations and trace spans.
//! - [`job`]: stage specifications and placed jobs.
//! - [`placement`]: mapping (stage, replica) to GPUs/VMs.
//! - [`policy`]: the schedule policy trait and the greedy reference policy.
//! - [`engine`]: the time-ordered event queue.
//! - [`pipeline`]: the mini-batch simulation driver.
//! - [`oom`]: activation-stash windows and out-of-memory detection.
//! - [`gantt`]: ASCII Gantt charts (paper Figure 7).
//! - [`metrics`]: throughput and TFLOP/s summaries.
//! - [`observe`]: adapters between the emulator and the `varuna-obs` bus.
//! - [`background`]: the overlapped checkpoint-write lane (paper §4.5).

pub mod background;
pub mod engine;
pub mod gantt;
pub mod job;
pub mod metrics;
pub mod observe;
pub mod oom;
pub mod pipeline;
pub mod placement;

// The scheduling vocabulary lives in `varuna-sched`; these aliases keep
// the historical `varuna_exec::op::*` / `varuna_exec::policy::*` paths
// working for downstream crates.
pub use varuna_sched::{op, policy};

pub use background::{BackgroundLane, LaneCharge};
pub use job::{PlacedJob, StageSpec};
pub use metrics::Throughput;
pub use observe::{SpanCollector, StreamingCapture};
pub use pipeline::{simulate_minibatch, simulate_minibatch_on_bus, MinibatchResult, SimOptions};
pub use placement::Placement;
pub use varuna_sched::{GreedyPolicy, OpKind, OpSpan, PolicyFactory, SchedulePolicy, StageView};
