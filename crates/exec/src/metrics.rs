//! Throughput and TFLOP/s summaries, reported the way the paper does.

use serde::{Deserialize, Serialize};
use varuna_models::config::TransformerConfig;
use varuna_models::flops::useful_tflops_per_gpu;

use crate::job::PlacedJob;
use crate::pipeline::MinibatchResult;

/// The two performance metrics of the paper's evaluation (Section 7.1):
/// examples/sec/GPU and useful TFLOP/s/GPU (recompute excluded).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Total examples processed per second across the job.
    pub examples_per_sec: f64,
    /// Examples per second per GPU.
    pub examples_per_sec_per_gpu: f64,
    /// Useful TFLOP/s per GPU.
    pub tflops_per_gpu: f64,
    /// Mini-batch wall-clock time, seconds.
    pub minibatch_time: f64,
    /// GPUs used.
    pub gpus: usize,
}

impl Throughput {
    /// Computes throughput from a simulated mini-batch.
    pub fn from_result(config: &TransformerConfig, job: &PlacedJob, res: &MinibatchResult) -> Self {
        let examples = job.minibatch_examples() as f64;
        let gpus = job.gpus();
        let eps = examples / res.total_time;
        let per_gpu = eps / gpus as f64;
        Throughput {
            examples_per_sec: eps,
            examples_per_sec_per_gpu: per_gpu,
            tflops_per_gpu: useful_tflops_per_gpu(config, per_gpu),
            minibatch_time: res.total_time,
            gpus,
        }
    }

    /// Builds a throughput record directly from a mini-batch time — used
    /// by analytical baselines that do not run the event engine.
    pub fn from_time(
        config: &TransformerConfig,
        examples: f64,
        gpus: usize,
        minibatch_time: f64,
    ) -> Self {
        let eps = examples / minibatch_time;
        let per_gpu = eps / gpus as f64;
        Throughput {
            examples_per_sec: eps,
            examples_per_sec_per_gpu: per_gpu,
            tflops_per_gpu: useful_tflops_per_gpu(config, per_gpu),
            minibatch_time,
            gpus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_models::ModelZoo;

    #[test]
    fn from_time_divides_consistently() {
        let c = ModelZoo::gpt2_2_5b();
        let t = Throughput::from_time(&c, 8192.0, 64, 100.0);
        assert!((t.examples_per_sec - 81.92).abs() < 1e-9);
        assert!((t.examples_per_sec_per_gpu - 1.28).abs() < 1e-9);
        assert!(t.tflops_per_gpu > 0.0);
    }

    #[test]
    fn tflops_matches_flops_model() {
        let c = ModelZoo::gpt2_8_3b();
        let t = Throughput::from_time(&c, 8192.0, 288, 50.0);
        let expected = varuna_models::flops::useful_tflops_per_gpu(&c, t.examples_per_sec_per_gpu);
        assert_eq!(t.tflops_per_gpu, expected);
    }
}
