//! Adapters between the emulator and the `varuna-obs` event bus.
//!
//! The emulator no longer keeps a private trace recorder: it emits
//! [`varuna_obs::Event`]s, and the legacy [`OpSpan`] trace (Gantt charts,
//! Figure 7) is rebuilt by attaching a [`SpanCollector`] sink. Because
//! `OpEnd` events are emitted at exactly the point the old recorder pushed
//! spans, the collected trace is identical — order included — to what
//! [`simulate_minibatch`](crate::pipeline::simulate_minibatch) historically
//! returned.

use std::sync::{Arc, Mutex};

use varuna_obs::{
    Event, EventBus, EventKind, EventSink, PartialReport, ProfileReport, StreamConfig,
    StreamCounters, StreamSink,
};

use varuna_sched::op::{Op, OpKind, OpSpan};

/// Rebuilds the legacy per-op span trace from `OpEnd` events.
///
/// Clone the collector before boxing it into the bus, then read the spans
/// back through the clone:
///
/// ```
/// use varuna_obs::EventBus;
/// use varuna_exec::observe::SpanCollector;
///
/// let collector = SpanCollector::new();
/// let mut bus = EventBus::with_sink(Box::new(collector.clone()));
/// // ... run simulate_minibatch_on_bus(job, policies, opts, &mut bus) ...
/// let spans = collector.take();
/// # let _ = (bus, spans);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanCollector {
    spans: Arc<Mutex<Vec<OpSpan>>>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Drains and returns the collected spans, in event-arrival order.
    pub fn take(&self) -> Vec<OpSpan> {
        std::mem::take(&mut *self.spans.lock().expect("collector lock"))
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("collector lock").len()
    }

    /// Whether no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for SpanCollector {
    fn record(&mut self, event: &Event) {
        if let EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            start,
        } = &event.kind
        {
            let kind = OpKind::from_code(*op).expect("emulator emits valid op codes");
            self.spans.lock().expect("collector lock").push(OpSpan {
                stage: *stage,
                replica: *replica,
                op: Op::new(kind, *micro),
                start: *start,
                end: event.t_sim,
            });
        }
    }
}

/// Live, bounded-memory profiler attachment for the emulator bus.
///
/// Where [`SpanCollector`] buffers every `OpEnd` for post-hoc analysis,
/// `StreamingCapture` folds events into a
/// [`varuna_obs::StreamingProfiler`] as they are emitted, keeping
/// O(stages × replicas) resident state and producing the *same report,
/// byte for byte*, that `varuna_obs::profile` would compute from the
/// full event vector. Attach it to the bus the emulator runs on, then
/// pull a live snapshot at any point or seal it at the end:
///
/// ```
/// use varuna_obs::EventBus;
/// use varuna_exec::observe::StreamingCapture;
///
/// let capture = StreamingCapture::new();
/// let mut bus = EventBus::new();
/// capture.attach(&mut bus);
/// // ... run simulate_minibatch_on_bus(job, policies, opts, &mut bus) ...
/// let report = capture.finish();
/// # let _ = (bus, report);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamingCapture {
    sink: StreamSink,
}

impl StreamingCapture {
    /// A capture with an unbounded reorder window (exact on any event
    /// order the bus can produce).
    pub fn new() -> Self {
        StreamingCapture::default()
    }

    /// A capture with an explicit streaming configuration (finite
    /// window, pending cap).
    pub fn with_config(cfg: StreamConfig) -> Self {
        StreamingCapture {
            sink: StreamSink::new(cfg),
        }
    }

    /// Registers a clone of the underlying sink on `bus`; the capture
    /// keeps its handle, so state accumulated by the bus is visible
    /// through `self`.
    pub fn attach(&self, bus: &mut EventBus) {
        bus.add_sink(Box::new(self.sink.clone()));
    }

    /// Events held in the reorder/inflight buffers plus per-lane folds —
    /// the bounded resident state, not the stream length.
    pub fn resident(&self) -> usize {
        self.sink.resident()
    }

    /// Overflow / anomaly accounting for the stream so far.
    pub fn counters(&self) -> StreamCounters {
        *self.sink.snapshot().counters()
    }

    /// A live report over everything observed so far. Exact for the
    /// current prefix of the stream; cheap enough to call per step.
    pub fn report(&self) -> ProfileReport {
        self.sink.snapshot().into_report()
    }

    /// Drains the capture into a mergeable [`PartialReport`] shard
    /// (resets the capture to empty).
    pub fn take_partial(&self) -> PartialReport {
        self.sink.take_partial()
    }

    /// Seals the capture into its final report.
    pub fn finish(self) -> ProfileReport {
        self.sink.take_partial().into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_obs::EventBus;

    #[test]
    fn collector_rebuilds_spans_from_op_end_events() {
        let collector = SpanCollector::new();
        let mut bus = EventBus::with_sink(Box::new(collector.clone()));
        bus.emit(Event::exec(
            0.0,
            EventKind::OpStart {
                stage: 1,
                replica: 0,
                op: 'F',
                micro: 2,
            },
        ));
        bus.emit(Event::exec(
            0.5,
            EventKind::OpEnd {
                stage: 1,
                replica: 0,
                op: 'F',
                micro: 2,
                start: 0.0,
            },
        ));
        bus.emit(Event::exec(
            0.5,
            EventKind::Transfer {
                from_stage: 1,
                to_stage: 2,
                replica: 0,
                micro: 2,
                bytes: 1e6,
                seconds: 0.01,
            },
        ));
        let spans = collector.take();
        assert_eq!(spans.len(), 1, "only OpEnd events become spans");
        assert_eq!(spans[0].op, Op::new(OpKind::Forward, 2));
        assert_eq!(spans[0].start, 0.0);
        assert_eq!(spans[0].end, 0.5);
        assert!(collector.is_empty());
    }

    #[test]
    fn streaming_capture_matches_posthoc_profile_on_a_real_minibatch() {
        use crate::job::PlacedJob;
        use crate::pipeline::{simulate_minibatch_on_bus, SimOptions};
        use crate::placement::Placement;
        use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
        use varuna_net::Topology;
        use varuna_obs::{profile, VecSink};
        use varuna_sched::policy::{GreedyPolicy, SchedulePolicy};

        let (p, d, n_micro) = (3, 2, 4);
        let graph = CutpointGraph::from_transformer(&ModelZoo::gpt2_2_5b());
        let job = PlacedJob::uniform_from_graph(
            &graph,
            &GpuModel::v100(),
            p,
            d,
            2,
            n_micro,
            Topology::commodity_1gpu(p * d),
            Placement::one_stage_per_gpu(p, d),
        );
        let greedy = |_: usize, _: usize| -> Box<dyn SchedulePolicy> { Box::new(GreedyPolicy) };

        let tape = VecSink::new();
        let capture = StreamingCapture::new();
        let mut bus = EventBus::with_sink(Box::new(tape.clone()));
        capture.attach(&mut bus);
        simulate_minibatch_on_bus(&job, &greedy, &SimOptions::default(), &mut bus)
            .expect("minibatch simulates");

        let events = tape.take();
        assert!(!events.is_empty(), "emulator must emit events");
        let counters = capture.counters();
        assert_eq!(
            counters.violations(),
            0,
            "live emulator stream must profile cleanly: {counters:?}"
        );
        assert_eq!(
            capture.finish().to_json(),
            profile(&events).to_json(),
            "streamed report must equal post-hoc byte-for-byte"
        );
    }
}
