//! Adapters between the emulator and the `varuna-obs` event bus.
//!
//! The emulator no longer keeps a private trace recorder: it emits
//! [`varuna_obs::Event`]s, and the legacy [`OpSpan`] trace (Gantt charts,
//! Figure 7) is rebuilt by attaching a [`SpanCollector`] sink. Because
//! `OpEnd` events are emitted at exactly the point the old recorder pushed
//! spans, the collected trace is identical — order included — to what
//! [`simulate_minibatch`](crate::pipeline::simulate_minibatch) historically
//! returned.

use std::sync::{Arc, Mutex};

use varuna_obs::{Event, EventKind, EventSink};

use varuna_sched::op::{Op, OpKind, OpSpan};

/// Rebuilds the legacy per-op span trace from `OpEnd` events.
///
/// Clone the collector before boxing it into the bus, then read the spans
/// back through the clone:
///
/// ```
/// use varuna_obs::EventBus;
/// use varuna_exec::observe::SpanCollector;
///
/// let collector = SpanCollector::new();
/// let mut bus = EventBus::with_sink(Box::new(collector.clone()));
/// // ... run simulate_minibatch_on_bus(job, policies, opts, &mut bus) ...
/// let spans = collector.take();
/// # let _ = (bus, spans);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanCollector {
    spans: Arc<Mutex<Vec<OpSpan>>>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SpanCollector::default()
    }

    /// Drains and returns the collected spans, in event-arrival order.
    pub fn take(&self) -> Vec<OpSpan> {
        std::mem::take(&mut *self.spans.lock().expect("collector lock"))
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("collector lock").len()
    }

    /// Whether no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for SpanCollector {
    fn record(&mut self, event: &Event) {
        if let EventKind::OpEnd {
            stage,
            replica,
            op,
            micro,
            start,
        } = &event.kind
        {
            let kind = OpKind::from_code(*op).expect("emulator emits valid op codes");
            self.spans.lock().expect("collector lock").push(OpSpan {
                stage: *stage,
                replica: *replica,
                op: Op::new(kind, *micro),
                start: *start,
                end: event.t_sim,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_obs::EventBus;

    #[test]
    fn collector_rebuilds_spans_from_op_end_events() {
        let collector = SpanCollector::new();
        let mut bus = EventBus::with_sink(Box::new(collector.clone()));
        bus.emit(Event::exec(
            0.0,
            EventKind::OpStart {
                stage: 1,
                replica: 0,
                op: 'F',
                micro: 2,
            },
        ));
        bus.emit(Event::exec(
            0.5,
            EventKind::OpEnd {
                stage: 1,
                replica: 0,
                op: 'F',
                micro: 2,
                start: 0.0,
            },
        ));
        bus.emit(Event::exec(
            0.5,
            EventKind::Transfer {
                from_stage: 1,
                to_stage: 2,
                replica: 0,
                micro: 2,
                bytes: 1e6,
                seconds: 0.01,
            },
        ));
        let spans = collector.take();
        assert_eq!(spans.len(), 1, "only OpEnd events become spans");
        assert_eq!(spans[0].op, Op::new(OpKind::Forward, 2));
        assert_eq!(spans[0].start, 0.0);
        assert_eq!(spans[0].end, 0.5);
        assert!(collector.is_empty());
    }
}
