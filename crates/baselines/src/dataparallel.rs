//! Pure data-parallel training — the baseline for models that fit one GPU.
//!
//! BERT-large (340M) is the paper's fully data-parallel workload: the whole
//! model replicates on every GPU, each replica grinds through its
//! micro-batches, and a single ring allreduce of all gradients ends the
//! mini-batch.

use varuna_exec::metrics::Throughput;
use varuna_models::config::TransformerConfig;
use varuna_models::efficiency::GpuModel;
use varuna_models::flops::example_flops_with_recompute;
use varuna_net::collective::{allreduce_time, AllreduceSpec};
use varuna_net::Topology;

/// Predicts data-parallel throughput for `g` replicas running `n_micro`
/// gradient-accumulation steps of micro-batch `m`.
pub fn simulate_data_parallel(
    config: &TransformerConfig,
    gpu: &GpuModel,
    g: usize,
    m: usize,
    n_micro: usize,
    topo: &Topology,
) -> Throughput {
    assert!(g >= 1 && m >= 1 && n_micro >= 1);
    let flops = example_flops_with_recompute(config) * m as f64;
    let step = gpu.compute_time(flops, m, config.hidden);
    let mut minibatch = n_micro as f64 * step;
    if g > 1 {
        minibatch += allreduce_time(
            AllreduceSpec {
                bytes: config.total_params() as f64 * 2.0,
                ring_size: g,
                in_flight: topo.gpus_per_node(),
            },
            topo.inter_link(),
        );
    }
    Throughput::from_time(config, (m * n_micro * g) as f64, g, minibatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_models::ModelZoo;

    #[test]
    fn bert_large_throughput_in_the_700_exs_band() {
        // Section 7.1.1: NVIDIA reports 700 ex/s for BERT-large on a
        // DGX-1-class setup; Varuna reports 710 ex/s on 32 commodity GPUs.
        // Our data-parallel baseline on 32 GPUs should land in that band.
        let c = ModelZoo::bert_large();
        let t = simulate_data_parallel(
            &c,
            &GpuModel::v100(),
            32,
            8,
            128, // 32K mini-batch / (8 * 32).
            &Topology::commodity_1gpu(32),
        );
        assert!(
            (450.0..1000.0).contains(&t.examples_per_sec),
            "BERT-large DP throughput {:.0} ex/s",
            t.examples_per_sec
        );
    }

    #[test]
    fn allreduce_cost_grows_with_ring_size() {
        let c = ModelZoo::bert_large();
        let gpu = GpuModel::v100();
        let topo = Topology::commodity_1gpu(64);
        let small = simulate_data_parallel(&c, &gpu, 8, 8, 64, &topo);
        let large = simulate_data_parallel(&c, &gpu, 64, 8, 64, &topo);
        assert!(
            large.examples_per_sec_per_gpu < small.examples_per_sec_per_gpu,
            "bigger rings pay more allreduce"
        );
    }

    #[test]
    fn single_gpu_has_no_allreduce() {
        let c = ModelZoo::gpt2_355m();
        let gpu = GpuModel::v100();
        let topo = Topology::commodity_1gpu(1);
        let t = simulate_data_parallel(&c, &gpu, 1, 4, 10, &topo);
        let flops = example_flops_with_recompute(&c) * 4.0;
        let expected = 10.0 * gpu.compute_time(flops, 4, c.hidden);
        assert!((t.minibatch_time - expected).abs() < 1e-12);
    }
}
