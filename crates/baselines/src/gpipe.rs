//! The GPipe schedule (Huang et al., NeurIPS'19).
//!
//! Phase 1: forward every micro-batch in order. Phase 2: walk micro-batches
//! in *reverse* order, recomputing then backpropagating each. The schedule
//! is strict — when the designated next op is not ready the stage idles —
//! which is exactly why GPipe's bubble is concentrated mid-schedule and why
//! it degrades under jitter (paper Figure 4 discussion and Table 5).
//!
//! Only the last micro-batch at the last stage escapes recompute, because
//! its forward activations are still live ("S4 in Gpipe ... only avoids
//! recompute for the fifth micro-batch").

use varuna_sched::op::{Op, OpKind};
use varuna_sched::policy::{SchedulePolicy, StageView};

/// GPipe's strict two-phase schedule.
#[derive(Debug, Default, Clone)]
pub struct GPipePolicy;

impl SchedulePolicy for GPipePolicy {
    fn pick(&mut self, view: &StageView<'_>) -> Option<Op> {
        // A completed recompute commits us to its backward.
        if let Some(mb) = view.pending_recompute {
            return view
                .backward_ready(mb)
                .then_some(Op::new(OpKind::Backward, mb));
        }
        // Phase 1: all forwards first. GPipe's memory discipline stashes
        // every micro-batch's input; when the emulator's stash window is
        // tighter than N_m (GPipe would OOM on real hardware), fall
        // through and drain backwards to free stash space.
        if view.forwards_done < view.n_micro && view.stash_len < view.stash_window {
            return view
                .forward_ready()
                .then_some(Op::new(OpKind::Forward, view.forwards_done));
        }
        // Phase 2: strictly reverse micro-batch order.
        let mb = (0..view.n_micro)
            .rev()
            .find(|&mb| !view.backwards_done[mb])?;
        if view.backward_ready(mb) {
            return Some(Op::new(OpKind::Backward, mb));
        }
        if view.grads_ready[mb] && view.recompute_ready(mb) {
            return Some(Op::new(OpKind::Recompute, mb));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varuna_exec::job::PlacedJob;
    use varuna_exec::pipeline::{simulate_minibatch, SimOptions};
    use varuna_exec::placement::Placement;
    use varuna_models::{CutpointGraph, GpuModel, ModelZoo};
    use varuna_net::Topology;
    use varuna_sched::op::OpKind;
    use varuna_sched::policy::GreedyPolicy;

    fn job(p: usize, n_micro: usize) -> PlacedJob {
        let graph = CutpointGraph::from_transformer(&ModelZoo::bert_72());
        PlacedJob::uniform_from_graph(
            &graph,
            &GpuModel::v100(),
            p,
            1,
            16,
            n_micro,
            Topology::commodity_4gpu(p.div_ceil(4)),
            Placement::one_stage_per_gpu(p, 1),
        )
    }

    #[test]
    fn gpipe_completes_and_orders_phases() {
        let j = job(4, 5);
        let opts = SimOptions {
            record_trace: true,
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&j, &|_, _| Box::new(GPipePolicy), &opts).unwrap();
        // Every stage's last forward precedes its first backward.
        for s in 0..4 {
            let last_fwd = res
                .trace
                .iter()
                .filter(|t| t.stage == s && t.op.kind == OpKind::Forward)
                .map(|t| t.end)
                .fold(0.0f64, f64::max);
            let first_bwd = res
                .trace
                .iter()
                .filter(|t| t.stage == s && t.op.kind == OpKind::Backward)
                .map(|t| t.start)
                .fold(f64::INFINITY, f64::min);
            assert!(last_fwd <= first_bwd, "stage {s} interleaved phases");
        }
    }

    #[test]
    fn gpipe_backwards_run_in_reverse_order() {
        let j = job(3, 4);
        let opts = SimOptions {
            record_trace: true,
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&j, &|_, _| Box::new(GPipePolicy), &opts).unwrap();
        let bwd_order: Vec<usize> = res
            .trace
            .iter()
            .filter(|t| t.stage == 0 && t.op.kind == OpKind::Backward)
            .map(|t| t.op.micro)
            .collect();
        assert_eq!(bwd_order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn last_stage_skips_recompute_only_for_final_microbatch() {
        let j = job(4, 5);
        let opts = SimOptions {
            record_trace: true,
            ..SimOptions::default()
        };
        let res = simulate_minibatch(&j, &|_, _| Box::new(GPipePolicy), &opts).unwrap();
        let recs: Vec<usize> = res
            .trace
            .iter()
            .filter(|t| t.stage == 3 && t.op.kind == OpKind::Recompute)
            .map(|t| t.op.micro)
            .collect();
        assert_eq!(recs, vec![3, 2, 1, 0], "all but micro-batch 4 recompute");
    }

    #[test]
    fn gpipe_is_slower_than_greedy() {
        // The bubble: GPipe idles mid-schedule where a work-conserving
        // policy does not (paper Figure 4 shows Varuna one slot shorter
        // even at N=5, P=4).
        let j = job(4, 8);
        let g =
            simulate_minibatch(&j, &|_, _| Box::new(GPipePolicy), &SimOptions::default()).unwrap();
        let v =
            simulate_minibatch(&j, &|_, _| Box::new(GreedyPolicy), &SimOptions::default()).unwrap();
        assert!(
            g.pipeline_time >= v.pipeline_time,
            "gpipe {} vs greedy {}",
            g.pipeline_time,
            v.pipeline_time
        );
    }

    #[test]
    fn gpipe_stash_grows_to_n_micro() {
        // GPipe stashes every micro-batch's input during phase 1.
        let j = job(4, 6);
        let res =
            simulate_minibatch(&j, &|_, _| Box::new(GPipePolicy), &SimOptions::default()).unwrap();
        assert_eq!(res.peak_stash[0], 6);
    }
}
